// Package calendar is the third Laminar case study (§7.3), modeled on the
// k5nCal multithreaded desktop calendar: every data structure and .ics
// file holding a user's calendar is labeled with the user's secrecy tag,
// and all code touching it runs inside security regions. The experiment
// (§7.3) schedules meetings between Alice and Bob with a scheduler thread
// that can read both calendars but declassify only Bob's data; the agreed
// date goes to an output file labeled for Alice.
//
// The setup also exercises the §3.3 machinery end to end: users allocate
// their own tags and hand the scheduler capabilities over kernel pipes
// with write_capability, and the calendar loads run on concurrently
// executing threads with heterogeneous labels — the pattern OS-level DIFC
// cannot express in one address space.
package calendar

import (
	"fmt"
	"sync"

	"laminar"
	"laminar/internal/simwork"
)

// meetingRequestWork models the iCalendar parsing, invitation formatting
// and UI refresh around each scheduling request, identical in both
// variants.
const meetingRequestWork = 15000

// Slots is the number of schedulable slots per calendar.
const Slots = 64

// User owns a tag and a labeled calendar file.
type User struct {
	Name   string
	thread *laminar.Thread
	tag    laminar.Tag
	file   string
}

// Tag returns the user's secrecy tag (tests only).
func (u *User) Tag() laminar.Tag { return u.tag }

// Scheduler is the meeting scheduler with Alice's and Bob's plus
// capabilities and only Bob's minus capability.
type Scheduler struct {
	sys    *laminar.System
	vm     *laminar.VM
	thread *laminar.Thread
	Alice  *User
	Bob    *User

	outFile string // labeled {S(alice)}; Alice reads the meeting dates

	mu       sync.Mutex
	calA     *laminar.Object // labeled {S(a)}
	calB     *laminar.Object // labeled {S(b)}
	nextFree int
}

// New boots the scenario: one VM, three threads (scheduler, alice, bob),
// labeled calendar files with a deterministic busy pattern, and
// capability hand-off over pipes.
func New(sys *laminar.System) (*Scheduler, error) {
	shell, err := sys.Login("caluser")
	if err != nil {
		return nil, err
	}
	vm, main, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	if err := sys.Kernel().Chdir(main.Task(), "/tmp"); err != nil {
		return nil, err
	}
	s := &Scheduler{sys: sys, vm: vm, thread: main}

	if s.Alice, err = s.newUser(main, "alice", 2); err != nil {
		return nil, err
	}
	if s.Bob, err = s.newUser(main, "bob", 3); err != nil {
		return nil, err
	}

	// Capability hand-off over pipes (write_capability, §4.4): Alice
	// sends a+; Bob sends b+ and b-.
	if err := s.receiveCaps(s.Alice, laminar.CapPlus); err != nil {
		return nil, err
	}
	if err := s.receiveCaps(s.Bob, laminar.CapPlus); err != nil {
		return nil, err
	}
	if err := s.receiveCaps(s.Bob, laminar.CapMinus); err != nil {
		return nil, err
	}

	// Pre-create the output file, labeled for Alice, while the scheduler
	// is still unlabeled (pre-creation rule, §5.2).
	s.outFile = "meetings-alice"
	k := sys.Kernel()
	fd, err := k.CreateFileLabeled(main.Task(), s.outFile, 0o600,
		laminar.Labels{S: laminar.NewLabel(s.Alice.tag)})
	if err != nil {
		return nil, err
	}
	k.Close(main.Task(), fd)

	// Load both calendars concurrently on the owners' threads: two live
	// threads with different labels in one address space.
	if err := s.loadCalendars(); err != nil {
		return nil, err
	}
	return s, nil
}

// VM exposes the runtime for statistics.
func (s *Scheduler) VM() *laminar.VM { return s.vm }

// newUser forks a user thread, allocates the user's tag, and writes the
// labeled calendar file with every busyEvery-th slot occupied.
func (s *Scheduler) newUser(main *laminar.Thread, name string, busyEvery int) (*User, error) {
	th, err := main.Fork([]laminar.Capability{})
	if err != nil {
		return nil, err
	}
	tag, err := th.CreateTag()
	if err != nil {
		return nil, err
	}
	u := &User{Name: name, thread: th, tag: tag, file: name + ".ics"}
	k := s.sys.Kernel()
	fd, err := k.CreateFileLabeled(th.Task(), u.file, 0o600,
		laminar.Labels{S: laminar.NewLabel(tag)})
	if err != nil {
		return nil, err
	}
	defer k.Close(th.Task(), fd)
	// Fill the calendar from the user's own security region.
	busy := make([]byte, Slots)
	for i := range busy {
		if i%busyEvery == 0 {
			busy[i] = '1'
		} else {
			busy[i] = '0'
		}
	}
	var werr error
	err = th.Secure(laminar.Labels{S: laminar.NewLabel(tag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		wfd, err := r.OpenFile(u.file, laminar.OWrite)
		if err != nil {
			werr = err
			return
		}
		defer r.CloseFile(wfd)
		if _, err := r.WriteFile(wfd, busy); err != nil {
			werr = err
		}
	}, nil)
	if err != nil {
		return nil, err
	}
	return u, werr
}

// receiveCaps moves one capability from the user to the scheduler over a
// fresh kernel pipe.
func (s *Scheduler) receiveCaps(u *User, kind laminar.CapKind) error {
	k := s.sys.Kernel()
	r, w, err := k.Pipe(u.thread.Task())
	if err != nil {
		return err
	}
	rs, err := k.DupTo(u.thread.Task(), r, s.thread.Task())
	if err != nil {
		return err
	}
	if err := u.thread.SendCapability(laminar.Capability{Tag: u.tag, Kind: kind}, w); err != nil {
		return err
	}
	if _, err := s.thread.ReceiveCapability(rs); err != nil {
		return err
	}
	k.Close(u.thread.Task(), r)
	k.Close(u.thread.Task(), w)
	k.Close(s.thread.Task(), rs)
	return nil
}

// loadCalendars parses each labeled .ics file into a labeled in-memory
// array, concurrently, on the scheduler's behalf (the scheduler holds both
// plus capabilities, so it spawns one loader region per user on forked
// threads).
func (s *Scheduler) loadCalendars() error {
	keepA := []laminar.Capability{{Tag: s.Alice.tag, Kind: laminar.CapPlus}}
	keepB := []laminar.Capability{{Tag: s.Bob.tag, Kind: laminar.CapPlus}}
	loaderA, err := s.thread.Fork(keepA)
	if err != nil {
		return err
	}
	loaderB, err := s.thread.Fork(keepB)
	if err != nil {
		return err
	}
	if err := s.sys.Kernel().Chdir(loaderA.Task(), "/tmp"); err != nil {
		return err
	}
	if err := s.sys.Kernel().Chdir(loaderB.Task(), "/tmp"); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	load := func(idx int, th *laminar.Thread, u *User, dst **laminar.Object) {
		defer wg.Done()
		labels := laminar.Labels{S: laminar.NewLabel(u.tag)}
		errs[idx] = th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
			fd, err := r.OpenFile(u.file, laminar.ORead)
			if err != nil {
				panic(&laminar.Violation{Op: "open", Err: err})
			}
			defer r.CloseFile(fd)
			buf := make([]byte, Slots)
			if _, err := r.ReadFile(fd, buf); err != nil {
				panic(&laminar.Violation{Op: "read", Err: err})
			}
			cal := r.AllocArray(Slots, nil)
			for i := 0; i < Slots; i++ {
				busy := 0
				if buf[i] == '1' {
					busy = 1
				}
				r.SetIndex(cal, i, busy)
			}
			s.mu.Lock()
			*dst = cal
			s.mu.Unlock()
		}, nil)
	}
	wg.Add(2)
	go load(0, loaderA, s.Alice, &s.calA)
	go load(1, loaderB, s.Bob, &s.calB)
	wg.Wait()
	loaderA.Exit()
	loaderB.Exit()
	if errs[0] != nil {
		return errs[0]
	}
	if errs[1] != nil {
		return errs[1]
	}
	if s.calA == nil || s.calB == nil {
		return fmt.Errorf("calendar: load failed inside security region")
	}
	return nil
}

// ErrNoSlot means no common free slot remains.
var ErrNoSlot = fmt.Errorf("calendar: no common free slot")

// ScheduleMeeting finds the earliest common free slot, marks it busy in
// Alice's calendar, and appends the slot to the Alice-labeled output file
// after declassifying Bob's contribution (the scheduler holds b− but not
// a−, exactly the paper's configuration).
func (s *Scheduler) ScheduleMeeting() (int, error) {
	simwork.Do(meetingRequestWork)
	a, b := s.Alice.tag, s.Bob.tag
	both := laminar.Labels{S: laminar.NewLabel(a, b)}
	bMinus := laminar.NewCapSet(laminar.EmptyLabel, laminar.NewLabel(b))
	chosen := -1
	var innerErr error
	violated := false
	err := s.thread.Secure(both, bMinus, func(r *laminar.Region) {
		slot := -1
		for i := 0; i < Slots; i++ {
			if r.Index(s.calA, i).(int) == 0 && r.Index(s.calB, i).(int) == 0 {
				slot = i
				break
			}
		}
		if slot < 0 {
			innerErr = ErrNoSlot
			return
		}
		// The chosen slot depends on both calendars. Declassify Bob's
		// contribution (b−) and continue at {S(a)}: marking Alice's
		// calendar and appending to her file are then legal writes.
		res := r.Alloc(nil)
		r.Set(res, "slot", slot)
		err := s.thread.Secure(laminar.Labels{S: laminar.NewLabel(a)}, bMinus, func(r2 *laminar.Region) {
			pub := r2.CopyAndLabel(res, laminar.Labels{S: laminar.NewLabel(a)})
			day := r2.Get(pub, "slot").(int)
			r2.SetIndex(s.calA, day, 1)
			fd, err := r2.OpenFile(s.outFile, laminar.OWrite|laminar.OAppend)
			if err != nil {
				panic(&laminar.Violation{Op: "open", Err: err})
			}
			defer r2.CloseFile(fd)
			if _, err := r2.WriteFile(fd, []byte(fmt.Sprintf("%d\n", day))); err != nil {
				panic(&laminar.Violation{Op: "write", Err: err})
			}
			s.mu.Lock()
			chosen = day
			s.mu.Unlock()
		}, nil)
		if err != nil {
			panic(&laminar.Violation{Op: "declassify", Err: err})
		}
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil {
		return -1, err
	}
	if innerErr != nil {
		return -1, innerErr
	}
	if violated || chosen < 0 {
		return -1, fmt.Errorf("calendar: scheduling denied")
	}
	return chosen, nil
}

// ResetAlice clears Alice's in-memory calendar back to the file state so
// long benchmark runs do not exhaust slots. Runs as a region of Alice's
// thread.
func (s *Scheduler) ResetAlice() error {
	labels := laminar.Labels{S: laminar.NewLabel(s.Alice.tag)}
	return s.Alice.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		for i := 0; i < Slots; i++ {
			busy := 0
			if i%2 == 0 {
				busy = 1
			}
			r.SetIndex(s.calA, i, busy)
		}
	}, nil)
}

// ReadMeetingsAsAlice returns the output file's contents from Alice's own
// security region — demonstrating that the result reaches exactly the
// intended reader.
func (s *Scheduler) ReadMeetingsAsAlice() (string, error) {
	labels := laminar.Labels{S: laminar.NewLabel(s.Alice.tag)}
	var out string
	if err := s.sys.Kernel().Chdir(s.Alice.thread.Task(), "/tmp"); err != nil {
		return "", err
	}
	err := s.Alice.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		fd, err := r.OpenFile(s.outFile, laminar.ORead)
		if err != nil {
			panic(&laminar.Violation{Op: "open", Err: err})
		}
		defer r.CloseFile(fd)
		buf := make([]byte, 64*1024)
		n, err := r.ReadFile(fd, buf)
		if err != nil {
			panic(&laminar.Violation{Op: "read", Err: err})
		}
		out = string(buf[:n])
	}, nil)
	return out, err
}

// BobCannotReadMeetings probes that Bob's thread cannot open the
// Alice-labeled output file.
func (s *Scheduler) BobCannotReadMeetings() bool {
	if err := s.sys.Kernel().Chdir(s.Bob.thread.Task(), "/tmp"); err != nil {
		return false
	}
	_, err := s.sys.Kernel().Open(s.Bob.thread.Task(), s.outFile, laminar.ORead)
	return err != nil
}

// --- unsecured variant: the original k5nCal structure ---

// Unsecured schedules against plain in-memory calendars and unlabeled
// files; any user could read any calendar (the feature the paper's port
// disabled).
type Unsecured struct {
	sys   *laminar.System
	task  *laminar.Task
	calA  *laminar.Object
	calB  *laminar.Object
	out   string
	nfree int
}

// NewUnsecured builds the baseline scheduler on the same kernel (the
// hooks run but all data is unlabeled, isolating the labeling cost).
func NewUnsecured(sys *laminar.System) (*Unsecured, error) {
	shell, err := sys.Login("plainuser")
	if err != nil {
		return nil, err
	}
	if err := sys.Kernel().Chdir(shell, "/tmp"); err != nil {
		return nil, err
	}
	u := &Unsecured{sys: sys, task: shell, out: "meetings-plain"}
	u.calA = laminar.NewArray(Slots)
	u.calB = laminar.NewArray(Slots)
	for i := 0; i < Slots; i++ {
		a, b := 0, 0
		if i%2 == 0 {
			a = 1
		}
		if i%3 == 0 {
			b = 1
		}
		u.calA.RawSetIndex(i, a)
		u.calB.RawSetIndex(i, b)
	}
	fd, err := sys.Kernel().Open(shell, u.out, laminar.OCreate|laminar.OWrite)
	if err != nil {
		return nil, err
	}
	sys.Kernel().Close(shell, fd)
	return u, nil
}

// ScheduleMeeting mirrors the secured logic without regions or labels.
func (u *Unsecured) ScheduleMeeting() (int, error) {
	simwork.Do(meetingRequestWork)
	slot := -1
	for i := 0; i < Slots; i++ {
		if u.calA.RawIndex(i).(int) == 0 && u.calB.RawIndex(i).(int) == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		return -1, ErrNoSlot
	}
	u.calA.RawSetIndex(slot, 1)
	k := u.sys.Kernel()
	fd, err := k.Open(u.task, u.out, laminar.OWrite|laminar.OAppend)
	if err != nil {
		return -1, err
	}
	defer k.Close(u.task, fd)
	if _, err := k.Write(u.task, fd, []byte(fmt.Sprintf("%d\n", slot))); err != nil {
		return -1, err
	}
	return slot, nil
}

// ResetAlice mirrors the secured reset.
func (u *Unsecured) ResetAlice() {
	for i := 0; i < Slots; i++ {
		busy := 0
		if i%2 == 0 {
			busy = 1
		}
		u.calA.RawSetIndex(i, busy)
	}
}
