package calendar

import (
	"errors"
	"strings"
	"testing"

	"laminar"
)

func TestScheduleMeeting(t *testing.T) {
	s, err := New(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	// Alice busy on even slots, Bob on multiples of 3: the first common
	// free slot is 1 (a free: odd; b free: not multiple of 3).
	day, err := s.ScheduleMeeting()
	if err != nil {
		t.Fatal(err)
	}
	if day != 1 {
		t.Errorf("first slot = %d, want 1", day)
	}
	// The slot is now busy for Alice; next pick differs.
	day2, err := s.ScheduleMeeting()
	if err != nil {
		t.Fatal(err)
	}
	if day2 == day {
		t.Errorf("second slot = %d, same as first", day2)
	}
}

func TestMeetingsReachAliceOnly(t *testing.T) {
	s, err := New(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.ScheduleMeeting(); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.ReadMeetingsAsAlice()
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(out)) != 3 {
		t.Errorf("meetings file = %q, want 3 entries", out)
	}
	if !s.BobCannotReadMeetings() {
		t.Error("Bob read Alice's meetings file")
	}
}

func TestScheduleExhaustionAndReset(t *testing.T) {
	s, err := New(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	scheduled := 0
	for {
		_, err := s.ScheduleMeeting()
		if errors.Is(err, ErrNoSlot) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		scheduled++
		if scheduled > Slots {
			t.Fatal("scheduled more meetings than slots")
		}
	}
	if scheduled == 0 {
		t.Fatal("no meetings scheduled before exhaustion")
	}
	if err := s.ResetAlice(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleMeeting(); err != nil {
		t.Errorf("schedule after reset = %v", err)
	}
}

func TestSecuredMatchesUnsecuredSlots(t *testing.T) {
	sys := laminar.NewSystem()
	s, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnsecured(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, err1 := s.ScheduleMeeting()
		b, err2 := u.ScheduleMeeting()
		if err1 != nil || err2 != nil {
			t.Fatalf("iteration %d: %v / %v", i, err1, err2)
		}
		if a != b {
			t.Errorf("iteration %d: secured slot %d, unsecured %d", i, a, b)
		}
	}
}

func TestSchedulerCannotDeclassifyAlice(t *testing.T) {
	// The scheduler holds b− but not a−: writing the meeting date to an
	// UNLABELED destination would need a− and must fail.
	s, err := New(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Alice.tag, s.Bob.tag
	both := laminar.Labels{S: laminar.NewLabel(a, b)}
	bMinus := laminar.NewCapSet(laminar.EmptyLabel, laminar.NewLabel(b))
	escaped := false
	err = s.thread.Secure(both, bMinus, func(r *laminar.Region) {
		res := r.Alloc(nil)
		r.Set(res, "slot", 1)
		// Attempt full declassification: requires a− too.
		err := s.thread.Secure(laminar.Labels{}, bMinus, func(r2 *laminar.Region) {
			escaped = true
		}, nil)
		if err == nil {
			escaped = true
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if escaped {
		t.Error("scheduler declassified Alice's data without a−")
	}
}

func TestConcurrentLoadersUsedHeterogeneousLabels(t *testing.T) {
	sys := laminar.NewSystem()
	s, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	// The two calendars were loaded into objects with different labels in
	// the same address space.
	if s.calA.Labels().Equal(s.calB.Labels()) {
		t.Error("calendars share a label")
	}
	if !s.calA.IsLabeled() || !s.calB.IsLabeled() {
		t.Error("calendars not labeled")
	}
}

func TestUnsecuredResetAndAccessors(t *testing.T) {
	sys := laminar.NewSystem()
	s, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	if s.VM() == nil {
		t.Error("VM() nil")
	}
	if s.Alice.Tag() == s.Bob.Tag() {
		t.Error("users share a tag")
	}
	u, err := NewUnsecured(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := u.ScheduleMeeting(); errors.Is(err, ErrNoSlot) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	u.ResetAlice()
	if _, err := u.ScheduleMeeting(); err != nil {
		t.Errorf("schedule after unsecured reset = %v", err)
	}
}
