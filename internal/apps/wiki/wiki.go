// Package wiki is a comparative study shaped after the application Flume
// was evaluated on (MoinMoin wiki, §6.2): a multi-user wiki where each
// user's private pages carry the user's secrecy tag. It implements the
// same wiki twice —
//
//   - LaminarWiki: one server process; each request runs in a security
//     region with the page's label on a per-user thread, so differently
//     labeled pages are served concurrently from one address space;
//
//   - FlumeWiki: a process-granularity monitor; the worker process must
//     relabel itself around every private-page request (two label
//     changes per request through the monitor), because the label
//     applies to the whole address space.
//
// The functional gap (heterogeneous labels) and the cost gap (monitor
// round trips per request) are both measurable; see wiki_test.go and the
// WikiCompare benchmark.
package wiki

import (
	"fmt"
	"sync"

	"laminar"
	"laminar/internal/difc"
	"laminar/internal/flume"
	"laminar/internal/simwork"
)

// renderWork models page rendering (markup → HTML), identical in both
// implementations.
const renderWork = 5000

// ErrDenied reports an access rejection.
var ErrDenied = fmt.Errorf("wiki: access denied")

// --- Laminar implementation ---

// LaminarWiki is the region-based wiki server.
type LaminarWiki struct {
	sys  *laminar.System
	vm   *laminar.VM
	main *laminar.Thread

	mu    sync.Mutex
	users map[string]*wikiUser
	pages map[string]*wikiPage
}

type wikiUser struct {
	name   string
	tag    laminar.Tag
	thread *laminar.Thread
}

type wikiPage struct {
	title   string
	owner   string // "" = public
	content *laminar.Object
}

// NewLaminar boots the wiki server.
func NewLaminar(sys *laminar.System) (*LaminarWiki, error) {
	shell, err := sys.Login("wikid")
	if err != nil {
		return nil, err
	}
	vm, main, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	return &LaminarWiki{
		sys: sys, vm: vm, main: main,
		users: make(map[string]*wikiUser),
		pages: make(map[string]*wikiPage),
	}, nil
}

// VM exposes the runtime for statistics.
func (w *LaminarWiki) VM() *laminar.VM { return w.vm }

// Register adds a user with a fresh private tag and a dedicated handler
// thread holding only that user's plus capability.
func (w *LaminarWiki) Register(name string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.users[name]; dup {
		return fmt.Errorf("wiki: user %q exists", name)
	}
	tag, err := w.main.CreateTag()
	if err != nil {
		return err
	}
	th, err := w.main.Fork([]laminar.Capability{{Tag: tag, Kind: laminar.CapPlus}})
	if err != nil {
		return err
	}
	w.users[name] = &wikiUser{name: name, tag: tag, thread: th}
	return nil
}

// Put creates or replaces a page. Private pages (owner != "") are labeled
// with the owner's tag and written from the owner's region.
func (w *LaminarWiki) Put(owner, title, text string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	pg := &wikiPage{title: title, owner: owner}
	if owner == "" {
		pg.content = laminar.NewObject()
		pg.content.RawSet("text", text)
		w.pages[title] = pg
		return nil
	}
	u, ok := w.users[owner]
	if !ok {
		return fmt.Errorf("wiki: no user %q", owner)
	}
	labels := laminar.Labels{S: laminar.NewLabel(u.tag)}
	err := u.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		pg.content = r.Alloc(nil)
		r.Set(pg.content, "text", text)
	}, nil)
	if err != nil {
		return err
	}
	w.pages[title] = pg
	return nil
}

// Get serves a page to the requesting user: public pages render outside
// regions; private pages render inside a region with the owner's label on
// the requesting user's thread, which only works for the owner (the
// thread holds no other plus capabilities).
func (w *LaminarWiki) Get(requester, title string) (string, error) {
	w.mu.Lock()
	pg, ok := w.pages[title]
	u, uok := w.users[requester]
	w.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("wiki: no page %q", title)
	}
	if !uok {
		return "", fmt.Errorf("wiki: no user %q", requester)
	}
	if pg.owner == "" {
		simwork.Do(renderWork)
		return render(title, pg.content.RawGet("text").(string)), nil
	}
	w.mu.Lock()
	ownerTag := w.users[pg.owner].tag
	w.mu.Unlock()
	labels := laminar.Labels{S: laminar.NewLabel(ownerTag)}
	var out string
	violated := false
	err := u.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		text := r.Get(pg.content, "text").(string)
		simwork.Do(renderWork)
		out = render(title, text)
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return "", ErrDenied
	}
	// The rendered result carries the owner's taint; it is returned on
	// the owner's own channel (their thread produced it inside the
	// region), so handing the string back to the owner is the in-label
	// delivery. A non-owner never reaches this point.
	return out, nil
}

func render(title, text string) string {
	return "<h1>" + title + "</h1><p>" + text + "</p>"
}

// --- Flume-style implementation ---

// FlumeWiki serves the same content through a process-granularity
// reference monitor: one worker process whose whole-address-space label
// must match the page being served.
type FlumeWiki struct {
	mon    *flume.Monitor
	worker *flume.Proc

	mu    sync.Mutex
	users map[string]difc.Tag
	pages map[string]*flumePage
}

type flumePage struct {
	title string
	owner string
	text  string
	label difc.Labels
}

// NewFlume boots the monitor-based wiki.
func NewFlume() *FlumeWiki {
	mon := flume.NewMonitor()
	return &FlumeWiki{
		mon:    mon,
		worker: mon.Spawn(),
		users:  make(map[string]difc.Tag),
		pages:  make(map[string]*flumePage),
	}
}

// Syscalls reports monitor round trips so far.
func (w *FlumeWiki) Syscalls() uint64 { return w.mon.Syscalls }

// Register creates the user's tag; the worker (as the trusted app) owns
// all tags, mirroring a Flume application holding its users' tags.
func (w *FlumeWiki) Register(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.users[name] = w.mon.CreateTag(w.worker)
}

// Put stores a page with the owner's label.
func (w *FlumeWiki) Put(owner, title, text string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	pg := &flumePage{title: title, owner: owner, text: text}
	if owner != "" {
		tag, ok := w.users[owner]
		if !ok {
			return fmt.Errorf("wiki: no user %q", owner)
		}
		pg.label = difc.Labels{S: difc.NewLabel(tag)}
	}
	w.pages[title] = pg
	return nil
}

// Get serves a page: for private pages the whole worker process raises
// its label, reads, renders, and must drop the label again before the
// next request — two extra monitor calls per request, and no concurrent
// requests at different labels in this process.
func (w *FlumeWiki) Get(requester, title string) (string, error) {
	w.mu.Lock()
	pg, ok := w.pages[title]
	reqTag, uok := w.users[requester]
	w.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("wiki: no page %q", title)
	}
	if !uok {
		return "", fmt.Errorf("wiki: no user %q", requester)
	}
	if pg.owner == "" {
		simwork.Do(renderWork)
		return render(pg.title, pg.text), nil
	}
	// Policy: only the owner may fetch a private page. The monitor
	// enforces it structurally: the response must flow to the requester,
	// so the worker checks that the page label is within the requester's
	// label (their own tag).
	if !pg.label.S.SubsetOf(difc.NewLabel(reqTag)) {
		return "", ErrDenied
	}
	// Raise the whole process to the page's label...
	if err := w.mon.SetLabel(w.worker, 0, pg.label.S); err != nil {
		return "", err
	}
	if err := w.mon.ReadData(w.worker, pg.label); err != nil {
		w.mon.SetLabel(w.worker, 0, difc.EmptyLabel)
		return "", err
	}
	simwork.Do(renderWork)
	out := render(pg.title, pg.text)
	// ...deliver to the requester's endpoint (same label, legal), then
	// drop the label for the next request.
	if err := w.mon.WriteData(w.worker, pg.label); err != nil {
		return "", err
	}
	if err := w.mon.SetLabel(w.worker, 0, difc.EmptyLabel); err != nil {
		return "", err
	}
	return out, nil
}
