package wiki

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"laminar"
)

func newLaminarWiki(t *testing.T) *LaminarWiki {
	t.Helper()
	w, err := NewLaminar(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		if err := w.Register(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Put("", "Home", "welcome"); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("alice", "AliceDiary", "met bob"); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("bob", "BobNotes", "buy milk"); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLaminarWikiAccess(t *testing.T) {
	w := newLaminarWiki(t)
	// Public page: everyone.
	for _, u := range []string{"alice", "bob"} {
		out, err := w.Get(u, "Home")
		if err != nil || !strings.Contains(out, "welcome") {
			t.Errorf("%s Get Home = %q, %v", u, out, err)
		}
	}
	// Private page: owner only.
	out, err := w.Get("alice", "AliceDiary")
	if err != nil || !strings.Contains(out, "met bob") {
		t.Fatalf("owner read = %q, %v", out, err)
	}
	if _, err := w.Get("bob", "AliceDiary"); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-user read = %v, want denied", err)
	}
	// Errors.
	if _, err := w.Get("alice", "nope"); err == nil {
		t.Error("missing page served")
	}
	if _, err := w.Get("mallory", "Home"); err == nil {
		t.Error("unknown user served")
	}
	if err := w.Register("alice"); err == nil {
		t.Error("duplicate registration")
	}
	if err := w.Put("mallory", "X", "y"); err == nil {
		t.Error("page for unknown user accepted")
	}
}

func TestLaminarWikiConcurrentHeterogeneous(t *testing.T) {
	// The Laminar advantage: simultaneous requests for differently
	// labeled pages in ONE address space. Run both users' private-page
	// requests concurrently under -race.
	w := newLaminarWiki(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := w.Get("alice", "AliceDiary"); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := w.Get("bob", "BobNotes"); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlumeWikiAccessAndCost(t *testing.T) {
	w := NewFlume()
	w.Register("alice")
	w.Register("bob")
	w.Put("", "Home", "welcome")
	w.Put("alice", "AliceDiary", "met bob")

	out, err := w.Get("alice", "Home")
	if err != nil || !strings.Contains(out, "welcome") {
		t.Fatalf("public get = %q, %v", out, err)
	}
	before := w.Syscalls()
	out, err = w.Get("alice", "AliceDiary")
	if err != nil || !strings.Contains(out, "met bob") {
		t.Fatalf("owner get = %q, %v", out, err)
	}
	perRequest := w.Syscalls() - before
	// Two label changes + read + write = four monitor round trips per
	// private request; the structural cost the paper's 34–43% comes from.
	if perRequest < 4 {
		t.Errorf("monitor calls per private request = %d, want >= 4", perRequest)
	}
	if _, err := w.Get("bob", "AliceDiary"); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-user get = %v, want denied", err)
	}
	if _, err := w.Get("alice", "nope"); err == nil {
		t.Error("missing page served")
	}
	if _, err := w.Get("mallory", "Home"); err == nil {
		t.Error("unknown user served")
	}
}

func TestBothWikisAgreeOnContent(t *testing.T) {
	lw := newLaminarWiki(t)
	fw := NewFlume()
	fw.Register("alice")
	fw.Put("", "Home", "welcome")
	fw.Put("alice", "AliceDiary", "met bob")

	for _, title := range []string{"Home", "AliceDiary"} {
		a, err := lw.Get("alice", title)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fw.Get("alice", title)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: laminar %q != flume %q", title, a, b)
		}
	}
}
