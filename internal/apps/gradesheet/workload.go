package gradesheet

import (
	"math/rand"

	"laminar/internal/simwork"
)

// requestHandlingWork models the per-query parsing and response
// formatting of the original server, identical in both variants.
const requestHandlingWork = 8000

// Workload drives the server with the paper's experiment shape (§7.1):
// queries from different users — student reads, TA writes and column
// reads, professor averages. The mix keeps roughly 6% of wall time inside
// security regions (Table 3) because most work is request handling around
// the region.
type Workload struct {
	rng *rand.Rand
}

// NewWorkload builds a deterministic workload.
func NewWorkload(seed int64) *Workload {
	return &Workload{rng: rand.New(rand.NewSource(seed))}
}

// RunSecured processes n queries against the secured server and returns a
// checksum (so the compiler cannot elide work).
func (w *Workload) RunSecured(s *Server, n int) int {
	sum := 0
	for q := 0; q < n; q++ {
		i := w.rng.Intn(s.nStud)
		j := w.rng.Intn(s.nProj)
		switch q % 4 {
		case 0: // TA updates a cell in her column
			if err := s.TAWrite(j, i, j, q%100); err != nil {
				panic(err)
			}
		case 1: // student reads own marks
			m, err := s.StudentRead(i, i, j)
			if err != nil {
				panic(err)
			}
			sum += m
		case 2: // TA surveys her column
			col, err := s.TAReadColumn(j, j)
			if err != nil {
				panic(err)
			}
			sum += len(col)
		case 3: // professor publishes the average
			avg, err := s.ProfessorAverage(j)
			if err != nil {
				panic(err)
			}
			sum += avg
		}
		// Unlabeled request-handling work outside the regions: parsing,
		// response formatting (simulated).
		sum += simulateRequestHandling(w.rng, 40)
	}
	return sum
}

// RunUnsecured processes the same query mix against the original server.
func (w *Workload) RunUnsecured(u *Unsecured, n int) int {
	sum := 0
	for q := 0; q < n; q++ {
		i := w.rng.Intn(u.nStud)
		j := w.rng.Intn(u.nProj)
		switch q % 4 {
		case 0:
			if err := u.Write(RoleTA, j, i, j, q%100); err != nil {
				panic(err)
			}
		case 1:
			m, err := u.Read(RoleStudent, i, i, j)
			if err != nil {
				panic(err)
			}
			sum += m
		case 2:
			for k := 0; k < u.nStud; k++ {
				m, err := u.Read(RoleTA, j, k, j)
				if err != nil {
					panic(err)
				}
				sum += m
			}
			sum -= sum // keep comparable magnitude
		case 3:
			avg, err := u.Average(RoleProfessor, 0, j)
			if err != nil {
				panic(err)
			}
			sum += avg
		}
		sum += simulateRequestHandling(w.rng, 40)
	}
	return sum
}

// simulateRequestHandling models the unlabeled request parsing and
// response formatting around each query — the large majority of
// GradeSheet's time spent outside security regions (Table 3).
func simulateRequestHandling(rng *rand.Rand, work int) int {
	simwork.Do(requestHandlingWork)
	return rng.Intn(2)
}
