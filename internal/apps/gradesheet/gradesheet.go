// Package gradesheet is the first Laminar case study (§7.1): a grade
// server whose two-dimensional GradeCell array is protected per-cell with
// heterogeneous labels — cell (i,j) carries secrecy tag s_i (student i's
// privacy) and integrity tag p_j (project j's grading authority), the
// Table 4 policy:
//
//	GradeCell(i,j)  {S(s_i), I(p_j)}
//	Student(i)      C(s_i+, s_i−)
//	TA(j)           C(s_1+ … s_n+, p_j+, p_j−)
//	Professor       C(all ±)
//
// Students read their own marks for any project; TAs read all marks but
// modify only their own project's; only the professor can compute and
// declassify the class average — the information leak Laminar found in
// the original ad-hoc policy (§7.1). The unsecured variant reproduces the
// original if..then authorization checks, leak included.
package gradesheet

import (
	"fmt"

	"laminar"
)

// Server is the secured grade server.
type Server struct {
	vm        *laminar.VM
	professor *laminar.Thread
	tas       []*laminar.Thread
	students  []*laminar.Thread
	sTags     []laminar.Tag // s_i, one per student
	pTags     []laminar.Tag // p_j, one per project
	cells     [][]*laminar.Object
	nStud     int
	nProj     int
}

// New builds a secured server with the Table 4 capability distribution.
func New(sys *laminar.System, nStudents, nProjects int) (*Server, error) {
	shell, err := sys.Login("professor")
	if err != nil {
		return nil, err
	}
	vm, prof, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	s := &Server{
		vm: vm, professor: prof,
		nStud: nStudents, nProj: nProjects,
		sTags: make([]laminar.Tag, nStudents),
		pTags: make([]laminar.Tag, nProjects),
	}
	for i := range s.sTags {
		if s.sTags[i], err = prof.CreateTag(); err != nil {
			return nil, err
		}
	}
	for j := range s.pTags {
		if s.pTags[j], err = prof.CreateTag(); err != nil {
			return nil, err
		}
	}
	// Allocate the labeled cells: the professor enters a region per cell
	// label pair. (Entering needs s_i+ and p_j+, which the professor has
	// as tag creator.)
	s.cells = make([][]*laminar.Object, nStudents)
	for i := 0; i < nStudents; i++ {
		s.cells[i] = make([]*laminar.Object, nProjects)
		for j := 0; j < nProjects; j++ {
			labels := laminar.Labels{
				S: laminar.NewLabel(s.sTags[i]),
				I: laminar.NewLabel(s.pTags[j]),
			}
			i, j := i, j
			err := prof.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
				cell := r.Alloc(nil)
				r.Set(cell, "marks", 0)
				s.cells[i][j] = cell
			}, nil)
			if err != nil {
				return nil, err
			}
		}
	}
	// Fork the principal threads with Table 4 capability subsets.
	s.students = make([]*laminar.Thread, nStudents)
	for i := range s.students {
		keep := []laminar.Capability{{Tag: s.sTags[i], Kind: laminar.CapBoth}}
		if s.students[i], err = prof.Fork(keep); err != nil {
			return nil, err
		}
	}
	s.tas = make([]*laminar.Thread, nProjects)
	for j := range s.tas {
		keep := make([]laminar.Capability, 0, nStudents+1)
		for i := range s.sTags {
			keep = append(keep, laminar.Capability{Tag: s.sTags[i], Kind: laminar.CapPlus})
		}
		keep = append(keep, laminar.Capability{Tag: s.pTags[j], Kind: laminar.CapBoth})
		if s.tas[j], err = prof.Fork(keep); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// VM exposes the runtime for statistics.
func (s *Server) VM() *laminar.VM { return s.vm }

// ErrDenied reports a policy rejection observed by a caller.
var ErrDenied = fmt.Errorf("gradesheet: access denied")

// StudentRead returns student i's marks for project j, executed as the
// student principal. A student asking about another student's cell cannot
// even enter the region.
func (s *Server) StudentRead(student, i, j int) (int, error) {
	th := s.students[student]
	labels := laminar.Labels{S: laminar.NewLabel(s.sTags[i])}
	marks, violated := 0, false
	err := th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		marks = r.Get(s.cells[i][j], "marks").(int)
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return 0, ErrDenied
	}
	return marks, nil
}

// TAWrite records marks for (i, j) as TA ta. The integrity tag p_j
// guarantees only project j's TA can modify its column.
func (s *Server) TAWrite(ta, i, j, marks int) error {
	th := s.tas[ta]
	labels := laminar.Labels{
		S: laminar.NewLabel(s.sTags[i]),
		I: laminar.NewLabel(s.pTags[j]),
	}
	violated := false
	err := th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.Set(s.cells[i][j], "marks", marks)
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return ErrDenied
	}
	return nil
}

// TAReadColumn returns all marks for project j as TA ta (legal: TAs hold
// every s_i+).
func (s *Server) TAReadColumn(ta, j int) ([]int, error) {
	th := s.tas[ta]
	labels := laminar.Labels{S: laminar.NewLabel(s.sTags...)}
	out := make([]int, s.nStud)
	violated := false
	err := th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		for i := 0; i < s.nStud; i++ {
			out[i] = r.Get(s.cells[i][j], "marks").(int)
		}
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return nil, ErrDenied
	}
	return out, nil
}

// StudentAverage is the leak probe: student tries to compute the class
// average for project j. Under the Table 4 policy the student holds only
// s_i+ and cannot enter a region covering other students' tags.
func (s *Server) StudentAverage(student, j int) (int, error) {
	th := s.students[student]
	labels := laminar.Labels{S: laminar.NewLabel(s.sTags...)}
	sum, violated := 0, false
	err := th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		for i := 0; i < s.nStud; i++ {
			sum += r.Get(s.cells[i][j], "marks").(int)
		}
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return 0, ErrDenied
	}
	return sum / s.nStud, nil
}

// ProfessorAverage computes and declassifies the class average for
// project j: read everything in a region covering all student tags, then
// declassify the aggregate in a nested region using the professor's minus
// capabilities (the paper's corrected policy).
func (s *Server) ProfessorAverage(j int) (int, error) {
	all := laminar.NewLabel(s.sTags...)
	minus := laminar.NewCapSet(laminar.EmptyLabel, all)
	out := laminar.NewObject()
	violated := false
	err := s.professor.Secure(laminar.Labels{S: all}, minus, func(r *laminar.Region) {
		agg := r.Alloc(nil)
		sum := 0
		for i := 0; i < s.nStud; i++ {
			sum += r.Get(s.cells[i][j], "marks").(int)
		}
		r.Set(agg, "avg", sum/s.nStud)
		// Nested declassification region.
		err := s.professor.Secure(laminar.Labels{}, minus, func(r2 *laminar.Region) {
			pub := r2.CopyAndLabel(agg, laminar.Labels{})
			out.RawSet("avg", r2.Get(pub, "avg"))
		}, nil)
		if err != nil {
			panic(err)
		}
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return 0, ErrDenied
	}
	return out.RawGet("avg").(int), nil
}

// --- unsecured variant: the original ad-hoc if..then policy ---

// Role enumerates the original program's principals.
type Role int

// Roles.
const (
	RoleStudent Role = iota
	RoleTA
	RoleProfessor
)

// Unsecured is the original GradeSheet with authorization sprinkled as
// if..then checks — including the average leak the paper reports.
type Unsecured struct {
	cells [][]*laminar.Object
	nStud int
	nProj int
}

// NewUnsecured builds the baseline server. Cells are the same rt.Object
// containers (same locking, same layout) without labels, so overhead
// comparisons isolate the DIFC checks.
func NewUnsecured(nStudents, nProjects int) *Unsecured {
	u := &Unsecured{nStud: nStudents, nProj: nProjects}
	u.cells = make([][]*laminar.Object, nStudents)
	for i := range u.cells {
		u.cells[i] = make([]*laminar.Object, nProjects)
		for j := range u.cells[i] {
			o := laminar.NewObject()
			o.RawSet("marks", 0)
			u.cells[i][j] = o
		}
	}
	return u
}

// Read implements the original policy: students may read their own row;
// TAs and the professor read anything.
func (u *Unsecured) Read(role Role, who, i, j int) (int, error) {
	if role == RoleStudent && who != i {
		return 0, ErrDenied
	}
	return u.cells[i][j].RawGet("marks").(int), nil
}

// Write implements the original policy: TAs write their own project's
// column; the professor writes anything.
func (u *Unsecured) Write(role Role, who, i, j, marks int) error {
	switch role {
	case RoleProfessor:
	case RoleTA:
		if who != j {
			return ErrDenied
		}
	default:
		return ErrDenied
	}
	u.cells[i][j].RawSet("marks", marks)
	return nil
}

// Average is the leaky endpoint: the original policy let any student
// compute the project average, which leaks information about everyone
// else's marks.
func (u *Unsecured) Average(role Role, who, j int) (int, error) {
	sum := 0
	for i := 0; i < u.nStud; i++ {
		sum += u.cells[i][j].RawGet("marks").(int)
	}
	return sum / u.nStud, nil
}
