package gradesheet

import (
	"errors"
	"testing"

	"laminar"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(laminar.NewSystem(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable4PolicyMatrix(t *testing.T) {
	s := newServer(t)
	// TA 1 grades project 1 for every student.
	for i := 0; i < 4; i++ {
		if err := s.TAWrite(1, i, 1, 10*(i+1)); err != nil {
			t.Fatalf("TAWrite(%d): %v", i, err)
		}
	}
	// (1) Students read their own marks, for any project.
	for i := 0; i < 4; i++ {
		m, err := s.StudentRead(i, i, 1)
		if err != nil {
			t.Fatalf("StudentRead(%d): %v", i, err)
		}
		if m != 10*(i+1) {
			t.Errorf("student %d marks = %d", i, m)
		}
	}
	// (2) A student cannot read another student's marks.
	if _, err := s.StudentRead(0, 1, 1); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-student read = %v, want denied", err)
	}
	// (3) TAs read all marks...
	col, err := s.TAReadColumn(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if col[3] != 40 {
		t.Errorf("column = %v", col)
	}
	// ...but cannot modify other projects' marks.
	if err := s.TAWrite(0, 2, 1, 99); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-project TA write = %v, want denied", err)
	}
	// (4) The professor can read/write any cell (via TAWrite equivalent:
	// professor average exercises reads; writes via the setup path).
	avg, err := s.ProfessorAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	if avg != (10+20+30+40)/4 {
		t.Errorf("average = %d", avg)
	}
}

func TestAverageLeakPrevented(t *testing.T) {
	s := newServer(t)
	// The original policy allowed this; Laminar's labels make it
	// impossible: the student cannot cover other students' tags.
	if _, err := s.StudentAverage(0, 1); !errors.Is(err, ErrDenied) {
		t.Errorf("student average = %v, want denied", err)
	}
	// The unsecured variant demonstrates the leak.
	u := NewUnsecured(4, 3)
	u.Write(RoleProfessor, 0, 0, 1, 100)
	if _, err := u.Average(RoleStudent, 0, 1); err != nil {
		t.Errorf("unsecured average should leak, got %v", err)
	}
}

func TestUnsecuredPolicy(t *testing.T) {
	u := NewUnsecured(3, 2)
	if err := u.Write(RoleTA, 0, 1, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := u.Write(RoleTA, 0, 1, 1, 50); !errors.Is(err, ErrDenied) {
		t.Errorf("TA cross-project write = %v", err)
	}
	if err := u.Write(RoleStudent, 1, 1, 0, 50); !errors.Is(err, ErrDenied) {
		t.Errorf("student write = %v", err)
	}
	if _, err := u.Read(RoleStudent, 0, 1, 0); !errors.Is(err, ErrDenied) {
		t.Errorf("student cross-read = %v", err)
	}
	m, err := u.Read(RoleTA, 0, 1, 0)
	if err != nil || m != 50 {
		t.Errorf("TA read = %d, %v", m, err)
	}
}

func TestWorkloadsAgree(t *testing.T) {
	s := newServer(t)
	u := NewUnsecured(4, 3)
	// Both workloads complete without violations and touch the regions.
	NewWorkload(42).RunSecured(s, 64)
	NewWorkload(42).RunUnsecured(u, 64)
	if s.VM().Stats().RegionsEntered.Load() == 0 {
		t.Error("secured workload entered no regions")
	}
	if s.VM().Stats().RegionNanos.Load() <= 0 {
		t.Error("no region time recorded")
	}
}

func TestTimeInRegionsFraction(t *testing.T) {
	// Table 3 reports ~6% of GradeSheet's time inside security regions;
	// assert ours is a small minority share (< 50%), not the whole run.
	s := newServer(t)
	vm := s.VM()
	vm.Stats().Reset()
	start := nowNanos()
	NewWorkload(7).RunSecured(s, 200)
	total := nowNanos() - start
	inSR := vm.Stats().RegionNanos.Load()
	if inSR <= 0 || inSR >= total {
		t.Errorf("time in SR = %d of %d", inSR, total)
	}
}
