package gradesheet

import "time"

// nowNanos is a test helper for wall-clock deltas.
func nowNanos() int64 { return time.Now().UnixNano() }
