package freecs

import (
	"errors"
	"testing"

	"laminar"
)

func newChat(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(laminar.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBanPolicy(t *testing.T) {
	s := newChat(t)
	admin, err := s.Login("admin", RoleSuperuser, "lobby")
	if err != nil {
		t.Fatal(err)
	}
	vip, err := s.Login("vip", RoleVIP)
	if err != nil {
		t.Fatal(err)
	}
	guest, err := s.Login("guest", RoleGuest)
	if err != nil {
		t.Fatal(err)
	}
	troll, err := s.Login("troll", RoleGuest)
	if err != nil {
		t.Fatal(err)
	}

	// Only the VIP superuser can ban.
	if err := s.Ban(guest, "lobby", "troll"); !errors.Is(err, ErrDenied) {
		t.Errorf("guest ban = %v, want denied", err)
	}
	if err := s.Ban(vip, "lobby", "troll"); !errors.Is(err, ErrDenied) {
		t.Errorf("plain VIP ban = %v, want denied", err)
	}
	if err := s.Ban(admin, "lobby", "troll"); err != nil {
		t.Fatalf("admin ban = %v", err)
	}
	// The banned user cannot speak; others can.
	if err := s.Say(troll, "lobby", "hi"); !errors.Is(err, ErrDenied) {
		t.Errorf("banned say = %v, want denied", err)
	}
	if err := s.Say(guest, "lobby", "hi"); err != nil {
		t.Errorf("guest say = %v", err)
	}
	if s.Messages("lobby") != 1 {
		t.Errorf("messages = %d", s.Messages("lobby"))
	}
}

func TestThemeAndInvitePolicy(t *testing.T) {
	s := newChat(t)
	admin, _ := s.Login("admin", RoleSuperuser, "lobby")
	vip, _ := s.Login("vip", RoleVIP)

	if err := s.SetTheme(vip, "lobby", "hax"); !errors.Is(err, ErrDenied) {
		t.Errorf("vip theme = %v, want denied", err)
	}
	if err := s.SetTheme(admin, "lobby", "maintenance"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Theme(vip, "lobby")
	if err != nil || got != "maintenance" {
		t.Errorf("theme = %q, %v", got, err)
	}
	if err := s.Invite(vip, "lobby", "friend"); !errors.Is(err, ErrDenied) {
		t.Errorf("vip invite = %v, want denied", err)
	}
	if err := s.Invite(admin, "lobby", "friend"); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLifecycle(t *testing.T) {
	s := newChat(t)
	if _, err := s.CreateGroup("dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateGroup("dev"); err == nil {
		t.Error("duplicate group accepted")
	}
	// A superuser of lobby is NOT a superuser of dev.
	admin, _ := s.Login("admin", RoleSuperuser, "lobby")
	if err := s.Ban(admin, "dev", "x"); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-group ban = %v, want denied", err)
	}
	if err := s.Ban(admin, "nope", "x"); err == nil {
		t.Error("ban in missing group accepted")
	}
	if _, err := s.Login("admin", RoleGuest); err == nil {
		t.Error("duplicate login accepted")
	}
}

func TestWorkloads(t *testing.T) {
	s := newChat(t)
	n, err := RunWorkload(s, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Errorf("commands = %d, want 600", n)
	}
	u := NewUnsecuredServer()
	n, err = RunUnsecuredWorkload(u, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Errorf("unsecured commands = %d, want 600", n)
	}
	// Message counts agree between variants.
	if s.Messages("lobby") != u.Messages("lobby") {
		t.Errorf("secured msgs %d, unsecured %d", s.Messages("lobby"), u.Messages("lobby"))
	}
}

func TestUnsecuredPolicyChecks(t *testing.T) {
	s := NewUnsecuredServer()
	s.GrantSuperuser("lobby", "admin")
	admin := &UnsecUser{Name: "admin", Role: RoleSuperuser}
	vip := &UnsecUser{Name: "vip", Role: RoleVIP}
	troll := &UnsecUser{Name: "troll", Role: RoleGuest}
	if err := s.Ban(vip, "lobby", "troll"); !errors.Is(err, ErrDenied) {
		t.Errorf("vip ban = %v", err)
	}
	if err := s.Ban(admin, "lobby", "troll"); err != nil {
		t.Fatal(err)
	}
	if err := s.Say(troll, "lobby", "hi"); !errors.Is(err, ErrDenied) {
		t.Errorf("banned say = %v", err)
	}
	if err := s.SetTheme(admin, "lobby", "x"); err != nil {
		t.Errorf("admin theme = %v", err)
	}
	if err := s.Invite(vip, "lobby", "y"); !errors.Is(err, ErrDenied) {
		t.Errorf("vip invite = %v", err)
	}
}
