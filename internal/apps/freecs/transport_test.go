package freecs

import (
	"strings"
	"testing"

	"laminar"
)

// drive pumps the listener until quiescent.
func drive(l *Listener) {
	for l.Pump() > 0 {
	}
}

// roundTrip sends one line and returns the reply after pumping.
func roundTrip(t *testing.T, l *Listener, c *Client, line string) string {
	t.Helper()
	if err := c.Send(line); err != nil {
		t.Fatal(err)
	}
	drive(l)
	return c.Recv()
}

func TestSocketChatSession(t *testing.T) {
	sys := laminar.NewSystem()
	s, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.ListenAndServe("chat")
	if err != nil {
		t.Fatal(err)
	}

	admin, err := Dial(sys, "chat")
	if err != nil {
		t.Fatal(err)
	}
	troll, err := Dial(sys, "chat")
	if err != nil {
		t.Fatal(err)
	}

	if got := roundTrip(t, l, admin, "LOGIN boss super lobby"); got != "OK" {
		t.Fatalf("admin login = %q", got)
	}
	if got := roundTrip(t, l, troll, "LOGIN troll guest"); got != "OK" {
		t.Fatalf("troll login = %q", got)
	}
	if got := roundTrip(t, l, troll, "SAY lobby first post"); got != "OK" {
		t.Fatalf("troll say = %q", got)
	}
	// The troll cannot ban; the policy rejection travels back as ERR.
	if got := roundTrip(t, l, troll, "BAN lobby boss"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("troll ban = %q", got)
	}
	// The admin bans the troll over the wire.
	if got := roundTrip(t, l, admin, "BAN lobby troll"); got != "OK" {
		t.Fatalf("admin ban = %q", got)
	}
	if got := roundTrip(t, l, troll, "SAY lobby still here"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("banned say = %q", got)
	}
	// Theme get/set.
	if got := roundTrip(t, l, admin, "THEME lobby maintenance window"); got != "OK" {
		t.Fatalf("set theme = %q", got)
	}
	if got := roundTrip(t, l, troll, "THEME lobby"); got != "OK maintenance window" {
		t.Fatalf("get theme = %q", got)
	}
	if s.Messages("lobby") != 1 {
		t.Errorf("messages = %d, want 1", s.Messages("lobby"))
	}
	// Quit closes the session.
	if got := roundTrip(t, l, troll, "QUIT"); got != "OK bye" {
		t.Fatalf("quit = %q", got)
	}
}

func TestSocketProtocolErrors(t *testing.T) {
	sys := laminar.NewSystem()
	s, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.ListenAndServe("chat2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sys, "chat2")
	if err != nil {
		t.Fatal(err)
	}
	if got := roundTrip(t, l, c, "SAY lobby hi"); got != "ERR login first" {
		t.Errorf("pre-login say = %q", got)
	}
	if got := roundTrip(t, l, c, "LOGIN x wizard"); got != "ERR unknown role" {
		t.Errorf("bad role = %q", got)
	}
	if got := roundTrip(t, l, c, "LOGIN x guest"); got != "OK" {
		t.Fatalf("login = %q", got)
	}
	if got := roundTrip(t, l, c, "LOGIN y guest"); got != "ERR already logged in" {
		t.Errorf("double login = %q", got)
	}
	if got := roundTrip(t, l, c, "FROBNICATE"); !strings.Contains(got, "unknown command") {
		t.Errorf("unknown command = %q", got)
	}
	if got := roundTrip(t, l, c, "BAN lobby"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("malformed ban = %q", got)
	}
}
