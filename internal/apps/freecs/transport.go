package freecs

import (
	"fmt"
	"strings"

	"laminar"
	"laminar/internal/kernel"
)

// Socket transport. The original FreeCS speaks a line protocol over TCP;
// here clients are separate kernel tasks connected through the simulated
// kernel's label-checked sockets, so the command bytes themselves travel
// under DIFC enforcement. The protocol:
//
//	LOGIN <name> <guest|vip|super> [group]
//	SAY <group> <text...>
//	BAN <group> <target>
//	INVITE <group> <user>
//	THEME <group> [text...]
//	QUIT
//
// Replies are "OK [data]" or "ERR <reason>". Everything is nonblocking —
// the simulated kernel never blocks a task — so the server runs as a pump
// the caller drives (Pump processes all pending work).

// Listener is the socket front end of a Server.
type Listener struct {
	srv  *Server
	name string
	k    *kernel.Kernel

	conns []*conn
}

type conn struct {
	fd     kernel.FD
	user   *ChatUser
	closed bool
}

// ListenAndServe registers the socket listener for the chat server.
func (s *Server) ListenAndServe(name string) (*Listener, error) {
	k := s.sys.Kernel()
	if err := k.Listen(s.main.Task(), name); err != nil {
		return nil, err
	}
	return &Listener{srv: s, name: name, k: k}, nil
}

// Pump accepts pending connections and processes one command per
// connection; it reports how many commands it executed. Call in a loop
// until it returns 0 to drain.
func (l *Listener) Pump() int {
	// Accept everything waiting.
	for {
		fd, err := l.k.Accept(l.srv.main.Task(), l.name)
		if err != nil {
			break
		}
		l.conns = append(l.conns, &conn{fd: fd})
	}
	executed := 0
	for _, c := range l.conns {
		if c.closed {
			continue
		}
		buf := make([]byte, 1024)
		n, err := l.k.Recv(l.srv.main.Task(), c.fd, buf)
		if err != nil || n == 0 {
			continue
		}
		for _, line := range strings.Split(strings.TrimSpace(string(buf[:n])), "\n") {
			reply := l.dispatch(c, line)
			l.k.Send(l.srv.main.Task(), c.fd, []byte(reply+"\n"))
			executed++
		}
	}
	return executed
}

// dispatch executes one protocol line for a connection.
func (l *Listener) dispatch(c *conn, line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command"
	}
	cmd := strings.ToUpper(fields[0])
	if cmd == "LOGIN" {
		if c.user != nil {
			return "ERR already logged in"
		}
		if len(fields) < 3 {
			return "ERR LOGIN <name> <role> [group]"
		}
		role, ok := map[string]Role{"guest": RoleGuest, "vip": RoleVIP, "super": RoleSuperuser}[fields[2]]
		if !ok {
			return "ERR unknown role"
		}
		var groups []string
		if role == RoleSuperuser {
			groups = fields[3:]
		}
		u, err := l.srv.Login(fields[1], role, groups...)
		if err != nil {
			return "ERR " + err.Error()
		}
		c.user = u
		return "OK"
	}
	if c.user == nil {
		return "ERR login first"
	}
	switch cmd {
	case "SAY":
		if len(fields) < 3 {
			return "ERR SAY <group> <text>"
		}
		if err := l.srv.Say(c.user, fields[1], strings.Join(fields[2:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "BAN":
		if len(fields) != 3 {
			return "ERR BAN <group> <target>"
		}
		if err := l.srv.Ban(c.user, fields[1], fields[2]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "INVITE":
		if len(fields) != 3 {
			return "ERR INVITE <group> <user>"
		}
		if err := l.srv.Invite(c.user, fields[1], fields[2]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "THEME":
		if len(fields) == 2 {
			theme, err := l.srv.Theme(c.user, fields[1])
			if err != nil {
				return "ERR " + err.Error()
			}
			return "OK " + theme
		}
		if err := l.srv.SetTheme(c.user, fields[1], strings.Join(fields[2:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "QUIT":
		l.srv.Logout(c.user)
		c.user = nil
		c.closed = true
		return "OK bye"
	default:
		return fmt.Sprintf("ERR unknown command %q", cmd)
	}
}

// Client is a test-side chat client on its own kernel task.
type Client struct {
	k    *kernel.Kernel
	task *laminar.Task
	fd   kernel.FD
}

// Dial connects a fresh task to the named chat listener.
func Dial(sys *laminar.System, name string) (*Client, error) {
	k := sys.Kernel()
	task, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		return nil, err
	}
	fd, err := k.Connect(task, name)
	if err != nil {
		return nil, err
	}
	return &Client{k: k, task: task, fd: fd}, nil
}

// Send transmits one protocol line.
func (c *Client) Send(line string) error {
	_, err := c.k.Send(c.task, c.fd, []byte(line))
	return err
}

// Recv returns the next reply, or "" when none is pending.
func (c *Client) Recv() string {
	buf := make([]byte, 1024)
	n, err := c.k.Recv(c.task, c.fd, buf)
	if err != nil || n == 0 {
		return ""
	}
	return strings.TrimSpace(string(buf[:n]))
}
