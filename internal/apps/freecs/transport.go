package freecs

import (
	"errors"
	"fmt"
	"strings"

	"laminar"
	"laminar/internal/kernel"
)

// Socket transport. The original FreeCS speaks a line protocol over TCP;
// here clients are separate kernel tasks connected through the simulated
// kernel's label-checked sockets, so the command bytes themselves travel
// under DIFC enforcement. The protocol:
//
//	LOGIN <name> <guest|vip|super> [group]
//	SAY <group> <text...>
//	BAN <group> <target>
//	INVITE <group> <user>
//	THEME <group> [text...]
//	QUIT
//
// Replies are "OK [data]" or "ERR <reason>". Everything is nonblocking —
// the simulated kernel never blocks a task — so the server runs as a pump
// the caller drives (Pump processes all pending work).

// Robustness limits. The transport assumes the kernel can fail any socket
// call (fault injection, dead peers): retries are bounded, backoff is a
// deterministic doubling counted in Pump calls (no wall clock, so chaos
// schedules replay exactly), and connections that keep failing — or that
// arrive beyond capacity — are shed rather than retried forever.
const (
	// maxConns bounds live connections; new accepts beyond it are closed
	// immediately (shed at the door).
	maxConns = 64
	// maxConnFailures sheds a connection after this many hard errors.
	maxConnFailures = 3
	// maxBackoffRounds caps the doubling: the longest wait is
	// 2^maxBackoffRounds Pump calls.
	maxBackoffRounds = 8
	// maxAcceptPerPump bounds accept work per Pump so one pump cannot be
	// monopolized by a connect flood.
	maxAcceptPerPump = 32
	// dialRetries bounds connect attempts from the client side.
	dialRetries = 3
)

// backoffFor returns the deterministic wait, in Pump calls, after the n-th
// consecutive failure: 2, 4, 8, ... capped at 2^maxBackoffRounds.
func backoffFor(failures int) int {
	if failures > maxBackoffRounds {
		failures = maxBackoffRounds
	}
	return 1 << failures
}

// Listener is the socket front end of a Server.
type Listener struct {
	srv  *Server
	name string
	k    *kernel.Kernel

	conns []*conn

	// acceptFailures/acceptWait implement backoff for the accept path.
	acceptFailures int
	acceptWait     int

	// shed counts connections dropped for capacity or repeated failure
	// (tests assert the bound actually engages).
	shed int
}

type conn struct {
	fd     kernel.FD
	user   *ChatUser
	closed bool

	// failures counts consecutive hard errors on this connection; wait is
	// the remaining backoff in Pump calls before it is serviced again.
	failures int
	wait     int
}

// ListenAndServe registers the socket listener for the chat server.
func (s *Server) ListenAndServe(name string) (*Listener, error) {
	k := s.sys.Kernel()
	if err := k.Listen(s.main.Task(), name); err != nil {
		return nil, err
	}
	return &Listener{srv: s, name: name, k: k}, nil
}

// Pump accepts pending connections and processes one command per
// connection; it reports how many commands it executed. Call in a loop
// until it returns 0 to drain.
func (l *Listener) Pump() int {
	l.acceptPending()
	executed := 0
	for _, c := range l.conns {
		if c.closed {
			continue
		}
		if c.wait > 0 {
			c.wait--
			continue
		}
		buf := make([]byte, 1024)
		n, err := l.k.Recv(l.srv.main.Task(), c.fd, buf)
		if err != nil {
			if !errors.Is(err, kernel.ErrAgain) {
				// A hard error (dead peer, injected I/O fault): back off
				// deterministically, shed after the retry budget.
				l.connFailed(c)
			}
			continue
		}
		if n == 0 {
			continue
		}
		c.failures = 0
		for _, line := range strings.Split(strings.TrimSpace(string(buf[:n])), "\n") {
			reply := l.dispatch(c, line)
			if _, err := l.k.Send(l.srv.main.Task(), c.fd, []byte(reply+"\n")); err != nil {
				l.connFailed(c)
				break
			}
			executed++
		}
		if c.closed && c.fd >= 0 {
			// Voluntary QUIT: release the descriptor after the farewell.
			l.k.Close(l.srv.main.Task(), c.fd)
			c.fd = -1
		}
	}
	l.compact()
	return executed
}

// acceptPending drains the listen queue, bounded per pump and per the
// connection cap, with backoff after accept faults.
func (l *Listener) acceptPending() {
	if l.acceptWait > 0 {
		l.acceptWait--
		return
	}
	for i := 0; i < maxAcceptPerPump; i++ {
		fd, err := l.k.Accept(l.srv.main.Task(), l.name)
		if err != nil {
			if !errors.Is(err, kernel.ErrAgain) {
				l.acceptFailures++
				l.acceptWait = backoffFor(l.acceptFailures)
			}
			return
		}
		l.acceptFailures = 0
		if l.liveConns() >= maxConns {
			// Over capacity: shed at the door instead of queueing work the
			// pump can never catch up on.
			l.k.Close(l.srv.main.Task(), fd)
			l.shed++
			continue
		}
		l.conns = append(l.conns, &conn{fd: fd})
	}
}

// connFailed records a hard error on the connection, backing off and
// shedding once the retry budget is spent.
func (l *Listener) connFailed(c *conn) {
	c.failures++
	if c.failures >= maxConnFailures {
		l.dropConn(c)
		return
	}
	c.wait = backoffFor(c.failures)
}

// dropConn closes and logs out a connection.
func (l *Listener) dropConn(c *conn) {
	if c.user != nil {
		l.srv.Logout(c.user)
		c.user = nil
	}
	if c.fd >= 0 {
		l.k.Close(l.srv.main.Task(), c.fd)
		c.fd = -1
	}
	c.closed = true
	l.shed++
}

// compact removes closed connections from the slice.
func (l *Listener) compact() {
	live := l.conns[:0]
	for _, c := range l.conns {
		if !c.closed {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(l.conns); i++ {
		l.conns[i] = nil
	}
	l.conns = live
}

func (l *Listener) liveConns() int {
	n := 0
	for _, c := range l.conns {
		if !c.closed {
			n++
		}
	}
	return n
}

// Shed reports how many connections the listener has dropped for capacity
// or repeated failures.
func (l *Listener) Shed() int { return l.shed }

// dispatch executes one protocol line for a connection.
func (l *Listener) dispatch(c *conn, line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command"
	}
	cmd := strings.ToUpper(fields[0])
	if cmd == "LOGIN" {
		if c.user != nil {
			return "ERR already logged in"
		}
		if len(fields) < 3 {
			return "ERR LOGIN <name> <role> [group]"
		}
		role, ok := map[string]Role{"guest": RoleGuest, "vip": RoleVIP, "super": RoleSuperuser}[fields[2]]
		if !ok {
			return "ERR unknown role"
		}
		var groups []string
		if role == RoleSuperuser {
			groups = fields[3:]
		}
		u, err := l.srv.Login(fields[1], role, groups...)
		if err != nil {
			return "ERR " + err.Error()
		}
		c.user = u
		return "OK"
	}
	if c.user == nil {
		return "ERR login first"
	}
	switch cmd {
	case "SAY":
		if len(fields) < 3 {
			return "ERR SAY <group> <text>"
		}
		if err := l.srv.Say(c.user, fields[1], strings.Join(fields[2:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "BAN":
		if len(fields) != 3 {
			return "ERR BAN <group> <target>"
		}
		if err := l.srv.Ban(c.user, fields[1], fields[2]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "INVITE":
		if len(fields) != 3 {
			return "ERR INVITE <group> <user>"
		}
		if err := l.srv.Invite(c.user, fields[1], fields[2]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "THEME":
		if len(fields) == 2 {
			theme, err := l.srv.Theme(c.user, fields[1])
			if err != nil {
				return "ERR " + err.Error()
			}
			return "OK " + theme
		}
		if err := l.srv.SetTheme(c.user, fields[1], strings.Join(fields[2:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "QUIT":
		l.srv.Logout(c.user)
		c.user = nil
		c.closed = true // fd closed by Pump after the farewell is sent
		return "OK bye"
	default:
		return fmt.Sprintf("ERR unknown command %q", cmd)
	}
}

// Client is a test-side chat client on its own kernel task.
type Client struct {
	k    *kernel.Kernel
	task *laminar.Task
	fd   kernel.FD
}

// Dial connects a fresh task to the named chat listener, retrying a
// bounded number of times over transient (injected) connect faults.
func Dial(sys *laminar.System, name string) (*Client, error) {
	k := sys.Kernel()
	task, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		return nil, err
	}
	var fd kernel.FD
	for attempt := 0; ; attempt++ {
		fd, err = k.Connect(task, name)
		if err == nil {
			break
		}
		if attempt+1 >= dialRetries || !errors.Is(err, kernel.ErrIO) {
			k.Exit(task)
			return nil, err
		}
	}
	return &Client{k: k, task: task, fd: fd}, nil
}

// Alive reports whether the client's kernel task still exists (a chaos
// fault may have crash-killed it).
func (c *Client) Alive() bool { return !c.task.Exited() }

// Send transmits one protocol line.
func (c *Client) Send(line string) error {
	_, err := c.k.Send(c.task, c.fd, []byte(line))
	return err
}

// Recv returns the next reply, or "" when none is pending.
func (c *Client) Recv() string {
	buf := make([]byte, 1024)
	n, err := c.k.Recv(c.task, c.fd, buf)
	if err != nil || n == 0 {
		return ""
	}
	return strings.TrimSpace(string(buf[:n]))
}
