// Package freecs is the fourth Laminar case study (§7.4), modeled on the
// FreeCS open-source chat server. The original enforces its policy with
// if..then role checks scattered through 47 command handlers; the Laminar
// port maps roles onto integrity labels and localizes enforcement in the
// Group and User state: a group's ban list is protected by two integrity
// tags — one for the VIP role and one for the group's superuser — so only
// a user holding the add capability for both can execute /ban. The
// authentication module hands users the right capabilities at login.
package freecs

import (
	"fmt"
	"sync"

	"laminar"
	"laminar/internal/simwork"
)

// Work quanta shared by both variants: the original server accepts a
// socket, authenticates and spawns a handler thread per connection, and
// every command crosses the network and the command parser.
const (
	connectionWork  = 25000
	threadSpawnWork = 10000 // unsecured variant's per-connection thread (the secured one pays a real fork)
	commandWork     = 30000
)

// Role is a chat privilege level from the original server.
type Role int

// Roles.
const (
	RoleGuest Role = iota
	RoleVIP
	RoleSuperuser // per-group; implies VIP in the original policy
)

// Server is the secured chat server: one VM, one thread per connected
// user, integrity-labeled group state.
type Server struct {
	sys    *laminar.System
	vm     *laminar.VM
	main   *laminar.Thread
	vipTag laminar.Tag

	mu     sync.Mutex
	groups map[string]*Group
	users  map[string]*ChatUser
}

// Group is a chat room whose sensitive properties are integrity-labeled.
type Group struct {
	Name  string
	suTag laminar.Tag

	// banList and members are arrays of user names; theme is a single
	// field object. banList: {I(vip, su)}; members and theme: {I(su)}.
	banList *laminar.Object
	members *laminar.Object
	theme   *laminar.Object

	// messages is ordinary unlabeled chat history.
	messages *laminar.Object
	msgCount int
	banCount int
	memCount int
}

// ChatUser is a connected principal.
type ChatUser struct {
	Name   string
	Role   Role
	thread *laminar.Thread
}

// ErrDenied reports a policy rejection.
var ErrDenied = fmt.Errorf("freecs: permission denied")

// NewServer boots the secured chat server with one default group.
func NewServer(sys *laminar.System) (*Server, error) {
	shell, err := sys.Login("chatd")
	if err != nil {
		return nil, err
	}
	vm, main, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sys: sys, vm: vm, main: main,
		groups: make(map[string]*Group),
		users:  make(map[string]*ChatUser),
	}
	if s.vipTag, err = main.CreateTag(); err != nil {
		return nil, err
	}
	if _, err := s.CreateGroup("lobby"); err != nil {
		return nil, err
	}
	return s, nil
}

// VM exposes the runtime for statistics.
func (s *Server) VM() *laminar.VM { return s.vm }

// CreateGroup allocates a group with a fresh superuser tag and labeled
// state objects. Runs as the server principal, which holds all tags.
func (s *Server) CreateGroup(name string) (*Group, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.groups[name]; dup {
		return nil, fmt.Errorf("freecs: group %q exists", name)
	}
	suTag, err := s.main.CreateTag()
	if err != nil {
		return nil, err
	}
	g := &Group{Name: name, suTag: suTag, messages: laminar.NewArray(0)}
	banLabels := laminar.Labels{I: laminar.NewLabel(s.vipTag, suTag)}
	suLabels := laminar.Labels{I: laminar.NewLabel(suTag)}
	err = s.main.Secure(banLabels, laminar.EmptyCapSet, func(r *laminar.Region) {
		g.banList = r.AllocArray(maxList, nil)
	}, nil)
	if err != nil {
		return nil, err
	}
	err = s.main.Secure(suLabels, laminar.EmptyCapSet, func(r *laminar.Region) {
		g.members = r.AllocArray(maxList, nil)
		g.theme = r.Alloc(nil)
		r.Set(g.theme, "text", "welcome")
	}, nil)
	if err != nil {
		return nil, err
	}
	s.groups[name] = g
	return g, nil
}

// maxList bounds the labeled name arrays.
const maxList = 8192

// Login is the authentication module: it admits a user and hands their
// thread exactly the capabilities their role warrants (§7.4: "we changed
// the authentication module to ensure that users are given the right
// capabilities when they log in").
func (s *Server) Login(name string, role Role, superuserOf ...string) (*ChatUser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.users[name]; dup {
		return nil, fmt.Errorf("freecs: user %q already connected", name)
	}
	// Non-nil and empty: guests inherit no capabilities at all (a nil
	// keep set would mean "inherit everything" at fork).
	keep := []laminar.Capability{}
	if role == RoleVIP || role == RoleSuperuser {
		keep = append(keep, laminar.Capability{Tag: s.vipTag, Kind: laminar.CapPlus})
	}
	if role == RoleSuperuser {
		for _, gname := range superuserOf {
			g, ok := s.groups[gname]
			if !ok {
				return nil, fmt.Errorf("freecs: no group %q", gname)
			}
			keep = append(keep, laminar.Capability{Tag: g.suTag, Kind: laminar.CapPlus})
		}
	}
	simwork.Do(connectionWork)
	th, err := s.main.Fork(keep)
	if err != nil {
		return nil, err
	}
	u := &ChatUser{Name: name, Role: role, thread: th}
	s.users[name] = u
	return u, nil
}

// Logout disconnects the user.
func (s *Server) Logout(u *ChatUser) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u.thread.Exit()
	delete(s.users, u.Name)
}

// group looks up a group.
func (s *Server) group(name string) (*Group, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[name]
	if !ok {
		return nil, fmt.Errorf("freecs: no group %q", name)
	}
	return g, nil
}

// IsBanned reads the ban list inside an empty-label region (integrity
// labels restrict writers, not readers).
func (s *Server) IsBanned(u *ChatUser, gname string) (bool, error) {
	g, err := s.group(gname)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	banned := false
	rerr := u.thread.Secure(laminar.Labels{}, laminar.EmptyCapSet, func(r *laminar.Region) {
		for i := 0; i < g.banCount; i++ {
			if r.Index(g.banList, i) == u.Name {
				banned = true
				return
			}
		}
	}, nil)
	return banned, rerr
}

// Say posts a message to the group unless the speaker is banned.
func (s *Server) Say(u *ChatUser, gname, text string) error {
	simwork.Do(commandWork)
	banned, err := s.IsBanned(u, gname)
	if err != nil {
		return err
	}
	if banned {
		return ErrDenied
	}
	g, err := s.group(gname)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g.messages.RawSet(fmt.Sprintf("m%d", g.msgCount), u.Name+": "+text)
	g.msgCount++
	return nil
}

// Messages returns the group's message count (host-side observability).
func (s *Server) Messages(gname string) int {
	g, err := s.group(gname)
	if err != nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return g.msgCount
}

// Invite adds a user name to the group's member list; only the group's
// superuser can modify membership (the {I(su)} label enforces it — no
// if..then check anywhere).
func (s *Server) Invite(u *ChatUser, gname, invitee string) error {
	simwork.Do(commandWork)
	g, err := s.group(gname)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	labels := laminar.Labels{I: laminar.NewLabel(g.suTag)}
	violated := false
	err = u.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.SetIndex(g.members, g.memCount, invitee)
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return ErrDenied
	}
	g.memCount++
	return nil
}

// Ban adds a user to the ban list; the region needs both the VIP and the
// group-superuser integrity tags, so only a VIP with superuser power on
// the group can execute it — the paper's exact policy.
func (s *Server) Ban(u *ChatUser, gname, target string) error {
	simwork.Do(commandWork)
	g, err := s.group(gname)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	labels := laminar.Labels{I: laminar.NewLabel(s.vipTag, g.suTag)}
	violated := false
	err = u.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.SetIndex(g.banList, g.banCount, target)
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return ErrDenied
	}
	g.banCount++
	return nil
}

// SetTheme changes the group theme (superuser only, via {I(su)}).
func (s *Server) SetTheme(u *ChatUser, gname, theme string) error {
	simwork.Do(commandWork)
	g, err := s.group(gname)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	labels := laminar.Labels{I: laminar.NewLabel(g.suTag)}
	violated := false
	err = u.thread.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.Set(g.theme, "text", theme)
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return ErrDenied
	}
	return nil
}

// Theme reads the group theme inside an empty region.
func (s *Server) Theme(u *ChatUser, gname string) (string, error) {
	simwork.Do(commandWork)
	g, err := s.group(gname)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out string
	err = u.thread.Secure(laminar.Labels{}, laminar.EmptyCapSet, func(r *laminar.Region) {
		out = r.Get(g.theme, "text").(string)
	}, nil)
	return out, err
}

// --- unsecured variant: the original if..then authorization ---

// UnsecuredServer reproduces the original FreeCS policy checks.
type UnsecuredServer struct {
	mu     sync.Mutex
	groups map[string]*unsecGroup
}

type unsecGroup struct {
	banList  map[string]bool
	members  map[string]bool
	theme    string
	msgCount int
	supers   map[string]bool
}

// UnsecUser is an unsecured connection.
type UnsecUser struct {
	Name string
	Role Role
}

// NewUnsecuredServer boots the baseline with one group.
func NewUnsecuredServer() *UnsecuredServer {
	s := &UnsecuredServer{groups: make(map[string]*unsecGroup)}
	s.CreateGroup("lobby")
	return s
}

// CreateGroup adds a group.
func (s *UnsecuredServer) CreateGroup(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups[name] = &unsecGroup{
		banList: make(map[string]bool),
		members: make(map[string]bool),
		supers:  make(map[string]bool),
		theme:   "welcome",
	}
}

// GrantSuperuser records superuser power (the original role table).
func (s *UnsecuredServer) GrantSuperuser(gname, user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[gname]; ok {
		g.supers[user] = true
	}
}

// Say posts unless banned.
func (s *UnsecuredServer) Say(u *UnsecUser, gname, text string) error {
	simwork.Do(commandWork)
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[gname]
	if !ok {
		return fmt.Errorf("freecs: no group %q", gname)
	}
	if g.banList[u.Name] {
		return ErrDenied
	}
	g.msgCount++
	return nil
}

// Messages returns the count.
func (s *UnsecuredServer) Messages(gname string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[gname]; ok {
		return g.msgCount
	}
	return 0
}

// Invite: original check — superuser only.
func (s *UnsecuredServer) Invite(u *UnsecUser, gname, invitee string) error {
	simwork.Do(commandWork)
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[gname]
	if !ok {
		return fmt.Errorf("freecs: no group %q", gname)
	}
	if !g.supers[u.Name] {
		return ErrDenied
	}
	g.members[invitee] = true
	return nil
}

// Ban: original check — VIP with superuser power.
func (s *UnsecuredServer) Ban(u *UnsecUser, gname, target string) error {
	simwork.Do(commandWork)
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[gname]
	if !ok {
		return fmt.Errorf("freecs: no group %q", gname)
	}
	if u.Role < RoleVIP || !g.supers[u.Name] {
		return ErrDenied
	}
	g.banList[target] = true
	return nil
}

// SetTheme: original check — superuser.
func (s *UnsecuredServer) SetTheme(u *UnsecUser, gname, theme string) error {
	simwork.Do(commandWork)
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[gname]
	if !ok {
		return fmt.Errorf("freecs: no group %q", gname)
	}
	if !g.supers[u.Name] {
		return ErrDenied
	}
	g.theme = theme
	return nil
}
