package freecs

import (
	"errors"
	"fmt"
	"testing"

	"laminar"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
)

// TestListenerShedsOverCapacity: connections beyond maxConns are closed at
// the door instead of queueing unbounded work for the pump.
func TestListenerShedsOverCapacity(t *testing.T) {
	sys := laminar.NewSystem()
	s, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.ListenAndServe("busy")
	if err != nil {
		t.Fatal(err)
	}
	const extra = 5
	clients := make([]*Client, 0, maxConns+extra)
	for i := 0; i < maxConns+extra; i++ {
		c, err := Dial(sys, "busy")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	// Accepts are bounded per pump (maxAcceptPerPump), so draining the
	// connect flood takes several pumps even though no commands execute.
	for i := 0; i < (maxConns+extra)/maxAcceptPerPump+1; i++ {
		l.Pump()
	}
	if got := l.liveConns(); got != maxConns {
		t.Errorf("live connections = %d, want the %d cap", got, maxConns)
	}
	if l.Shed() != extra {
		t.Errorf("shed = %d, want %d over-capacity connections dropped", l.Shed(), extra)
	}
	// The ones inside the cap still work.
	if got := roundTrip(t, l, clients[0], "LOGIN first guest"); got != "OK" {
		t.Errorf("login on in-cap connection = %q", got)
	}
}

// TestListenerBacksOffAndSheds: a connection whose receives keep failing
// hard (injected hook faults) is retried on a doubling Pump-call backoff
// and shed — with its user logged out — once the retry budget is spent.
func TestListenerBacksOffAndSheds(t *testing.T) {
	plan := faultinject.NewPlan(5)
	sys := laminar.NewSystemWithInjector(plan)
	s, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.ListenAndServe("flaky")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sys, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	if got := roundTrip(t, l, c, "LOGIN mel guest"); got != "OK" {
		t.Fatalf("login = %q", got)
	}
	if len(s.users) != 1 {
		t.Fatalf("users = %d, want 1", len(s.users))
	}

	// Every server-side receive now faults hard.
	plan.SetRates("hook.FilePermission", faultinject.Rates{Error: 1})
	pumps := 0
	for l.liveConns() > 0 {
		l.Pump()
		pumps++
		if pumps > 64 {
			t.Fatalf("connection not shed after %d pumps (failures=%d)", pumps, l.conns[0].failures)
		}
	}
	plan.SetRates("hook.FilePermission", faultinject.Rates{})
	// Three failures with doubling backoff in between: fail, wait 2, fail,
	// wait 4, fail-and-shed = at least 1+2+1+4+1 pumps.
	if pumps < 8 {
		t.Errorf("connection shed after only %d pumps: backoff not engaged", pumps)
	}
	if l.Shed() != 1 {
		t.Errorf("shed = %d, want 1", l.Shed())
	}
	if len(s.users) != 0 {
		t.Errorf("users = %d after shed, want 0 (logged out)", len(s.users))
	}
}

// TestBackoffForCaps pins the deterministic backoff schedule and its cap.
func TestBackoffForCaps(t *testing.T) {
	for i, want := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 256, 256} {
		if got := backoffFor(i); got != want {
			t.Errorf("backoffFor(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestDialRetriesTransientConnectFaults: Dial retries over injected EIO on
// connect a bounded number of times, succeeding when a retry gets through
// and failing — with the spawned task cleaned up — when the budget is
// spent.
func TestDialRetriesTransientConnectFaults(t *testing.T) {
	plan := faultinject.NewPlan(11)
	sys := laminar.NewSystemWithInjector(plan)
	s, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.ListenAndServe("retry")
	if err != nil {
		t.Fatal(err)
	}

	// Fault every connect: the bounded retry must give up with EIO.
	plan.SetRates("socket.connect", faultinject.Rates{Error: 1})
	if _, err := Dial(sys, "retry"); !errors.Is(err, kernel.ErrIO) {
		t.Fatalf("dial with connect always faulting = %v, want EIO", err)
	}

	// At a 50% rate some dials need retries; with 3 attempts each, a run
	// of them overwhelmingly succeeds. Determinism makes this exact: the
	// same seed always yields the same outcome sequence.
	plan.SetRates("socket.connect", faultinject.Rates{Error: 0.5})
	ok := 0
	for i := 0; i < 20; i++ {
		c, err := Dial(sys, "retry")
		if err != nil {
			continue
		}
		ok++
		if got := roundTrip(t, l, c, fmt.Sprintf("LOGIN u%d guest", i)); got != "OK" {
			t.Errorf("login after retried dial = %q", got)
		}
	}
	if ok < 15 {
		t.Errorf("only %d/20 dials succeeded with 3 attempts at 50%% fault rate", ok)
	}
}
