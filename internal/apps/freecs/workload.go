package freecs

import (
	"fmt"

	"laminar/internal/simwork"
)

// RunWorkload reproduces the §7.4 experiment shape: nUsers users each
// issue three commands (say, theme read, and for the privileged few a
// moderation command). Returns the number of executed commands.
func RunWorkload(s *Server, nUsers int) (int, error) {
	commands := 0
	// A fixed cast of moderators: every 100th user is a VIP superuser.
	for i := 0; i < nUsers; i++ {
		name := fmt.Sprintf("user%d", i)
		role := RoleGuest
		var groups []string
		if i%100 == 0 {
			role = RoleSuperuser
			groups = []string{"lobby"}
		} else if i%10 == 0 {
			role = RoleVIP
		}
		u, err := s.Login(name, role, groups...)
		if err != nil {
			return commands, err
		}
		if err := s.Say(u, "lobby", "hello"); err != nil {
			return commands, err
		}
		commands++
		if _, err := s.Theme(u, "lobby"); err != nil {
			return commands, err
		}
		commands++
		switch role {
		case RoleSuperuser:
			if err := s.Ban(u, "lobby", fmt.Sprintf("spammer%d", i)); err != nil {
				return commands, err
			}
		case RoleVIP:
			// VIPs attempt a ban and are denied (no superuser tag).
			if err := s.Ban(u, "lobby", "victim"); err != ErrDenied {
				return commands, fmt.Errorf("freecs: VIP ban = %v, want denied", err)
			}
		default:
			if err := s.Say(u, "lobby", "bye"); err != nil {
				return commands, err
			}
		}
		commands++
		s.Logout(u)
	}
	return commands, nil
}

// RunUnsecuredWorkload mirrors RunWorkload against the original server.
func RunUnsecuredWorkload(s *UnsecuredServer, nUsers int) (int, error) {
	commands := 0
	for i := 0; i < nUsers; i++ {
		name := fmt.Sprintf("user%d", i)
		role := RoleGuest
		if i%100 == 0 {
			role = RoleSuperuser
			s.GrantSuperuser("lobby", name)
		} else if i%10 == 0 {
			role = RoleVIP
		}
		u := &UnsecUser{Name: name, Role: role}
		simwork.Do(connectionWork + threadSpawnWork)
		if err := s.Say(u, "lobby", "hello"); err != nil {
			return commands, err
		}
		commands++
		simwork.Do(commandWork) // theme read command
		commands++
		switch role {
		case RoleSuperuser:
			if err := s.Ban(u, "lobby", fmt.Sprintf("spammer%d", i)); err != nil {
				return commands, err
			}
		case RoleVIP:
			if err := s.Ban(u, "lobby", "victim"); err != ErrDenied {
				return commands, fmt.Errorf("freecs: VIP ban = %v, want denied", err)
			}
		default:
			if err := s.Say(u, "lobby", "bye"); err != nil {
				return commands, err
			}
		}
		commands++
	}
	return commands, nil
}
