package pagelabel

import (
	"errors"
	"testing"

	"laminar/internal/difc"
)

func TestAllocSharesPagesPerLabel(t *testing.T) {
	h := NewHeap()
	l := difc.Labels{S: difc.NewLabel(1)}
	for i := 0; i < 8; i++ {
		if _, err := h.Alloc(64, l); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.Stats(); st.Pages != 1 {
		t.Errorf("pages = %d, want 1 (same-label objects share)", st.Pages)
	}
}

func TestAllocSeparatesLabels(t *testing.T) {
	h := NewHeap()
	// 16 distinct labels, one tiny object each: 16 pages.
	for i := 1; i <= 16; i++ {
		l := difc.Labels{S: difc.NewLabel(difc.Tag(i))}
		if _, err := h.Alloc(16, l); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.Pages != 16 || st.DistinctSets != 16 {
		t.Errorf("pages = %d, distinct = %d, want 16/16", st.Pages, st.DistinctSets)
	}
	if st.BytesWasted != 16*(PageSize-16) {
		t.Errorf("wasted = %d", st.BytesWasted)
	}
}

func TestPageOverflowOpensNewPage(t *testing.T) {
	h := NewHeap()
	l := difc.Labels{}
	if _, err := h.Alloc(PageSize, l); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(1, l); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Pages != 2 {
		t.Errorf("pages = %d, want 2", st.Pages)
	}
}

func TestAllocBadSize(t *testing.T) {
	h := NewHeap()
	if _, err := h.Alloc(0, difc.Labels{}); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := h.Alloc(PageSize+1, difc.Labels{}); err == nil {
		t.Error("oversized alloc accepted")
	}
}

func TestAccessChecks(t *testing.T) {
	h := NewHeap()
	secret := difc.Labels{S: difc.NewLabel(9)}
	o, err := h.Alloc(32, secret)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Labels().Equal(secret) {
		t.Errorf("labels = %v", o.Labels())
	}
	// Unlabeled thread cannot read, may write (up).
	if err := h.Access(difc.Labels{}, o, false); !errors.Is(err, ErrFlow) {
		t.Errorf("unlabeled read = %v", err)
	}
	if err := h.Access(difc.Labels{}, o, true); err != nil {
		t.Errorf("write up = %v", err)
	}
	// Labeled thread reads fine, cannot write an unlabeled page.
	if err := h.Access(secret, o, false); err != nil {
		t.Errorf("labeled read = %v", err)
	}
	pub, _ := h.Alloc(32, difc.Labels{})
	if err := h.Access(secret, pub, true); !errors.Is(err, ErrFlow) {
		t.Errorf("tainted write down = %v", err)
	}
}
