// Package pagelabel models HiStar-style page-granularity information flow
// tracking (Zeldovich et al., OSDI 2006), the second OS-level baseline in
// the Laminar paper's taxonomy. Labels attach to 4 KiB pages; a thread may
// touch a page only if its label is compatible, so placing two
// differently-labeled objects requires either segregating them onto
// separate pages (space overhead) or giving up (precision loss). The
// Laminar paper's motivation — "page mappings are an inefficient mechanism
// to control permissions for most user-defined data structures" (§1) — is
// quantified by this package's allocator statistics.
package pagelabel

import (
	"errors"
	"fmt"

	"laminar/internal/difc"
)

// PageSize is the tracking granularity in bytes.
const PageSize = 4096

// ErrFlow reports a label incompatibility.
var ErrFlow = errors.New("pagelabel: flow violation")

// page is one labeled page with a bump allocator inside it.
type page struct {
	labels difc.Labels
	used   int
}

// Heap is a page-granularity labeled heap: objects are carved out of pages
// whose label must exactly match the object's.
type Heap struct {
	pages []*page
}

// NewHeap creates an empty heap.
func NewHeap() *Heap { return &Heap{} }

// Object is an allocation handle.
type Object struct {
	page *page
	size int
}

// Labels returns the labels of the object's page.
func (o *Object) Labels() difc.Labels { return o.page.labels }

// Alloc places an object of size bytes on a page labeled exactly labels,
// opening a new page when no existing page with that label has room. This
// is the fragmentation source: every distinct label pins at least one
// page, so heaps of small heterogeneously labeled objects (like
// GradeSheet's per-student cells) explode in space.
func (h *Heap) Alloc(size int, labels difc.Labels) (*Object, error) {
	if size <= 0 || size > PageSize {
		return nil, fmt.Errorf("pagelabel: bad object size %d", size)
	}
	for _, p := range h.pages {
		if p.labels.Equal(labels) && p.used+size <= PageSize {
			p.used += size
			return &Object{page: p, size: size}, nil
		}
	}
	p := &page{labels: labels, used: size}
	h.pages = append(h.pages, p)
	return &Object{page: p, size: size}, nil
}

// Access checks a thread's access to an object: page-granularity
// enforcement means the *page's* label governs, and the thread's label
// must be compatible in the direction of the access.
func (h *Heap) Access(thread difc.Labels, o *Object, write bool) error {
	if write {
		if err := difc.CheckFlow("write", thread, o.page.labels); err != nil {
			return fmt.Errorf("%w: %v", ErrFlow, err)
		}
		return nil
	}
	if err := difc.CheckFlow("read", o.page.labels, thread); err != nil {
		return fmt.Errorf("%w: %v", ErrFlow, err)
	}
	return nil
}

// Stats reports the heap's space usage.
type Stats struct {
	Pages        int
	BytesUsed    int
	BytesWasted  int // allocated page space never usable by other labels
	DistinctSets int
}

// Stats computes the allocator's fragmentation statistics.
func (h *Heap) Stats() Stats {
	st := Stats{Pages: len(h.pages)}
	seen := map[string]bool{}
	for _, p := range h.pages {
		st.BytesUsed += p.used
		st.BytesWasted += PageSize - p.used
		seen[p.labels.String()] = true
	}
	st.DistinctSets = len(seen)
	return st
}
