package jvm

import (
	"strings"
	"testing"

	"laminar/internal/difc"
)

func expectVerifyError(t *testing.T, p *Program, want string) {
	t.Helper()
	err := p.Verify()
	if err == nil {
		t.Fatalf("verify passed, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("verify error = %v, want containing %q", err, want)
	}
}

func TestVerifyStackUnderflow(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, []Instr{{Op: OpAdd}, {Op: OpReturn}}))
	expectVerifyError(t, p, "underflow")
}

func TestVerifyBadBranchTarget(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, []Instr{{Op: OpJmp, A: 99}}))
	expectVerifyError(t, p, "out of range")
}

func TestVerifyInconsistentJoin(t *testing.T) {
	// Path 1 reaches pc 4 with depth 1, path 2 with depth 0.
	code := []Instr{
		{Op: OpConst, A: 1}, // 0: depth 1
		{Op: OpJmpIf, A: 4}, // 1: pops -> depth 0; branch to 4 at 0
		{Op: OpConst, A: 2}, // 2: depth 1
		{Op: OpNop},         // 3: depth 1 -> falls to 4
		{Op: OpReturn},      // 4: joined at different depths
	}
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, code))
	expectVerifyError(t, p, "inconsistent stack depth")
}

func TestVerifyFallOffEnd(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, []Instr{{Op: OpNop}}))
	expectVerifyError(t, p, "falls off end")
}

func TestVerifyLocalBounds(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 1, nil, []Instr{{Op: OpLoad, A: 5}, {Op: OpPop}, {Op: OpReturn}}))
	expectVerifyError(t, p, "local slot 5 out of range")
}

func TestVerifyStaticBounds(t *testing.T) {
	p := NewProgram(1)
	p.Add(method("m", 0, 0, nil, []Instr{{Op: OpGetStatic, A: 3}, {Op: OpPop}, {Op: OpReturn}}))
	expectVerifyError(t, p, "static slot 3 out of range")
}

func TestVerifyUndefinedInvoke(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, []Instr{{Op: OpInvoke, A: 7}, {Op: OpReturn}}))
	expectVerifyError(t, p, "undefined method")
}

func TestVerifyEmptyCode(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, nil))
	expectVerifyError(t, p, "empty code")
}

func TestVerifyBarrierInSource(t *testing.T) {
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, []Instr{{Op: OpBarrierRead}, {Op: OpReturn}}))
	expectVerifyError(t, p, "barrier opcode")
}

func TestVerifyMixedReturns(t *testing.T) {
	code := []Instr{
		{Op: OpConst, A: 1},
		{Op: OpJmpIf, A: 3},
		{Op: OpReturn}, // void return in value-returning method
		{Op: OpConst, A: 1},
		{Op: OpReturnVal},
	}
	p := NewProgram(0)
	p.Add(method("m", 0, 0, nil, code))
	expectVerifyError(t, p, "void return in value-returning method")
}

func TestVerifySecureReturnsValue(t *testing.T) {
	p := NewProgram(0)
	sec := method("s", 1, 1, &SecureInfo{}, []Instr{{Op: OpConst, A: 1}, {Op: OpReturnVal}})
	p.Add(sec)
	expectVerifyError(t, p, "security region method returns a value")
}

func TestVerifySecureWritesParam(t *testing.T) {
	p := NewProgram(0)
	sec := method("s", 1, 1, &SecureInfo{},
		[]Instr{{Op: OpConst, A: 1}, {Op: OpStore, A: 0}, {Op: OpReturn}})
	p.Add(sec)
	expectVerifyError(t, p, "writes parameter slot")
}

func TestVerifySecureReadsParamAsValue(t *testing.T) {
	// load p; load p; add -- reads the parameter's value (e.g. comparing
	// the reference): forbidden.
	p := NewProgram(0)
	sec := method("s", 1, 1, &SecureInfo{},
		[]Instr{{Op: OpLoad, A: 0}, {Op: OpLoad, A: 0}, {Op: OpAdd}, {Op: OpPop}, {Op: OpReturn}})
	p.Add(sec)
	expectVerifyError(t, p, "reads parameter slot")
}

func TestVerifySecureDerefParamAllowed(t *testing.T) {
	// load p; getfield 0; pop — dereference is explicitly allowed.
	p := NewProgram(0)
	sec := method("s", 1, 2, &SecureInfo{},
		[]Instr{{Op: OpLoad, A: 0}, {Op: OpGetField, A: 0}, {Op: OpPop}, {Op: OpReturn}})
	p.Add(sec)
	if err := p.Verify(); err != nil {
		t.Errorf("deref of param rejected: %v", err)
	}
}

func TestVerifySecureParamThroughIndexDeref(t *testing.T) {
	// load p; const 3; aload — param used as array base.
	p := NewProgram(0)
	sec := method("s", 1, 2, &SecureInfo{}, []Instr{
		{Op: OpLoad, A: 0}, {Op: OpConst, A: 3}, {Op: OpALoad}, {Op: OpPop}, {Op: OpReturn}})
	p.Add(sec)
	if err := p.Verify(); err != nil {
		t.Errorf("indexed deref of param rejected: %v", err)
	}
}

func TestVerifySecureParamToInvokeAllowed(t *testing.T) {
	p := NewProgram(0)
	callee := method("callee", 1, 1, nil, []Instr{{Op: OpReturn}})
	p.Add(callee)
	sec := method("s", 1, 1, &SecureInfo{}, []Instr{
		{Op: OpLoad, A: 0}, {Op: OpInvoke, A: 0}, {Op: OpReturn}})
	p.Add(sec)
	if err := p.Verify(); err != nil {
		t.Errorf("param passed to call rejected: %v", err)
	}
}

func TestVerifyCatchRules(t *testing.T) {
	p := NewProgram(0)
	sec := method("s", 0, 1, &SecureInfo{
		Catch: []Instr{{Op: OpConst, A: 1}, {Op: OpReturnVal}},
	}, []Instr{{Op: OpReturn}})
	p.Add(sec)
	expectVerifyError(t, p, "returnval in void method")
}

func TestVerifyMaxStackComputed(t *testing.T) {
	p := NewProgram(0)
	m := method("m", 0, 0, nil, NewAsm().
		Const(1).Const(2).Const(3).Op(OpAdd).Op(OpAdd).Op(OpReturnVal).MustBuild())
	p.Add(m)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.maxStack != 3 {
		t.Errorf("maxStack = %d, want 3", m.maxStack)
	}
}

func TestVerifyGoodProgramWithRegions(t *testing.T) {
	tag := difc.Tag(1)
	p, _, _ := secureProgram(tag)
	if err := p.Verify(); err != nil {
		t.Errorf("secureProgram fails verification: %v", err)
	}
}

// The verifier memoizes by fingerprint: re-verifying an unchanged program
// is free, but any mutation of the method table after a successful Verify
// invalidates the memoized result instead of silently reusing it. The
// compiler trusts verified invariants (stack depths, branch targets), so
// a stale "verified" bit would let unchecked code reach barrier insertion.
func TestVerifyMemoizationDetectsMutation(t *testing.T) {
	build := func() (*Program, *Method) {
		p := NewProgram(1)
		m := method("m", 0, 1, nil, NewAsm().
			Const(7).Store(0).Load(0).Op(OpReturnVal).MustBuild())
		p.Add(m)
		return p, m
	}

	p, m := build()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("re-verify of unchanged program: %v", err)
	}

	// In-place instruction edit after verification.
	m.Code[0].A = 9
	err := p.Verify()
	if err == nil || !strings.Contains(err.Error(), "mutated after verification") {
		t.Fatalf("verify after code edit = %v, want stale-state error", err)
	}

	// Add goes through the front door: it resets the memoized bit, so the
	// next Verify is a full re-verification, not a stale-state error.
	p2, _ := build()
	if err := p2.Verify(); err != nil {
		t.Fatal(err)
	}
	p2.Add(method("extra", 0, 0, nil, []Instr{{Op: OpReturn}}))
	if err := p2.Verify(); err != nil {
		t.Fatalf("verify after Add = %v, want full re-verification to pass", err)
	}

	// NewMachine surfaces the same error: a machine must never be built
	// over a mutated-but-memoized program.
	p3, m3 := build()
	if err := p3.Verify(); err != nil {
		t.Fatal(err)
	}
	m3.Code[0].Op = OpNop
	if _, err := NewMachine(p3, CompileOptions{Mode: BarrierStatic}); err == nil {
		t.Fatal("NewMachine accepted a program mutated after verification")
	}
}
