package jvm

// This file is the compiler's interface to the whole-program analysis in
// internal/jvm/analysis. The analysis package computes an InterprocResult
// from a verified program's *source* bytecode and attaches it with
// SetInterproc; compilation with CompileOptions.Interproc then consults it
// to (a) seed the intraprocedural elimination pass with facts proven at
// method entry, (b) transfer facts across and out of calls using callee
// summaries, and (c) skip barrier insertion entirely for methods proven
// barrier-free.
//
// The package split keeps the dependency one-way: analysis imports jvm,
// never the reverse. The exported helpers below (StackEffect, AccessDepth,
// …) exist so the analysis package shares the compiler's opcode model
// instead of re-deriving it.

// Fact bits tracked per object by the barrier dataflow analyses, both the
// intraprocedural pass in opt.go and the interprocedural summaries. A bit
// is set when the object has passed the corresponding check (or was
// freshly allocated, which implies both: a fresh object carries the
// allocating context's own labels).
const (
	FactRead  uint8 = 1 << iota // object has passed a read check
	FactWrite                   // object has passed a write check
)

// FactAll is the top of the fact lattice.
const FactAll = FactRead | FactWrite

// InterprocResult carries whole-program dataflow facts, indexed by method
// table slot. All slices are parallel to Program.Methods. Security-region
// methods are opaque boundaries: they publish no Ensures/Return facts and
// receive no EntryChecked facts, because checks inside a region run
// against the region's labels, not the caller's (§4.3.2/§4.4).
type InterprocResult struct {
	// Ensures[mi][k] holds the fact bits method mi establishes for the
	// object passed as parameter k on every path to every normal return.
	// Callers gain these facts for the argument's source slot after an
	// invoke (label immutability §4.5 plus region-label stability §4.4
	// make a passed check permanent for the rest of the activation).
	Ensures [][]uint8
	// Return[mi] holds the fact bits carried by mi's return value on
	// every path (typically FactAll for factory methods returning fresh
	// allocations).
	Return []uint8
	// EntryChecked[mi][k] holds the fact bits proven for argument k at
	// EVERY OpInvoke call site of mi in the program. The invoke-reached
	// variant of mi starts its dataflow with these facts and may drop
	// parameter re-checks; host-entry calls (Machine.Call) compile a
	// separate conservative variant because host arguments never passed
	// any barrier.
	EntryChecked [][]uint8
	// EnsuresStatic[mi] holds FactRead/FactWrite bits indicating that mi
	// performs a checked static read/write on every path to every normal
	// return, so a caller's later static barrier of the same kind is
	// redundant within the same region.
	EnsuresStatic []uint8
	// BarrierFree[mi] marks methods proven to need no read/write/static
	// check barriers in any context even with conservative entry facts.
	// The compiler skips the elimination pass and inserts only
	// allocation-labeling barriers for them.
	BarrierFree []bool
}

// SetInterproc attaches whole-program analysis results. The result must
// have been computed for exactly this program's current method table; the
// caller (internal/jvm/analysis.Attach) guarantees the slices are sized to
// len(p.Methods).
func (p *Program) SetInterproc(r *InterprocResult) { p.interproc = r }

// Interproc returns the attached analysis results, or nil.
func (p *Program) Interproc() *InterprocResult { return p.interproc }

// BarrierDecision is the elimination pass's verdict for one barrier site
// in a method's source code, for laminar-vet's explain subcommand.
type BarrierDecision struct {
	PC     int
	Op     Op
	Kind   string // access-read, access-write, static-read, static-write
	Kept   bool
	Reason string
}

// siteKind names a barrier site.
func siteKind(op Op) string {
	switch {
	case op == OpGetStatic:
		return "static-read"
	case op == OpPutStatic:
		return "static-write"
	case isWrite(op):
		return "access-write"
	default:
		return "access-read"
	}
}

// BarrierDecisions runs the elimination pass over m's source code (no
// peephole, so PCs match the source listing) with the given entry facts
// and whatever interprocedural summaries are attached, and reports the
// verdict for every access/static barrier site. This is the same dataflow
// the compiler runs, so explain output cannot drift from compilation.
func (p *Program) BarrierDecisions(m *Method, entry []uint8) []BarrierDecision {
	need := allBarriers(m.Code)
	reasons := make(map[int]string)
	oc := optContext{p: p, ip: p.interproc, note: func(pc int, reason string) { reasons[pc] = reason }}
	need = eliminateRedundant(oc, m.Code, need, entry)
	var out []BarrierDecision
	for pc, in := range m.Code {
		isAccess := accessDepth(in.Op) >= 0
		isStatic := in.Op == OpGetStatic || in.Op == OpPutStatic
		if !isAccess && !isStatic {
			continue
		}
		kept := (isAccess && need.access[pc]) || (isStatic && need.static[pc])
		reason := reasons[pc]
		if reason == "" {
			if kept {
				reason = "operand not provably checked on every incoming path"
			} else {
				reason = "redundant"
			}
		}
		out = append(out, BarrierDecision{PC: pc, Op: in.Op, Kind: siteKind(in.Op), Kept: kept, Reason: reason})
	}
	return out
}

// RemainingBarriers counts the access/static barrier sites the
// elimination pass keeps for m's source code under the given entry facts
// and the attached summaries. The analysis package uses it to prove
// methods barrier-free with exactly the compiler's own elimination logic
// (conservative relative to compilation, which peepholes first and can
// only delete further sites).
func (p *Program) RemainingBarriers(m *Method, entry []uint8) int {
	oc := optContext{p: p, ip: p.interproc}
	need := eliminateRedundant(oc, m.Code, allBarriers(m.Code), entry)
	n := countBarriers(need)
	if m.Secure != nil && m.Secure.Catch != nil {
		catchNeed := eliminateRedundant(oc, m.Secure.Catch, allBarriers(m.Secure.Catch), nil)
		n += countBarriers(catchNeed)
	}
	return n
}

// --- exported opcode model, shared with internal/jvm/analysis ---

// StackEffect returns (pops, pushes) for the opcode. OpInvoke's effect
// depends on the callee and must be handled by the caller; barrier opcodes
// are reported with their runtime effect (only the select barriers pop the
// OpInRegion flag).
func (o Op) StackEffect() (pops, pushes int) {
	switch o {
	case OpBarrierSelR, OpBarrierSelW:
		return 1, 0
	case OpInRegion:
		return 0, 1
	}
	return stackEffect(o)
}

// IsJump reports whether the opcode's A operand is a branch target.
func (o Op) IsJump() bool { return o.isJump() }

// IsBarrier reports whether the opcode is compiler-inserted.
func (o Op) IsBarrier() bool { return o.isBarrier() }

// AccessDepth returns the stack depth of a heap-access opcode's object
// operand at barrier time, or -1 for non-access opcodes.
func (o Op) AccessDepth() int { return accessDepth(o) }

// IsRead reports whether the opcode is a heap read access.
func (o Op) IsRead() bool { return isRead(o) }

// IsWrite reports whether the opcode is a heap write access.
func (o Op) IsWrite() bool { return isWrite(o) }

// ReturnsValue reports whether the method returns a value.
func (m *Method) ReturnsValue() bool { return m.returnsValue() }
