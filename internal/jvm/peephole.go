package jvm

import "math"

// Peephole optimization, run at the optimizing tier before barrier
// insertion. The pass is deliberately conservative:
//
//   - folded instructions become OpNop instead of being removed, so no
//     branch target ever needs renumbering inside this pass (the barrier
//     inserter later renumbers everything uniformly anyway);
//   - a pattern only folds when its interior instructions are not branch
//     targets;
//   - div/mod by a constant zero never folds — the runtime trap is the
//     semantics;
//   - folded constants must fit the instruction's int32 operand.
//
// Patterns: constant arithmetic and comparisons, constant-condition
// branches, push-pop elimination, and jump threading through chains of
// unconditional jumps.

// peephole returns an optimized copy of code and the number of
// instructions folded away (turned into nops or retargeted).
func peephole(code []Instr) ([]Instr, int) {
	out := make([]Instr, len(code))
	copy(out, code)
	folded := 0
	for pass := 0; pass < 4; pass++ {
		changed := 0
		jt := jumpTargets(out)
		for pc := 0; pc+1 < len(out); pc++ {
			a := out[pc]
			b := out[pc+1]
			// [const x, pop] -> nops
			if a.Op == OpConst && b.Op == OpPop && !jt[pc+1] {
				out[pc] = Instr{Op: OpNop}
				out[pc+1] = Instr{Op: OpNop}
				changed++
				continue
			}
			// [const x, neg] -> [const -x]
			if a.Op == OpConst && b.Op == OpNeg && !jt[pc+1] && fitsI32(-int64(a.A)) {
				out[pc] = Instr{Op: OpConst, A: int32(-int64(a.A))}
				out[pc+1] = Instr{Op: OpNop}
				changed++
				continue
			}
			// [const c, jmpif/jmpifnot L] -> jmp or nothing
			if a.Op == OpConst && (b.Op == OpJmpIf || b.Op == OpJmpIfNot) && !jt[pc+1] {
				taken := a.A != 0
				if b.Op == OpJmpIfNot {
					taken = !taken
				}
				out[pc] = Instr{Op: OpNop}
				if taken {
					out[pc+1] = Instr{Op: OpJmp, A: b.A}
				} else {
					out[pc+1] = Instr{Op: OpNop}
				}
				changed++
				continue
			}
			// [const a, const b, binop] -> [const result]
			if pc+2 < len(out) && a.Op == OpConst && b.Op == OpConst && !jt[pc+1] && !jt[pc+2] {
				if v, ok := foldBinop(out[pc+2].Op, int64(a.A), int64(b.A)); ok && fitsI32(v) {
					out[pc] = Instr{Op: OpConst, A: int32(v)}
					out[pc+1] = Instr{Op: OpNop}
					out[pc+2] = Instr{Op: OpNop}
					changed += 2
					continue
				}
			}
		}
		// Jump threading: retarget jumps that land on unconditional jumps
		// (or on nops leading to them).
		for pc := range out {
			if !out[pc].Op.isJump() {
				continue
			}
			t := int(out[pc].A)
			for hops := 0; hops < 8; hops++ {
				// Skip nop runs.
				for t < len(out) && out[t].Op == OpNop {
					t++
				}
				if t < len(out) && out[t].Op == OpJmp && int(out[t].A) != t {
					t = int(out[t].A)
					continue
				}
				break
			}
			if t != int(out[pc].A) && t < len(out) {
				out[pc].A = int32(t)
				changed++
			}
		}
		folded += changed
		if changed == 0 {
			break
		}
		// Squeeze the nops out (with branch renumbering) so the next pass
		// sees adjacent instructions and chains of folds compose.
		out = compactNops(out)
	}
	return out, folded
}

// compactNops removes OpNop instructions, remapping branch targets. A
// branch into a nop run lands on the next real instruction.
func compactNops(code []Instr) []Instr {
	newPos := make([]int32, len(code)+1)
	pos := int32(0)
	for pc, in := range code {
		newPos[pc] = pos
		if in.Op != OpNop {
			pos++
		}
	}
	newPos[len(code)] = pos
	out := make([]Instr, 0, pos)
	for _, in := range code {
		if in.Op == OpNop {
			continue
		}
		if in.Op.isJump() {
			in.A = newPos[in.A]
		}
		out = append(out, in)
	}
	return out
}

// foldBinop evaluates a binary opcode on constants; ok is false for
// non-foldable ops and for div/mod by zero (the trap must stay).
func foldBinop(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpCmpEQ:
		return b2i(a == b), true
	case OpCmpNE:
		return b2i(a != b), true
	case OpCmpLT:
		return b2i(a < b), true
	case OpCmpLE:
		return b2i(a <= b), true
	case OpCmpGT:
		return b2i(a > b), true
	case OpCmpGE:
		return b2i(a >= b), true
	default:
		return 0, false
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fitsI32(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }
