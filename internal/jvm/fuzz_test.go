package jvm_test

// Fuzz targets for the assembler front end and the compile+run pipeline.
//
// FuzzParse checks the parser against the Source renderer: any input the
// parser accepts must render back to text that parses again to an
// identical program (fixpoint after one round trip).
//
// FuzzCompileRun checks the runtime's contract: any program that passes
// Verify may be compiled under every barrier mode and executed without
// panicking — denials, type confusion, and budget exhaustion must all
// surface as machine errors. The compiler's own validateCompiled pass
// panics on stack/branch corruption, so this fuzzer also hunts
// barrier-insertion bugs.

import (
	"testing"

	"laminar/internal/jvm"
	"laminar/internal/jvm/corpus"
)

func seedCorpus(f *testing.F) {
	for _, set := range []map[string]string{corpus.Programs(), corpus.Negative()} {
		for _, name := range corpus.Names(set) {
			f.Add(set[name])
		}
	}
	f.Add("method main args=0 locals=1\n    const 1\n    returnval\nend\n")
	f.Add("statics 1\nsecure method r args=1 locals=2 secrecy=1 minus=1\n    load 0\n    getfield 0\n    pop\n    return\ncatch:\n    return\nend\n")
}

func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := jvm.Parse(src)
		if err != nil {
			return
		}
		s1 := p.Source()
		p2, err := jvm.Parse(s1)
		if err != nil {
			t.Fatalf("rendered source does not parse: %v\ninput:\n%s\nrendered:\n%s", err, src, s1)
		}
		if s2 := p2.Source(); s2 != s1 {
			t.Fatalf("round trip is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	})
}

func FuzzCompileRun(f *testing.F) {
	seedCorpus(f)
	modes := []jvm.CompileOptions{
		{Mode: jvm.BarrierStatic},
		{Mode: jvm.BarrierStatic, Optimize: true, Inline: true},
		{Mode: jvm.BarrierDynamic, Optimize: true},
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := jvm.Parse(src)
		if err != nil {
			return
		}
		if err := p.Verify(); err != nil {
			return
		}
		for _, opts := range modes {
			// Fresh program per configuration: compiled variants are
			// cached on the method table.
			q, err := jvm.Parse(src)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			mc, err := jvm.NewMachine(q, opts)
			if err != nil {
				t.Fatalf("machine for verified program: %v", err)
			}
			// CompileAll forces every variant through validateCompiled.
			if _, err := q.CompileAll(opts); err != nil {
				t.Fatalf("compile verified program: %v", err)
			}
			mc.MaxInstructions = 50_000
			for _, m := range q.Methods {
				if m.NArgs > 4 {
					continue
				}
				args := make([]jvm.Value, m.NArgs)
				for i := range args {
					args[i] = jvm.IntV(int64(i))
				}
				// Errors (denials, budget, type confusion) are expected;
				// panics are the bug.
				mc.Call(mc.NewThread(), m.Name, args...)
			}
		}
	})
}
