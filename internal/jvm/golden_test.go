package jvm

import (
	"strings"
	"testing"
)

// Golden tests: the exact compiled form of a canonical method under each
// barrier configuration. These lock down barrier placement — a change
// here is a change to the enforcement surface and should be deliberate.

// canonicalSrc reads a field, writes a field, and allocates.
const canonicalSrc = `
method canon args=1 locals=2
    load 0
    getfield 0
    pop
    load 0
    const 7
    putfield 1
    new 2
    store 1
    return
end
`

func compileCanon(t *testing.T, opts CompileOptions, inRegion bool) string {
	t.Helper()
	p, err := Parse(canonicalSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	m, err := p.Lookup("canon")
	if err != nil {
		t.Fatal(err)
	}
	st := &compileStats{}
	cm := p.compile(m, opts, inRegion, false, st)
	return Disassemble(cm.code)
}

func TestGoldenStaticInside(t *testing.T) {
	got := compileCanon(t, CompileOptions{Mode: BarrierStatic}, true)
	want := strings.TrimLeft(`
     0  load         0
     1  barrier.r    0
     2  getfield     0
     3  pop
     4  load         0
     5  const        7
     6  barrier.w    1
     7  putfield     1
     8  new          2
     9  barrier.alloc
    10  store        1
    11  return
`, "\n")
	if got != want {
		t.Errorf("static-inside compiled form changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenStaticOutside(t *testing.T) {
	got := compileCanon(t, CompileOptions{Mode: BarrierStatic}, false)
	want := strings.TrimLeft(`
     0  load         0
     1  barrier.or   0
     2  getfield     0
     3  pop
     4  load         0
     5  const        7
     6  barrier.ow   1
     7  putfield     1
     8  new          2
     9  store        1
    10  return
`, "\n")
	if got != want {
		t.Errorf("static-outside compiled form changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenDynamic(t *testing.T) {
	got := compileCanon(t, CompileOptions{Mode: BarrierDynamic}, false)
	want := strings.TrimLeft(`
     0  load         0
     1  inregion
     2  barrier.selr 0
     3  getfield     0
     4  pop
     5  load         0
     6  const        7
     7  inregion
     8  barrier.selw 1
     9  putfield     1
    10  new          2
    11  inregion
    12  jmpifnot     -> 14
    13  barrier.alloc
L:  14  store        1
    15  return
`, "\n")
	if got != want {
		t.Errorf("dynamic compiled form changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenNoneIsSource(t *testing.T) {
	got := compileCanon(t, CompileOptions{Mode: BarrierNone}, false)
	if strings.Contains(got, "barrier") || strings.Contains(got, "inregion") {
		t.Errorf("barrier-free build contains instrumentation:\n%s", got)
	}
}

func TestGoldenOptimizedElidesSecondRead(t *testing.T) {
	src := `
method canon2 args=1 locals=1
    load 0
    getfield 0
    pop
    load 0
    getfield 1
    pop
    return
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	m, _ := p.Lookup("canon2")
	st := &compileStats{}
	cm := p.compile(m, CompileOptions{Mode: BarrierStatic, Optimize: true}, true, false, st)
	got := Disassemble(cm.code)
	if strings.Count(got, "barrier.r") != 1 {
		t.Errorf("want exactly one read barrier after optimization:\n%s", got)
	}
}
