package jvm

import (
	"testing"

	"laminar/internal/difc"
)

// compileFor compiles a single method body under static-inside context and
// returns the compile stats.
func compileFor(t *testing.T, code []Instr, optimize bool) (int, int) {
	t.Helper()
	p := NewProgram(4)
	m := &Method{Name: "m", NArgs: 1, NLocal: 4, Code: code}
	p.Add(m)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	st := &compileStats{}
	p.compile(m, CompileOptions{Mode: BarrierStatic, Optimize: optimize}, true, false, st)
	return st.barriersEmitted, st.barriersElided
}

func TestElimStraightLineRepeatedRead(t *testing.T) {
	// load 0; getfield; pop; load 0; getfield; pop — second read barrier
	// is redundant.
	code := NewAsm().
		Load(0).GetField(0).Op(OpPop).
		Load(0).GetField(0).Op(OpPop).
		Op(OpReturn).MustBuild()
	emitted, elided := compileFor(t, code, true)
	if emitted != 1 || elided != 1 {
		t.Errorf("emitted=%d elided=%d, want 1/1", emitted, elided)
	}
	// Without optimization both stay.
	emitted, elided = compileFor(t, code, false)
	if emitted != 2 || elided != 0 {
		t.Errorf("unopt emitted=%d elided=%d, want 2/0", emitted, elided)
	}
}

func TestElimReadDoesNotCoverWrite(t *testing.T) {
	// A prior read does not make a write barrier redundant (different
	// rule direction).
	code := NewAsm().
		Load(0).GetField(0).Op(OpPop).
		Load(0).Const(1).PutField(0).
		Op(OpReturn).MustBuild()
	emitted, elided := compileFor(t, code, true)
	if emitted != 2 || elided != 0 {
		t.Errorf("emitted=%d elided=%d, want 2/0", emitted, elided)
	}
}

func TestElimWriteThenWrite(t *testing.T) {
	code := NewAsm().
		Load(0).Const(1).PutField(0).
		Load(0).Const(2).PutField(1).
		Op(OpReturn).MustBuild()
	emitted, elided := compileFor(t, code, true)
	if emitted != 1 || elided != 1 {
		t.Errorf("emitted=%d elided=%d, want 1/1", emitted, elided)
	}
}

func TestElimAllocatedObjectNeedsNoBarriers(t *testing.T) {
	// new; store 1; load 1; putfield; load 1; getfield — allocation
	// covers both directions.
	code := NewAsm().
		New(2).Store(1).
		Load(1).Const(5).PutField(0).
		Load(1).GetField(0).Op(OpPop).
		Op(OpReturn).MustBuild()
	emitted, elided := compileFor(t, code, true)
	if elided != 2 {
		t.Errorf("emitted=%d elided=%d, want 2 elided", emitted, elided)
	}
}

func TestElimStoreInvalidates(t *testing.T) {
	// After re-storing an unknown value into the local, the barrier must
	// come back.
	code := NewAsm().
		Load(0).GetField(0).Op(OpPop).
		Load(0).GetField(1).Store(1).  // unknown object into slot 1
		Load(1).GetField(0).Op(OpPop). // needs barrier
		Load(1).GetField(0).Op(OpPop). // redundant
		Op(OpReturn).MustBuild()
	emitted, elided := compileFor(t, code, true)
	// Four access sites: the first read of slot 0 and the first read of
	// re-stored slot 1 keep barriers; the other two are elided.
	if emitted != 2 || elided != 2 {
		t.Errorf("emitted=%d elided=%d, want 2/2", emitted, elided)
	}
}

func TestElimJoinPathsMustAgree(t *testing.T) {
	// if (c) { read obj } ; read obj — the second read is NOT redundant:
	// only one incoming path checked it.
	code := NewAsm().
		Load(1).JmpIfNot("skip").
		Load(0).GetField(0).Op(OpPop).
		Label("skip").
		Load(0).GetField(0).Op(OpPop).
		Op(OpReturn).MustBuild()
	p := NewProgram(0)
	m := &Method{Name: "m", NArgs: 2, NLocal: 2, Code: code}
	p.Add(m)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	st := &compileStats{}
	p.compile(m, CompileOptions{Mode: BarrierStatic, Optimize: true}, true, false, st)
	if st.barriersElided != 0 {
		t.Errorf("elided=%d across unbalanced join, want 0", st.barriersElided)
	}
}

func TestElimBothPathsChecked(t *testing.T) {
	// if (c) { read obj } else { read obj }; read obj — now redundant.
	code := NewAsm().
		Load(1).JmpIfNot("else").
		Load(0).GetField(0).Op(OpPop).
		Jmp("join").
		Label("else").
		Load(0).GetField(1).Op(OpPop).
		Label("join").
		Load(0).GetField(0).Op(OpPop).
		Op(OpReturn).MustBuild()
	p := NewProgram(0)
	m := &Method{Name: "m", NArgs: 2, NLocal: 2, Code: code}
	p.Add(m)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	st := &compileStats{}
	p.compile(m, CompileOptions{Mode: BarrierStatic, Optimize: true}, true, false, st)
	if st.barriersElided != 1 {
		t.Errorf("elided=%d, want 1 (the post-join read)", st.barriersElided)
	}
}

func TestElimLoopHeaderConservative(t *testing.T) {
	// In a loop, the first iteration hasn't checked yet; the loop-body
	// barrier is redundant only if checked before the loop.
	code := NewAsm().
		Const(0).Store(1).
		Label("loop").
		Load(1).Const(10).Op(OpCmpGE).JmpIf("done").
		Load(0).GetField(0).Op(OpPop). // checked on every path? entry path hasn't checked
		Load(1).Const(1).Op(OpAdd).Store(1).
		Jmp("loop").
		Label("done").Op(OpReturn).MustBuild()
	p := NewProgram(0)
	m := &Method{Name: "m", NArgs: 1, NLocal: 2, Code: code}
	p.Add(m)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	st := &compileStats{}
	p.compile(m, CompileOptions{Mode: BarrierStatic, Optimize: true}, true, false, st)
	if st.barriersElided != 0 {
		t.Errorf("elided=%d in unchecked loop, want 0", st.barriersElided)
	}

	// Hoisted check before the loop makes the body barrier redundant.
	code2 := NewAsm().
		Load(0).GetField(0).Op(OpPop). // pre-loop check
		Const(0).Store(1).
		Label("loop").
		Load(1).Const(10).Op(OpCmpGE).JmpIf("done").
		Load(0).GetField(0).Op(OpPop).
		Load(1).Const(1).Op(OpAdd).Store(1).
		Jmp("loop").
		Label("done").Op(OpReturn).MustBuild()
	p2 := NewProgram(0)
	m2 := &Method{Name: "m", NArgs: 1, NLocal: 2, Code: code2}
	p2.Add(m2)
	if err := p2.Verify(); err != nil {
		t.Fatal(err)
	}
	st2 := &compileStats{}
	p2.compile(m2, CompileOptions{Mode: BarrierStatic, Optimize: true}, true, false, st2)
	if st2.barriersElided != 1 {
		t.Errorf("elided=%d with hoisted check, want 1", st2.barriersElided)
	}
}

func TestElimStaticChecks(t *testing.T) {
	code := NewAsm().
		Emit(OpGetStatic, 0).Op(OpPop).
		Emit(OpGetStatic, 1).Op(OpPop). // redundant static-read check
		Emit(OpPutStatic, 0).Op(OpReturn).MustBuild()
	// PutStatic pops, so push something first... adjust: need value.
	code = NewAsm().
		Emit(OpGetStatic, 0).Op(OpPop).
		Emit(OpGetStatic, 1).Op(OpPop).
		Const(1).Emit(OpPutStatic, 0).
		Const(2).Emit(OpPutStatic, 1).
		Op(OpReturn).MustBuild()
	p := NewProgram(4)
	m := &Method{Name: "m", NArgs: 0, NLocal: 1, Code: code}
	p.Add(m)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	st := &compileStats{}
	p.compile(m, CompileOptions{Mode: BarrierStatic, Optimize: true}, true, false, st)
	// One read check + one write check stay; one of each elided.
	if st.barriersEmitted != 2 || st.barriersElided != 2 {
		t.Errorf("emitted=%d elided=%d, want 2/2", st.barriersEmitted, st.barriersElided)
	}
}

func TestElimPreservesSemantics(t *testing.T) {
	// The secured program must behave identically with and without the
	// optimization, including the violation being raised.
	tag := difc.Tag(1)
	for _, optimize := range []bool{false, true} {
		p, fill, _ := secureProgram(tag)
		fill.Secure.Catch = NewAsm().Op(OpReturn).MustBuild()
		mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		_, err = mc.Call(mc.NewThread(), "main")
		if err == nil {
			t.Errorf("optimize=%v: expected trap after suppressed violation", optimize)
		}
		if mc.Stats().Violations != 1 {
			t.Errorf("optimize=%v: violations = %d", optimize, mc.Stats().Violations)
		}
	}
}

func TestElimReducesRuntimeChecks(t *testing.T) {
	// A hot loop over an object checked once before the loop: optimized
	// runs should perform far fewer barrier checks.
	build := func() *Program {
		p := NewProgram(0)
		m := &Method{Name: "hot", NArgs: 0, NLocal: 2}
		p.Add(m)
		m.Code = NewAsm().
			New(1).Store(0).
			Load(0).Const(0).PutField(0).
			Const(0).Store(1).
			Label("loop").
			Load(1).Const(1000).Op(OpCmpGE).JmpIf("done").
			Load(0).Load(0).GetField(0).Const(1).Op(OpAdd).PutField(0).
			Load(1).Const(1).Op(OpAdd).Store(1).
			Jmp("loop").
			Label("done").
			Load(0).GetField(0).Op(OpReturnVal).MustBuild()
		return p
	}
	counts := map[bool]uint64{}
	for _, optimize := range []bool{false, true} {
		p := build()
		mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		v, err := mc.Call(mc.NewThread(), "hot")
		if err != nil || v.Int() != 1000 {
			t.Fatalf("optimize=%v: hot = %v, %v", optimize, v, err)
		}
		counts[optimize] = mc.Stats().BarrierChecks
	}
	if counts[true] >= counts[false] {
		t.Errorf("optimized checks %d >= unoptimized %d", counts[true], counts[false])
	}
}
