package analysis

import "laminar/internal/jvm"

// The checked-facts problem: a forward must-analysis tracking, per local
// slot, which barrier checks the object currently held by the slot has
// already passed (or would trivially pass, for fresh allocations), plus an
// aliasing origin so checks on a copied reference credit the original
// argument object. It is the interprocedural generalization of the
// intraprocedural pass in jvm/opt.go and uses the same fact bits
// (jvm.FactRead / jvm.FactWrite).
//
// Soundness leans on the same two Laminar invariants as the compiler's
// pass: object labels are immutable (§4.5) and a region's labels are
// stable while it executes (§4.4), so within one activation a check that
// succeeded once succeeds forever. Facts mean "a check of this kind on
// this object in the current context is guaranteed to succeed" — they are
// established both by barriers that actually execute and by freshness,
// which is why compile-time elimination of a dominated barrier does not
// invalidate them.

// origin sentinels; values >= 0 name the parameter whose object the slot
// holds.
const (
	originTop     = -2 // optimistic: not yet constrained by any path
	originUnknown = -1
	originFresh   = -3 // object allocated in this activation
)

// factState is the per-program-point lattice element.
type factState struct {
	slots []uint8 // fact bits for the object each local slot holds
	orig  []int16 // what each slot holds: param index, fresh, or unknown
	args  []uint8 // facts established for each ORIGINAL argument object
	stat  uint8   // FactRead/FactWrite: a checked static access ran
}

func newFactState(nLocal, nArgs int) *factState {
	return &factState{
		slots: make([]uint8, nLocal),
		orig:  make([]int16, nLocal),
		args:  make([]uint8, nArgs),
	}
}

func (s *factState) Clone() State {
	c := newFactState(len(s.slots), len(s.args))
	copy(c.slots, s.slots)
	copy(c.orig, s.orig)
	copy(c.args, s.args)
	c.stat = s.stat
	return c
}

// Merge intersects facts (must-analysis). Origins merge as: top absorbs,
// equal survives, conflict decays to unknown.
func (s *factState) Merge(other State) bool {
	o := other.(*factState)
	changed := false
	for i := range s.slots {
		if nb := s.slots[i] & o.slots[i]; nb != s.slots[i] {
			s.slots[i] = nb
			changed = true
		}
		switch {
		case s.orig[i] == o.orig[i] || o.orig[i] == originTop:
		case s.orig[i] == originTop:
			s.orig[i] = o.orig[i]
			changed = true
		default:
			if s.orig[i] != originUnknown {
				s.orig[i] = originUnknown
				changed = true
			}
		}
	}
	for i := range s.args {
		if nb := s.args[i] & o.args[i]; nb != s.args[i] {
			s.args[i] = nb
			changed = true
		}
	}
	if nb := s.stat & o.stat; nb != s.stat {
		s.stat = nb
		changed = true
	}
	return changed
}

func (s *factState) Equal(other State) bool {
	o := other.(*factState)
	if s.stat != o.stat {
		return false
	}
	for i := range s.slots {
		if s.slots[i] != o.slots[i] || s.orig[i] != o.orig[i] {
			return false
		}
	}
	for i := range s.args {
		if s.args[i] != o.args[i] {
			return false
		}
	}
	return true
}

// factProblem instantiates the checked-facts analysis over one code array
// (a method body or a catch block).
type factProblem struct {
	an  *analyzer
	m   *jvm.Method
	cfg *CFG
	jt  []bool
	// entry seeds fact bits for leading parameter slots at the boundary;
	// nil means no entry facts (conservative, valid for host entry).
	entry []uint8
}

func (a *analyzer) problemFor(m *jvm.Method, code []jvm.Instr, entry []uint8) *factProblem {
	return &factProblem{an: a, m: m, cfg: BuildCFG(code), jt: jumpTargets(code), entry: entry}
}

func (pr *factProblem) Direction() Direction { return Forward }

func (pr *factProblem) Boundary() State {
	s := newFactState(pr.m.NLocal, pr.m.NArgs)
	for k := 0; k < pr.m.NArgs && k < pr.m.NLocal; k++ {
		s.orig[k] = int16(k)
	}
	for i := pr.m.NArgs; i < pr.m.NLocal; i++ {
		s.orig[i] = originUnknown
	}
	for k := 0; k < len(pr.entry) && k < len(s.slots); k++ {
		s.slots[k] = pr.entry[k]
	}
	return s
}

func (pr *factProblem) Top() State {
	s := newFactState(pr.m.NLocal, pr.m.NArgs)
	for i := range s.slots {
		s.slots[i] = jvm.FactAll
		s.orig[i] = originTop
	}
	for i := range s.args {
		s.args[i] = jvm.FactAll
	}
	s.stat = jvm.FactAll
	return s
}

func (pr *factProblem) Transfer(b int, st State) {
	s := st.(*factState)
	blk := pr.cfg.Blocks[b]
	for pc := blk.Start; pc < blk.End; pc++ {
		pr.step(s, pc)
	}
}

// src traces the stack value at the given depth (0 = top of stack just
// before code[pc]) back to its producing pc within the basic block, or -1.
// Unlike the compiler's intraprocedural tracer it always walks through
// OpInvoke, since a call cannot touch stack values below its arguments.
func (pr *factProblem) src(pc, depth int) int {
	code := pr.cfg.Code
	want := depth
	for i := pc - 1; i >= 0; i-- {
		in := code[i]
		if in.Op.IsJump() || in.Op == jvm.OpReturn || in.Op == jvm.OpReturnVal {
			return -1
		}
		if pr.jt[i+1] {
			return -1
		}
		var pops, pushes int
		if in.Op == jvm.OpInvoke {
			callee := pr.an.prog.Methods[in.A]
			pops = callee.NArgs
			if callee.ReturnsValue() {
				pushes = 1
			}
		} else {
			pops, pushes = in.Op.StackEffect()
		}
		if pushes > want {
			return i
		}
		want = want - pushes + pops
	}
	return -1
}

// step is the per-instruction transfer function.
func (pr *factProblem) step(s *factState, pc int) {
	code := pr.cfg.Code
	in := code[pc]
	switch {
	case in.Op.AccessDepth() >= 0:
		bit := jvm.FactRead
		if in.Op.IsWrite() {
			bit = jvm.FactWrite
		}
		if src := pr.src(pc, in.Op.AccessDepth()); src >= 0 && code[src].Op == jvm.OpLoad {
			slot := int(code[src].A)
			if slot < len(s.slots) {
				s.slots[slot] |= bit
				if o := s.orig[slot]; o >= 0 && int(o) < len(s.args) {
					s.args[o] |= bit
				}
			}
		}
	case in.Op == jvm.OpGetStatic:
		s.stat |= jvm.FactRead
	case in.Op == jvm.OpPutStatic:
		s.stat |= jvm.FactWrite
	case in.Op == jvm.OpInvoke:
		sum := pr.an.summaryOf(int(in.A))
		if sum == nil {
			return
		}
		callee := pr.an.prog.Methods[in.A]
		s.stat |= sum.Statics
		for k := 0; k < callee.NArgs && k < len(sum.Ensures); k++ {
			bits := sum.Ensures[k]
			if bits == 0 {
				continue
			}
			// Argument k sits at depth NArgs-1-k (last argument on top)
			// just before the invoke executes.
			if src := pr.src(pc, callee.NArgs-1-k); src >= 0 && code[src].Op == jvm.OpLoad {
				slot := int(code[src].A)
				if slot < len(s.slots) {
					s.slots[slot] |= bits
					if o := s.orig[slot]; o >= 0 && int(o) < len(s.args) {
						s.args[o] |= bits
					}
				}
			}
		}
	case in.Op == jvm.OpStore:
		d := int(in.A)
		if d >= len(s.slots) {
			return
		}
		src := pr.src(pc, 0)
		switch {
		case src >= 0 && (code[src].Op == jvm.OpNew || code[src].Op == jvm.OpNewArray):
			s.slots[d] = jvm.FactAll
			s.orig[d] = originFresh
		case src >= 0 && code[src].Op == jvm.OpLoad:
			ss := int(code[src].A)
			if ss < len(s.slots) {
				s.slots[d] = s.slots[ss]
				s.orig[d] = s.orig[ss]
			} else {
				s.slots[d] = 0
				s.orig[d] = originUnknown
			}
		case src >= 0 && code[src].Op == jvm.OpInvoke:
			var ret uint8
			if sum := pr.an.summaryOf(int(code[src].A)); sum != nil {
				ret = sum.Return
			}
			s.slots[d] = ret
			s.orig[d] = originUnknown
		default:
			s.slots[d] = 0
			s.orig[d] = originUnknown
		}
	}
}

// stateAt replays the transfer function from pc's block entry up to (but
// not including) pc, given the solved per-block input states.
func (pr *factProblem) stateAt(states []State, pc int) *factState {
	b := pr.cfg.BlockOf(pc)
	s := states[b].Clone().(*factState)
	for i := pr.cfg.Blocks[b].Start; i < pc; i++ {
		pr.step(s, i)
	}
	return s
}

// valueFacts classifies the stack value at the given depth just before
// pc: the fact bits it carries, whether it is a fresh in-activation
// allocation, and which parameter object it is (or -1).
func (pr *factProblem) valueFacts(s *factState, pc, depth int) (bits uint8, fresh bool, param int) {
	param = -1
	src := pr.src(pc, depth)
	if src < 0 {
		return 0, false, -1
	}
	code := pr.cfg.Code
	switch code[src].Op {
	case jvm.OpNew, jvm.OpNewArray:
		return jvm.FactAll, true, -1
	case jvm.OpLoad:
		slot := int(code[src].A)
		if slot >= len(s.slots) {
			return 0, false, -1
		}
		o := s.orig[slot]
		if o >= 0 {
			param = int(o)
		}
		return s.slots[slot], o == originFresh, param
	case jvm.OpInvoke:
		if sum := pr.an.summaryOf(int(code[src].A)); sum != nil {
			return sum.Return, false, -1
		}
	}
	return 0, false, -1
}
