// Package analysis is a whole-program dataflow framework over MiniJVM
// bytecode: a control-flow graph, a generic forward/backward worklist
// solver, and a call graph with bottom-up SCC iteration. Three clients are
// built on it:
//
//   - interprocedural barrier summaries (facts.go, summary.go), attached
//     to a jvm.Program so compilation with CompileOptions.Interproc can
//     eliminate barriers across call boundaries;
//   - a static region-safety lint (lint.go) reporting §5.1 restriction
//     violations at analysis time instead of as runtime denials;
//   - a barrier-freedom prover (summary.go), which reuses the compiler's
//     own elimination pass so a "no barriers needed" verdict cannot drift
//     from what compilation actually does.
//
// The dependency is one-way: analysis imports jvm, never the reverse.
// Results cross back into the compiler through jvm.InterprocResult.
package analysis

import "laminar/internal/jvm"

// Block is a basic block: the half-open instruction range [Start, End)
// plus its edges, as block indices.
type Block struct {
	Start, End int
	Succs      []int
	Preds      []int
}

// CFG is the control-flow graph of one code array.
type CFG struct {
	Code    []jvm.Instr
	Blocks  []Block
	blockOf []int // pc -> block index
}

// BuildCFG splits code into basic blocks and links edges. Leaders are pc
// 0, branch targets, and the instruction after a branch or return.
// Verified code has in-range targets; BuildCFG tolerates out-of-range
// ones by dropping the edge (lint runs on not-yet-verified programs).
func BuildCFG(code []jvm.Instr) *CFG {
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc, in := range code {
		if in.Op.IsJump() {
			if t := int(in.A); t >= 0 && t < len(code) {
				leader[t] = true
			}
			leader[pc+1] = true
		}
		if in.Op == jvm.OpReturn || in.Op == jvm.OpReturnVal {
			leader[pc+1] = true
		}
	}
	g := &CFG{Code: code, blockOf: make([]int, len(code))}
	start := 0
	for pc := 1; pc <= len(code); pc++ {
		if pc == len(code) || leader[pc] {
			if start < pc {
				for i := start; i < pc; i++ {
					g.blockOf[i] = len(g.Blocks)
				}
				g.Blocks = append(g.Blocks, Block{Start: start, End: pc})
			}
			start = pc
		}
	}
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := code[b.End-1]
		add := func(pc int) {
			if pc < 0 || pc >= len(code) {
				return
			}
			si := g.blockOf[pc]
			b.Succs = append(b.Succs, si)
			g.Blocks[si].Preds = append(g.Blocks[si].Preds, bi)
		}
		switch {
		case last.Op == jvm.OpReturn || last.Op == jvm.OpReturnVal:
		case last.Op == jvm.OpJmp:
			add(int(last.A))
		case last.Op == jvm.OpJmpIf || last.Op == jvm.OpJmpIfNot:
			add(int(last.A))
			add(b.End)
		default:
			add(b.End)
		}
	}
	return g
}

// BlockOf maps a pc to its block index.
func (g *CFG) BlockOf(pc int) int { return g.blockOf[pc] }

// jumpTargets marks every pc some branch lands on; the backwards stack
// tracer stops at them because values may arrive from another path.
func jumpTargets(code []jvm.Instr) []bool {
	t := make([]bool, len(code)+1)
	for _, in := range code {
		if in.Op.IsJump() && int(in.A) >= 0 && int(in.A) <= len(code) {
			t[in.A] = true
		}
	}
	return t
}
