package analysis

import (
	"testing"

	"laminar/internal/jvm"
)

func parse(t *testing.T, src string) *jvm.Program {
	t.Helper()
	p, err := jvm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

const summarySrc = `
method touch args=1 locals=1
    load 0
    getfield 0
    pop
    load 0
    const 1
    putfield 0
    return
end

method make args=0 locals=0
    new 2
    returnval
end

method main args=0 locals=1
    invoke make
    store 0
    load 0
    invoke touch
    load 0
    getfield 0
    pop
    const 0
    returnval
end
`

func TestSummaries(t *testing.T) {
	p := parse(t, summarySrc)
	r, err := Attach(p)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(name string) int {
		m, err := p.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		return m.Index()
	}
	touch := r.Summaries[idx("touch")]
	if got := touch.Ensures[0]; got != jvm.FactAll {
		t.Errorf("touch.Ensures[0] = %b, want FactAll", got)
	}
	mk := r.Summaries[idx("make")]
	if mk.Return != jvm.FactAll {
		t.Errorf("make.Return = %b, want FactAll (fresh allocation)", mk.Return)
	}
	if !mk.BarrierFree {
		t.Error("make should be barrier-free (only an allocation)")
	}
	// main stores make's fresh return into slot 0, so touch's argument is
	// proven fully checked at its only call site.
	if got := touch.EntryChecked[0]; got != jvm.FactAll {
		t.Errorf("touch.EntryChecked[0] = %b, want FactAll", got)
	}
	// touch itself cannot be barrier-free: a host entry passes an
	// unchecked argument.
	if touch.BarrierFree {
		t.Error("touch must not be barrier-free")
	}
	mn := r.Summaries[idx("main")]
	if !mn.BarrierFree {
		t.Error("main should be barrier-free: its only access reads a checked fresh object")
	}
	// main has no call sites, so its entry facts must be conservative.
	if len(mn.EntryChecked) != 0 {
		t.Errorf("main.EntryChecked = %v, want empty (no args)", mn.EntryChecked)
	}
}

const recursiveSrc = `
method walk args=1 locals=1
    load 0
    getfield 0
    pop
    load 0
    getfield 1
    jmpifnot done
    load 0
    invoke walk
done:
    return
end

method main args=0 locals=1
    new 2
    store 0
    load 0
    invoke walk
    const 0
    returnval
end
`

func TestRecursiveSCCFixpoint(t *testing.T) {
	p := parse(t, recursiveSrc)
	r, err := Attach(p)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := p.Lookup("walk")
	sum := r.Summaries[m.Index()]
	if got := sum.Ensures[0]; got != jvm.FactRead {
		t.Errorf("walk.Ensures[0] = %b, want FactRead only (no writes on any path)", got)
	}
	// walk invokes itself, so its SCC has a self-loop.
	if !r.Graph.InSameSCC(m.Index(), m.Index()) {
		t.Error("walk should be in a self-recursive SCC")
	}
}

func TestSCCBottomUpOrder(t *testing.T) {
	p := parse(t, summarySrc)
	g := BuildCallGraph(p)
	pos := make(map[int]int)
	for i, scc := range g.SCCs {
		for _, mi := range scc {
			pos[mi] = i
		}
	}
	main, _ := p.Lookup("main")
	touch, _ := p.Lookup("touch")
	mk, _ := p.Lookup("make")
	if pos[main.Index()] <= pos[touch.Index()] || pos[main.Index()] <= pos[mk.Index()] {
		t.Errorf("callees must precede callers in SCC order: %v", g.SCCs)
	}
}

func TestInterprocBeatsIntraproc(t *testing.T) {
	p := parse(t, summarySrc)
	if _, err := Attach(p); err != nil {
		t.Fatal(err)
	}
	run := func(opts jvm.CompileOptions) jvm.RunStats {
		// Fresh program per config: compiled variants are cached.
		p2 := parse(t, summarySrc)
		if opts.Interproc {
			if _, err := Attach(p2); err != nil {
				t.Fatal(err)
			}
		}
		mc, err := jvm.NewMachine(p2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mc.Call(mc.NewThread(), "main"); err != nil {
			t.Fatal(err)
		}
		return mc.Stats()
	}
	base := run(jvm.CompileOptions{Mode: jvm.BarrierStatic})
	intra := run(jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true})
	inter := run(jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true, Interproc: true})
	if intra.BarrierChecks > base.BarrierChecks {
		t.Errorf("intraproc increased checks: %d > %d", intra.BarrierChecks, base.BarrierChecks)
	}
	if inter.BarrierChecks >= intra.BarrierChecks {
		t.Errorf("interproc should beat intraproc: %d >= %d", inter.BarrierChecks, intra.BarrierChecks)
	}
}

const lintSrc = `
statics 1

secure method bad args=1 locals=2 secrecy=1
    getstatic 0
    pop
    const 7
    putstatic 0
    load 0
    const 1
    putfield 0
    new 1
    putstatic 0
    return
catch:
    return
end

secure method spin args=0 locals=0 secrecy=2
loop:
    jmp loop
end

method main args=0 locals=1
    new 1
    store 0
    load 0
    invoke bad
    return
end
`

func TestLint(t *testing.T) {
	p := parse(t, lintSrc)
	findings := Lint(p)
	want := map[string]int{
		"region-static-write-secrecy": 2, // putstatic at pc 3 and 8
		"region-outer-write":          1, // putfield on the parameter object
		"region-ref-escape":           1, // fresh allocation stored to a static
		"region-no-exit":              1, // spin never returns
		"region-no-catch":             1, // spin has labels but no catch
	}
	got := map[string]int{}
	for _, f := range findings {
		got[f.Rule]++
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: got %d findings, want %d\nall: %v", rule, got[rule], n, findings)
		}
	}
	for rule := range got {
		if _, ok := want[rule]; !ok {
			t.Errorf("unexpected rule %s in findings %v", rule, findings)
		}
	}
	// No findings on a secrecy-free read: getstatic in a secrecy-only
	// region is legal (barrier.sr checks integrity).
	for _, f := range findings {
		if f.Rule == "region-static-read-integrity" {
			t.Errorf("unexpected static-read finding: %v", f)
		}
	}
}

func TestLintIntegrityRegion(t *testing.T) {
	p := parse(t, `
statics 1
secure method audit args=1 locals=1 integrity=5
    getstatic 0
    pop
    load 0
    getfield 0
    pop
    return
catch:
    return
end
`)
	findings := Lint(p)
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f.Rule] = true
	}
	if !rules["region-static-read-integrity"] {
		t.Errorf("integrity region static read not flagged: %v", findings)
	}
	if !rules["region-outer-read"] {
		t.Errorf("integrity region parameter read not flagged: %v", findings)
	}
}

func TestBackwardSolverReachability(t *testing.T) {
	p := parse(t, `
method loopy args=0 locals=1
    const 1
    jmpifnot done
spin:
    jmp spin
done:
    return
end
`)
	m := p.Methods[0]
	cfg := BuildCFG(m.Code)
	states := Solve(cfg, &reachProblem{cfg: cfg})
	entry := cfg.BlockOf(0)
	spin := cfg.BlockOf(2)
	if !bool(*states[entry].(*reachState)) {
		t.Error("entry should reach a return via the fallthrough edge")
	}
	if bool(*states[spin].(*reachState)) {
		t.Error("the self-loop block must not reach a return")
	}
}

func TestAnalyzeRejectsUnverifiable(t *testing.T) {
	p := jvm.NewProgram(0)
	p.Add(&jvm.Method{Name: "bad", NArgs: 0, NLocal: 0, Code: []jvm.Instr{{Op: jvm.OpPop}, {Op: jvm.OpReturn}}})
	if _, err := Analyze(p); err == nil {
		t.Fatal("Analyze should refuse an unverifiable program")
	}
}
