package analysis

import "laminar/internal/jvm"

// CallSite is one OpInvoke instruction.
type CallSite struct {
	Caller  int  // method table index of the calling method
	PC      int  // pc of the invoke within the caller's code array
	InCatch bool // the site is in the caller's catch block
}

// CallGraph is the program's static call graph.
type CallGraph struct {
	// Callees[mi] lists the methods mi invokes (deduplicated), including
	// from its catch block.
	Callees [][]int
	// Sites[mi] lists every invoke site that targets mi. Interprocedural
	// entry facts are the meet over exactly this set; a method with no
	// sites is only reachable from the host and gets no entry facts.
	Sites [][]CallSite
	// SCCs lists strongly connected components in bottom-up order:
	// callees appear before their callers, so iterating SCCs in slice
	// order sees every out-of-component callee summary finished.
	SCCs [][]int
}

// BuildCallGraph scans every method's code and catch block.
func BuildCallGraph(p *jvm.Program) *CallGraph {
	n := len(p.Methods)
	g := &CallGraph{
		Callees: make([][]int, n),
		Sites:   make([][]CallSite, n),
	}
	for mi, m := range p.Methods {
		seen := make(map[int]bool)
		scan := func(code []jvm.Instr, inCatch bool) {
			for pc, in := range code {
				if in.Op != jvm.OpInvoke {
					continue
				}
				callee := int(in.A)
				if callee < 0 || callee >= n {
					continue
				}
				g.Sites[callee] = append(g.Sites[callee], CallSite{Caller: mi, PC: pc, InCatch: inCatch})
				if !seen[callee] {
					seen[callee] = true
					g.Callees[mi] = append(g.Callees[mi], callee)
				}
			}
		}
		scan(m.Code, false)
		if m.Secure != nil && m.Secure.Catch != nil {
			scan(m.Secure.Catch, true)
		}
	}
	g.SCCs = tarjan(n, g.Callees)
	return g
}

// tarjan computes strongly connected components. With edges pointing
// caller -> callee, Tarjan emits components in reverse topological order
// of the condensation, which is exactly the bottom-up (callee-first)
// order summary computation wants.
func tarjan(n int, edges [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack []int
		sccs  [][]int
		next  int
	)
	var visit func(v int)
	visit = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if index[w] == unvisited {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			visit(v)
		}
	}
	return sccs
}

// InSameSCC reports whether a and b are mutually recursive (or a == b
// with a self-loop component).
func (g *CallGraph) InSameSCC(a, b int) bool {
	for _, scc := range g.SCCs {
		ina, inb := false, false
		for _, m := range scc {
			ina = ina || m == a
			inb = inb || m == b
		}
		if ina {
			return inb
		}
	}
	return false
}
