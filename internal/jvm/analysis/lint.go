package analysis

import (
	"fmt"
	"sort"

	"laminar/internal/jvm"
)

// Finding is one region-safety diagnostic. PC is -1 for method-level
// findings; InCatch marks sites inside a catch block.
type Finding struct {
	Method  string
	PC      int
	InCatch bool
	// Rule is a stable identifier (region-static-read-integrity, ...).
	Rule string
	// Advisory findings flag risky-but-legal patterns; everything else
	// is a guaranteed or conservatively-likely runtime denial.
	Advisory bool
	Msg      string
}

// String formats a finding as method@pc: [rule] msg.
func (f Finding) String() string {
	loc := f.Method
	if f.InCatch {
		loc += ".catch"
	}
	if f.PC >= 0 {
		loc = fmt.Sprintf("%s@%d", loc, f.PC)
	}
	sev := ""
	if f.Advisory {
		sev = " (advisory)"
	}
	return fmt.Sprintf("%s: [%s]%s %s", loc, f.Rule, sev, f.Msg)
}

// Lint reports §5.1 region-restriction violations statically, at
// method/pc granularity, instead of leaving them to surface as runtime
// denials. It mirrors the bytecode verifier's structural region rules
// (reporting all sites, where Verify stops at the first) and adds
// label-aware rules the verifier cannot express:
//
//   - static reads in integrity-labeled regions and static writes in
//     secrecy-labeled regions are guaranteed denials (barrier.sr/sw);
//   - reads of parameter objects in integrity regions and writes to
//     parameter objects in secrecy regions are denied unless the caller
//     passes suitably labeled objects — conservatively flagged, since the
//     analysis cannot see caller heaps;
//   - storing an in-region allocation to a static or into a parameter
//     object lets a labeled reference escape the region, where any later
//     outside access traps on the outside barrier;
//   - a labeled region without a catch block suppresses denials silently;
//   - region code from which no return is reachable never exits the
//     region (found with the backward return-reachability analysis).
//
// Lint requires only structural well-formedness (in-range targets are
// tolerated by BuildCFG); it does not require Verify to pass, so verifier
// rejections and lint findings can be reported together.
func Lint(p *jvm.Program) []Finding {
	a := &analyzer{prog: p, graph: BuildCallGraph(p), sums: make([]*Summary, len(p.Methods))}
	// Zero summaries everywhere: lint must not assume facts that only
	// hold after a full (verified) summary computation.
	for mi, m := range p.Methods {
		a.sums[mi] = &Summary{Ensures: make([]uint8, m.NArgs)}
	}
	var out []Finding
	for _, m := range p.Methods {
		if m.Secure == nil {
			continue
		}
		out = append(out, lintRegion(a, m)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		if out[i].InCatch != out[j].InCatch {
			return !out[i].InCatch
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func lintRegion(a *analyzer, m *jvm.Method) []Finding {
	var out []Finding
	add := func(pc int, inCatch bool, rule string, advisory bool, format string, args ...any) {
		out = append(out, Finding{
			Method: m.Name, PC: pc, InCatch: inCatch, Rule: rule, Advisory: advisory,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	labels := m.Secure.Labels

	// Structural rules, mirroring the verifier but reporting every site.
	if m.ReturnsValue() {
		for pc, in := range m.Code {
			if in.Op == jvm.OpReturnVal {
				add(pc, false, "region-returns-value", false,
					"security region returns a value; it would leak through the caller's stack")
			}
		}
	}
	for pc, in := range m.Code {
		switch in.Op {
		case jvm.OpStore:
			if int(in.A) < m.NArgs {
				add(pc, false, "region-param-write", false,
					"security region writes parameter slot %d", in.A)
			}
		case jvm.OpLoad:
			if int(in.A) < m.NArgs && !derefConsumed(m.Code, pc) {
				add(pc, false, "region-param-value-use", false,
					"parameter slot %d used as a value; regions may only dereference parameters", in.A)
			}
		}
	}
	if !labels.IsEmpty() && m.Secure.Catch == nil {
		add(-1, false, "region-no-catch", true,
			"labeled region has no catch block; denials are suppressed with no handler")
	}

	// Label-aware rules over body and catch (both run with the region's
	// labels).
	lintLabeled(a, m, m.Code, false, add)
	if m.Secure.Catch != nil {
		lintLabeled(a, m, m.Secure.Catch, true, add)
	}
	return out
}

type addFn func(pc int, inCatch bool, rule string, advisory bool, format string, args ...any)

func lintLabeled(a *analyzer, m *jvm.Method, code []jvm.Instr, inCatch bool, add addFn) {
	sec := m.Secure.Labels
	hasS := !sec.S.IsEmpty()
	hasI := !sec.I.IsEmpty()

	pr := a.problemFor(m, code, nil)
	var states []State
	if hasS || hasI {
		states = Solve(pr.cfg, pr)
	}
	stateFor := func(pc int) *factState { return pr.stateAt(states, pc) }

	for pc, in := range code {
		switch in.Op {
		case jvm.OpGetStatic:
			if hasI {
				add(pc, inCatch, "region-static-read-integrity", false,
					"static read in a region with integrity labels %v is always denied (barrier.sr)", sec.I)
			}
		case jvm.OpPutStatic:
			if hasS {
				add(pc, inCatch, "region-static-write-secrecy", false,
					"static write in a region with secrecy labels %v is always denied (barrier.sw)", sec.S)
			}
			if hasS || hasI {
				s := stateFor(pc)
				if _, fresh, _ := pr.valueFacts(s, pc, 0); fresh {
					add(pc, inCatch, "region-ref-escape", false,
						"in-region allocation stored to static slot %d escapes the region; any outside access traps", in.A)
				}
			}
		case jvm.OpPutField, jvm.OpAStore:
			if !hasS && !hasI {
				continue
			}
			s := stateFor(pc)
			objDepth := in.Op.AccessDepth()
			_, objFresh, objParam := pr.valueFacts(s, pc, objDepth)
			if hasS && objParam >= 0 {
				add(pc, inCatch, "region-outer-write", false,
					"write to parameter %d's object is denied unless the caller passes an object labeled with the region's secrecy %v", objParam, sec.S)
			}
			if objParam >= 0 && !objFresh {
				if _, valFresh, _ := pr.valueFacts(s, pc, 0); valFresh {
					add(pc, inCatch, "region-ref-escape", false,
						"in-region allocation stored into parameter %d's object escapes the region; any outside access traps", objParam)
				}
			}
		case jvm.OpGetField, jvm.OpALoad, jvm.OpArrayLen:
			if !hasI {
				continue
			}
			s := stateFor(pc)
			if _, fresh, param := pr.valueFacts(s, pc, in.Op.AccessDepth()); param >= 0 && !fresh {
				add(pc, inCatch, "region-outer-read", false,
					"read of parameter %d's object is denied unless the caller passes an object labeled with the region's integrity %v", param, sec.I)
			}
		}
	}

	// Non-fall-through exits: region code from which no return is
	// reachable keeps the region's labels on the thread forever.
	reach := Solve(pr.cfg, &reachProblem{cfg: pr.cfg})
	if len(pr.cfg.Blocks) > 0 {
		entry := pr.cfg.BlockOf(0)
		if !bool(*reach[entry].(*reachState)) {
			add(-1, inCatch, "region-no-exit", false,
				"no return is reachable from region entry; the region never exits and its labels are never popped")
		}
	}
}

// derefConsumed mirrors the verifier's parameter-use rule: the value
// pushed at pc must be consumed by a dereference-style instruction or a
// call.
func derefConsumed(code []jvm.Instr, pc int) bool {
	height := 0
	for i := pc + 1; i < len(code); i++ {
		op := code[i].Op
		if op == jvm.OpInvoke {
			return true
		}
		pops, pushes := op.StackEffect()
		if pops > height {
			switch op {
			case jvm.OpGetField, jvm.OpPutField, jvm.OpALoad, jvm.OpAStore, jvm.OpArrayLen:
				return true
			default:
				return false
			}
		}
		if op.IsJump() || op == jvm.OpReturn || op == jvm.OpReturnVal {
			return false
		}
		height = height - pops + pushes
	}
	return false
}

// reachProblem is the backward may-analysis "is a return reachable from
// here": Merge is a union, boundary (at exit blocks) is true, and the
// per-instruction transfer is the identity.
type reachState bool

func (s *reachState) Clone() State { c := *s; return &c }
func (s *reachState) Merge(other State) bool {
	o := *other.(*reachState)
	if o && !*s {
		*s = true
		return true
	}
	return false
}
func (s *reachState) Equal(other State) bool { return *s == *other.(*reachState) }

type reachProblem struct{ cfg *CFG }

func (p *reachProblem) Direction() Direction { return Backward }
func (p *reachProblem) Boundary() State {
	s := reachState(true)
	return &s
}
func (p *reachProblem) Top() State {
	s := reachState(false)
	return &s
}
func (p *reachProblem) Transfer(b int, s State) {}
