package analysis

import (
	"fmt"
	"sort"

	"laminar/internal/jvm"
)

// This file implements the interprocedural secrecy/integrity taint
// analysis behind the three policy-invariant lint rules:
//
//	robust-declassification  low-integrity data influences the data,
//	                         scope (guarding branch / call path), or
//	                         destination of a declassification site;
//	transparent-endorsement  secret data influences an endorsement
//	                         decision or a branch that guards one;
//	implicit-flow-fanout     a branch on secret data selects between
//	                         distinguishable public effects (the
//	                         "evil router" control-flow encoding).
//
// The analysis is a forward may-analysis over the same CFG/worklist
// machinery as the checked-facts pass (facts.go), generalized in three
// ways: the lattice tracks a two-bit taint (secret, low-integrity) per
// value plus symbolic dependences on the enclosing method's parameters;
// implicit flows are modeled with a per-pc control taint derived from
// postdominator-based control dependence; and the interprocedural part is
// a global fixpoint over per-method entry/return/heap-effect tables
// rather than the meet-over-call-sites summaries of summary.go (taint
// joins where checked-facts meet).
//
// Source model: the program's host entry point is `main`, whose integer
// arguments are the secrets; static slots hold host-provided public
// (low-integrity) inputs, so every getstatic is a low-integrity source
// and statics written by the program accumulate whatever taint was
// stored. Methods never called and not named main get no entry taint.
//
// Site model (mirrors how examples and the declass package use regions):
// a declassification site is a secure method holding minus capabilities
// (it can drop secrecy on entry — the MiniJVM analogue of
// declass.Registry.Invoke's capability-holding module region); an
// endorsement site is a secure method carrying integrity labels (its
// execution endorses data, the analogue of the endorsement decision
// behind declass.Registry.Load).

// Taint bits.
const (
	// TaintSecret marks data derived from the program's secret inputs
	// (main's arguments).
	TaintSecret uint8 = 1 << iota
	// TaintLow marks data derived from low-integrity inputs (statics).
	TaintLow
)

const taintAll = TaintSecret | TaintLow

// IsDeclassifier reports whether m is a declassification site: a security
// region holding minus capabilities, able to drop secrecy tags on entry.
func IsDeclassifier(m *jvm.Method) bool {
	return m.Secure != nil && !m.Secure.Caps.Minus().IsEmpty()
}

// IsEndorser reports whether m is an endorsement site: a security region
// carrying integrity labels, whose execution vouches for what it writes.
func IsEndorser(m *jvm.Method) bool {
	return m.Secure != nil && !m.Secure.Labels.I.IsEmpty()
}

// taintVal is the per-value lattice element: concrete taint bits plus
// symbolic dependences on the enclosing method's parameters — deps bit k
// means "includes the entry VALUE of parameter k", hdeps bit k means
// "includes the entry HEAP contents reachable from parameter k". The
// symbolic part lets one intra-method solve serve every call site; the
// global tables (entryVal/entryHeap) resolve it to concrete bits.
type taintVal struct {
	bits  uint8
	deps  uint32
	hdeps uint32
}

func (t taintVal) or(o taintVal) taintVal {
	return taintVal{t.bits | o.bits, t.deps | o.deps, t.hdeps | o.hdeps}
}

func (t taintVal) isZero() bool { return t.bits == 0 && t.deps == 0 && t.hdeps == 0 }

// paramBit returns the dependence mask bit for parameter k (parameters
// beyond 32 fall back to bit 31, erring conservative-by-aliasing rather
// than dropping the dependence).
func paramBit(k int) uint32 {
	if k >= 32 {
		k = 31
	}
	return 1 << uint(k)
}

func paramMask(n int) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (1 << uint(n)) - 1
}

// Origin sentinels for the taint state, extending the facts.go encoding:
// values >= 0 name a parameter; fresh allocations are tracked per
// allocation SITE (not one shared bucket) so a clean object and a
// secret-carrying object allocated in the same method do not alias.
const (
	taintOriginInt      = -4 // definitely a non-reference (int) value
	taintOriginSiteBase = -5 // allocation site s encodes as -(5+s)
)

func siteOrigin(site int) int16 { return int16(taintOriginSiteBase - site) }

// taintState is the per-program-point lattice element of the may-analysis:
// per-slot value taint and origin, plus the heap buckets — contents
// written (so far, on some path) into each parameter's object and into
// each local allocation site's objects.
type taintState struct {
	slots  []taintVal
	orig   []int16
	hparam []taintVal
	sites  []taintVal
}

func newTaintState(nLocal, nArgs, nSites int) *taintState {
	return &taintState{
		slots:  make([]taintVal, nLocal),
		orig:   make([]int16, nLocal),
		hparam: make([]taintVal, nArgs),
		sites:  make([]taintVal, nSites),
	}
}

func (s *taintState) Clone() State {
	c := newTaintState(len(s.slots), len(s.hparam), len(s.sites))
	copy(c.slots, s.slots)
	copy(c.orig, s.orig)
	copy(c.hparam, s.hparam)
	copy(c.sites, s.sites)
	return c
}

// Merge joins taint (may-analysis: union). Origins merge as in facts.go:
// top absorbs, equal survives, conflict decays to unknown.
func (s *taintState) Merge(other State) bool {
	o := other.(*taintState)
	changed := false
	for i := range s.slots {
		if nv := s.slots[i].or(o.slots[i]); nv != s.slots[i] {
			s.slots[i] = nv
			changed = true
		}
		switch {
		case s.orig[i] == o.orig[i] || o.orig[i] == originTop:
		case s.orig[i] == originTop:
			s.orig[i] = o.orig[i]
			changed = true
		default:
			if s.orig[i] != originUnknown {
				s.orig[i] = originUnknown
				changed = true
			}
		}
	}
	for i := range s.hparam {
		if nv := s.hparam[i].or(o.hparam[i]); nv != s.hparam[i] {
			s.hparam[i] = nv
			changed = true
		}
	}
	for i := range s.sites {
		if nv := s.sites[i].or(o.sites[i]); nv != s.sites[i] {
			s.sites[i] = nv
			changed = true
		}
	}
	return changed
}

func (s *taintState) Equal(other State) bool {
	o := other.(*taintState)
	for i := range s.slots {
		if s.slots[i] != o.slots[i] || s.orig[i] != o.orig[i] {
			return false
		}
	}
	for i := range s.hparam {
		if s.hparam[i] != o.hparam[i] {
			return false
		}
	}
	for i := range s.sites {
		if s.sites[i] != o.sites[i] {
			return false
		}
	}
	return true
}

// methodInfo caches the per-code-array structures the analysis needs.
type methodInfo struct {
	cfg     *CFG
	jt      []bool
	sites   map[int]int // pc of OpNew/OpNewArray -> allocation site index
	nsites  int
	pcT     []taintVal // per-pc control taint (symbolic), grows monotonically
	inCatch bool
}

func newMethodInfo(code []jvm.Instr, inCatch bool) *methodInfo {
	mi := &methodInfo{
		cfg:     BuildCFG(code),
		jt:      jumpTargets(code),
		sites:   make(map[int]int),
		pcT:     make([]taintVal, len(code)),
		inCatch: inCatch,
	}
	for pc, in := range code {
		if in.Op == jvm.OpNew || in.Op == jvm.OpNewArray {
			mi.sites[pc] = mi.nsites
			mi.nsites++
		}
	}
	return mi
}

// taintAnalysis holds the global interprocedural fixpoint tables.
type taintAnalysis struct {
	prog    *jvm.Program
	graph   *CallGraph
	mainIdx int

	body  []*methodInfo // per method: body info
	catch []*methodInfo // per method: catch info (nil if none)

	// Concrete taint arriving at each method's parameters, joined over
	// all call sites (plus the host-entry seed for main).
	entryVal  [][]uint8
	entryHeap [][]uint8
	// ret[mi] is the symbolic taint of mi's returned value (in terms of
	// mi's own parameters); retHeap[mi] is the taint of the heap contents
	// reachable from a returned reference.
	ret     []taintVal
	retHeap []taintVal
	// heapOut[mi][k] is the symbolic taint mi writes into parameter k's
	// object during a call.
	heapOut [][]taintVal
	// declassIn/endorseIn bit k: parameter k's data reaches a
	// declassification/endorsement site through mi (by being read at the
	// site, flowing to an in-context publication, or guarding entry).
	declassIn []uint32
	endorseIn []uint32
	// statics[slot] accumulates the taint of everything stored to that
	// static slot. Slots start at TaintLow (host-set public inputs).
	// Publications from inside a declassification context shed
	// TaintSecret (the declassifier sanctions them) and from inside an
	// endorsement context shed TaintLow (the endorser vouches for them) —
	// the lint rules judge the PRE-laundering taint; downstream readers
	// see the post-laundering taint, mirroring the DIFC semantics.
	statics []uint8

	isDecl, isEnd        []bool
	reachDecl, reachEnd  []bool // is, or transitively invokes, a site
	hasPub               []bool // transitively executes a putstatic
	inDeclCtx, inEndCtx  []bool // may run while such a region is active
	changed              bool
}

func newTaintAnalysis(p *jvm.Program) *taintAnalysis {
	n := len(p.Methods)
	ta := &taintAnalysis{
		prog:       p,
		graph:      BuildCallGraph(p),
		mainIdx:    -1,
		body:       make([]*methodInfo, n),
		catch:      make([]*methodInfo, n),
		entryVal:   make([][]uint8, n),
		entryHeap:  make([][]uint8, n),
		ret:        make([]taintVal, n),
		retHeap:    make([]taintVal, n),
		heapOut:    make([][]taintVal, n),
		declassIn:  make([]uint32, n),
		endorseIn:  make([]uint32, n),
		statics:    make([]uint8, p.NStatics),
		isDecl:     make([]bool, n),
		isEnd:      make([]bool, n),
		reachDecl:  make([]bool, n),
		reachEnd:   make([]bool, n),
		hasPub:     make([]bool, n),
		inDeclCtx:  make([]bool, n),
		inEndCtx:   make([]bool, n),
	}
	for i := range ta.statics {
		ta.statics[i] = TaintLow
	}
	for mi, m := range p.Methods {
		ta.body[mi] = newMethodInfo(m.Code, false)
		if m.Secure != nil && m.Secure.Catch != nil {
			ta.catch[mi] = newMethodInfo(m.Secure.Catch, true)
		}
		ta.entryVal[mi] = make([]uint8, m.NArgs)
		ta.entryHeap[mi] = make([]uint8, m.NArgs)
		ta.heapOut[mi] = make([]taintVal, m.NArgs)
		ta.isDecl[mi] = IsDeclassifier(m)
		ta.isEnd[mi] = IsEndorser(m)
		if m.Name == "main" {
			ta.mainIdx = mi
		}
	}
	if ta.mainIdx >= 0 {
		for k := range ta.entryVal[ta.mainIdx] {
			ta.entryVal[ta.mainIdx][k] = TaintSecret
		}
	}
	ta.computeClosures()
	return ta
}

// computeClosures derives the call-graph reachability sets: upward
// (reaches a site, has a publication) and downward (runs in a site's
// context). Catch-block call sites participate like body sites.
func (ta *taintAnalysis) computeClosures() {
	n := len(ta.prog.Methods)
	hasOwnPub := func(code []jvm.Instr) bool {
		for _, in := range code {
			if in.Op == jvm.OpPutStatic {
				return true
			}
		}
		return false
	}
	for mi, m := range ta.prog.Methods {
		ta.reachDecl[mi] = ta.isDecl[mi]
		ta.reachEnd[mi] = ta.isEnd[mi]
		ta.hasPub[mi] = hasOwnPub(m.Code)
		if m.Secure != nil && m.Secure.Catch != nil {
			ta.hasPub[mi] = ta.hasPub[mi] || hasOwnPub(m.Secure.Catch)
		}
		ta.inDeclCtx[mi] = ta.isDecl[mi]
		ta.inEndCtx[mi] = ta.isEnd[mi]
	}
	for changed := true; changed; {
		changed = false
		for mi := 0; mi < n; mi++ {
			for _, c := range ta.graph.Callees[mi] {
				if ta.reachDecl[c] && !ta.reachDecl[mi] {
					ta.reachDecl[mi] = true
					changed = true
				}
				if ta.reachEnd[c] && !ta.reachEnd[mi] {
					ta.reachEnd[mi] = true
					changed = true
				}
				if ta.hasPub[c] && !ta.hasPub[mi] {
					ta.hasPub[mi] = true
					changed = true
				}
				if ta.inDeclCtx[mi] && !ta.inDeclCtx[c] {
					ta.inDeclCtx[c] = true
					changed = true
				}
				if ta.inEndCtx[mi] && !ta.inEndCtx[c] {
					ta.inEndCtx[c] = true
					changed = true
				}
			}
		}
	}
}

// resolve folds a symbolic taint down to concrete bits using the entry
// tables of the method it is symbolic over.
func (ta *taintAnalysis) resolve(mi int, tv taintVal) uint8 {
	b := tv.bits
	ev, eh := ta.entryVal[mi], ta.entryHeap[mi]
	for k := 0; k < len(ev); k++ {
		if tv.deps&paramBit(k) != 0 {
			b |= ev[k]
		}
		if tv.hdeps&paramBit(k) != 0 {
			b |= eh[k]
		}
	}
	return b
}

func (ta *taintAnalysis) joinEntry(ci, k int, val, heap uint8) {
	if k >= len(ta.entryVal[ci]) {
		return
	}
	if nv := ta.entryVal[ci][k] | val; nv != ta.entryVal[ci][k] {
		ta.entryVal[ci][k] = nv
		ta.changed = true
	}
	if nv := ta.entryHeap[ci][k] | heap; nv != ta.entryHeap[ci][k] {
		ta.entryHeap[ci][k] = nv
		ta.changed = true
	}
}

func (ta *taintAnalysis) joinRet(mi int, tv taintVal) {
	if nv := ta.ret[mi].or(tv); nv != ta.ret[mi] {
		ta.ret[mi] = nv
		ta.changed = true
	}
}

func (ta *taintAnalysis) joinRetHeap(mi int, tv taintVal) {
	if nv := ta.retHeap[mi].or(tv); nv != ta.retHeap[mi] {
		ta.retHeap[mi] = nv
		ta.changed = true
	}
}

// staticAt reads one static slot's accumulated taint (out-of-range slots
// trap at runtime; nothing flows).
func (ta *taintAnalysis) staticAt(slot int32) uint8 {
	if slot >= 0 && int(slot) < len(ta.statics) {
		return ta.statics[slot]
	}
	return 0
}

// allStatic joins every slot — the conservative bound for values that
// may have come from any static.
func (ta *taintAnalysis) allStatic() uint8 {
	var b uint8
	for _, s := range ta.statics {
		b |= s
	}
	return b
}

func (ta *taintAnalysis) joinHeapOut(mi, k int, tv taintVal) {
	if k >= len(ta.heapOut[mi]) {
		return
	}
	if nv := ta.heapOut[mi][k].or(tv); nv != ta.heapOut[mi][k] {
		ta.heapOut[mi][k] = nv
		ta.changed = true
	}
}

func (ta *taintAnalysis) joinStatic(slot int32, bits uint8) {
	if slot < 0 || int(slot) >= len(ta.statics) {
		return
	}
	if nv := ta.statics[slot] | bits; nv != ta.statics[slot] {
		ta.statics[slot] = nv
		ta.changed = true
	}
}

// joinAllStatics smears bits over every slot — used for writes whose
// destination object may be reachable from statics.
func (ta *taintAnalysis) joinAllStatics(bits uint8) {
	for i := range ta.statics {
		if nv := ta.statics[i] | bits; nv != ta.statics[i] {
			ta.statics[i] = nv
			ta.changed = true
		}
	}
}

func (ta *taintAnalysis) joinMask(mask *uint32, bits uint32) {
	if nv := *mask | bits; nv != *mask {
		*mask = nv
		ta.changed = true
	}
}

// taintProblem instantiates the taint analysis over one code array.
type taintProblem struct {
	ta   *taintAnalysis
	m    *jvm.Method
	mi   int
	info *methodInfo
}

// conservativeAll is the sound over-approximation of "any value this
// method could have seen": everything derives from its parameters (value
// or heap), from statics, or — in main — from the secret inputs. Used for
// values the tracer cannot follow (cross-block stack values, unknown
// heap).
func (pr *taintProblem) conservativeAll() taintVal {
	bits := pr.ta.allStatic()
	if pr.mi == pr.ta.mainIdx && pr.m.NArgs > 0 {
		bits |= TaintSecret
	}
	return taintVal{bits: bits, deps: paramMask(pr.m.NArgs), hdeps: paramMask(pr.m.NArgs)}
}

func (pr *taintProblem) Direction() Direction { return Forward }

func (pr *taintProblem) Boundary() State {
	s := newTaintState(pr.m.NLocal, pr.m.NArgs, pr.info.nsites)
	for i := range s.orig {
		// Non-parameter locals start as the integer zero.
		s.orig[i] = taintOriginInt
	}
	for k := 0; k < pr.m.NArgs && k < pr.m.NLocal; k++ {
		s.orig[k] = int16(k)
		s.slots[k] = taintVal{deps: paramBit(k)}
	}
	if pr.info.inCatch {
		// Catch code runs with whatever frame state the violation left
		// behind, under violation-dependent control.
		all := pr.conservativeAll()
		for i := range s.slots {
			s.slots[i] = all
			s.orig[i] = originUnknown
		}
		for k := range s.hparam {
			s.hparam[k] = all
		}
	}
	return s
}

func (pr *taintProblem) Top() State {
	s := newTaintState(pr.m.NLocal, pr.m.NArgs, pr.info.nsites)
	for i := range s.orig {
		s.orig[i] = originTop
	}
	return s
}

func (pr *taintProblem) Transfer(b int, st State) {
	s := st.(*taintState)
	blk := pr.info.cfg.Blocks[b]
	for pc := blk.Start; pc < blk.End; pc++ {
		pr.step(s, pc)
	}
}

// src traces the stack value at depth (0 = top) just before code[pc] back
// to its producing pc within the block, or -1 (same algorithm as
// facts.go, shared via the cached jt array).
func (pr *taintProblem) src(pc, depth int) int {
	code := pr.info.cfg.Code
	want := depth
	for i := pc - 1; i >= 0; i-- {
		in := code[i]
		if in.Op.IsJump() || in.Op == jvm.OpReturn || in.Op == jvm.OpReturnVal {
			return -1
		}
		if pr.info.jt[i+1] {
			return -1
		}
		var pops, pushes int
		if in.Op == jvm.OpInvoke {
			if int(in.A) < 0 || int(in.A) >= len(pr.ta.prog.Methods) {
				return -1
			}
			callee := pr.ta.prog.Methods[in.A]
			pops = callee.NArgs
			if callee.ReturnsValue() {
				pushes = 1
			}
		} else {
			pops, pushes = in.Op.StackEffect()
		}
		if pushes > want {
			return i
		}
		want = want - pushes + pops
	}
	return -1
}

// valueTaint computes the symbolic taint of the stack value at depth just
// before pc.
func (pr *taintProblem) valueTaint(s *taintState, pc, depth int) taintVal {
	src := pr.src(pc, depth)
	if src < 0 {
		return pr.conservativeAll()
	}
	code := pr.info.cfg.Code
	in := code[src]
	switch in.Op {
	case jvm.OpConst, jvm.OpNew, jvm.OpInRegion:
		return taintVal{}
	case jvm.OpNewArray:
		// The reference itself is fresh; its observable length is folded
		// into the site bucket at allocation (step).
		return taintVal{}
	case jvm.OpLoad:
		if slot := int(in.A); slot < len(s.slots) {
			return s.slots[slot]
		}
		return pr.conservativeAll()
	case jvm.OpDup:
		return pr.valueTaint(s, src, 0)
	case jvm.OpGetStatic:
		return taintVal{bits: pr.ta.staticAt(in.A)}
	case jvm.OpGetField:
		obj := pr.valueTaint(s, src, 0)
		return obj.or(pr.bucketTaint(s, pr.valueOrigin(s, src, 0)))
	case jvm.OpALoad:
		idx := pr.valueTaint(s, src, 0)
		arr := pr.valueTaint(s, src, 1)
		return idx.or(arr).or(pr.bucketTaint(s, pr.valueOrigin(s, src, 1)))
	case jvm.OpArrayLen:
		arr := pr.valueTaint(s, src, 0)
		return arr.or(pr.bucketTaint(s, pr.valueOrigin(s, src, 0)))
	case jvm.OpInvoke:
		ci := int(in.A)
		if ci < 0 || ci >= len(pr.ta.prog.Methods) {
			return pr.conservativeAll()
		}
		return pr.substCallee(s, src, ci, pr.ta.ret[ci])
	default:
		pops, _ := in.Op.StackEffect()
		if pops > 0 && !in.Op.IsBarrier() {
			// Arithmetic/comparison: join the operands.
			var tv taintVal
			for d := 0; d < pops; d++ {
				tv = tv.or(pr.valueTaint(s, src, d))
			}
			return tv
		}
		return pr.conservativeAll()
	}
}

// valueOrigin classifies the stack value at depth just before pc: a
// parameter, a local allocation site, a definite int, or unknown (which
// conservatively means "possibly a reference to anything").
func (pr *taintProblem) valueOrigin(s *taintState, pc, depth int) int16 {
	src := pr.src(pc, depth)
	if src < 0 {
		return originUnknown
	}
	code := pr.info.cfg.Code
	in := code[src]
	switch in.Op {
	case jvm.OpLoad:
		if slot := int(in.A); slot < len(s.orig) {
			return s.orig[slot]
		}
		return originUnknown
	case jvm.OpNew, jvm.OpNewArray:
		if idx, ok := pr.info.sites[src]; ok {
			return siteOrigin(idx)
		}
		return originUnknown
	case jvm.OpDup:
		return pr.valueOrigin(s, src, 0)
	case jvm.OpConst, jvm.OpAdd, jvm.OpSub, jvm.OpMul, jvm.OpDiv, jvm.OpMod,
		jvm.OpNeg, jvm.OpCmpEQ, jvm.OpCmpNE, jvm.OpCmpLT, jvm.OpCmpLE,
		jvm.OpCmpGT, jvm.OpCmpGE, jvm.OpArrayLen, jvm.OpInRegion:
		return taintOriginInt
	default:
		// getfield/aload/getstatic/invoke results may be references.
		return originUnknown
	}
}

// bucketTaint returns the (symbolic) taint of the heap contents reachable
// from a value with the given origin.
func (pr *taintProblem) bucketTaint(s *taintState, origin int16) taintVal {
	switch {
	case origin >= 0:
		k := int(origin)
		tv := taintVal{hdeps: paramBit(k)}
		if k < len(s.hparam) {
			tv = tv.or(s.hparam[k])
		}
		return tv
	case origin <= taintOriginSiteBase:
		if idx := int(taintOriginSiteBase - origin); idx < len(s.sites) {
			return s.sites[idx]
		}
		return pr.conservativeAll()
	case origin == taintOriginInt:
		return taintVal{}
	default:
		return pr.conservativeAll()
	}
}

// heapTaint is the taint of the heap contents reachable from the stack
// value at depth just before pc, if it is a reference (zero for definite
// ints). Field/array-element reads return zero EXTRA taint: their source
// container's bucket is already folded into the value's taint, and a
// reference stored into a container folds its contents at store time
// (a snapshot heap model: field-insensitive, one level deep — mutating a
// nested reference after linking it is out of model, which the random
// generator and fixtures respect by keeping fields integer-valued).
func (pr *taintProblem) heapTaint(s *taintState, pc, depth int) taintVal {
	src := pr.src(pc, depth)
	if src < 0 {
		return pr.conservativeAll()
	}
	code := pr.info.cfg.Code
	in := code[src]
	switch in.Op {
	case jvm.OpConst, jvm.OpAdd, jvm.OpSub, jvm.OpMul, jvm.OpDiv, jvm.OpMod,
		jvm.OpNeg, jvm.OpCmpEQ, jvm.OpCmpNE, jvm.OpCmpLT, jvm.OpCmpLE,
		jvm.OpCmpGT, jvm.OpCmpGE, jvm.OpArrayLen, jvm.OpInRegion:
		return taintVal{}
	case jvm.OpLoad:
		if slot := int(in.A); slot < len(s.orig) {
			return pr.bucketTaint(s, s.orig[slot])
		}
		return pr.conservativeAll()
	case jvm.OpNew, jvm.OpNewArray:
		if idx, ok := pr.info.sites[src]; ok {
			return pr.bucketTaint(s, siteOrigin(idx))
		}
		return pr.conservativeAll()
	case jvm.OpDup:
		return pr.heapTaint(s, src, 0)
	case jvm.OpGetStatic:
		return taintVal{bits: pr.ta.staticAt(in.A)}
	case jvm.OpGetField, jvm.OpALoad:
		return taintVal{} // snapshot model: covered by the value's taint
	case jvm.OpInvoke:
		ci := int(in.A)
		if ci < 0 || ci >= len(pr.ta.prog.Methods) {
			return pr.conservativeAll()
		}
		return pr.substCallee(s, src, ci, pr.ta.retHeap[ci])
	default:
		return pr.conservativeAll()
	}
}

// storedTaint is the full taint that escapes when the value at depth is
// written somewhere observable: its value taint, the current control
// taint, and — when it is a reference — its heap contents.
func (pr *taintProblem) storedTaint(s *taintState, pc, depth int) taintVal {
	return pr.valueTaint(s, pc, depth).or(pr.info.pcT[pc]).or(pr.heapTaint(s, pc, depth))
}

// writeBucket records a heap write into the object designated by origin.
func (pr *taintProblem) writeBucket(s *taintState, origin int16, tv taintVal) {
	switch {
	case origin >= 0:
		if k := int(origin); k < len(s.hparam) {
			s.hparam[k] = s.hparam[k].or(tv)
		}
	case origin <= taintOriginSiteBase:
		if idx := int(taintOriginSiteBase - origin); idx < len(s.sites) {
			s.sites[idx] = s.sites[idx].or(tv)
		}
	case origin == taintOriginInt:
		// A write through an int would trap; nothing flows.
	default:
		// Unknown target: the write may land in any object in scope.
		for k := range s.hparam {
			s.hparam[k] = s.hparam[k].or(tv)
		}
		for i := range s.sites {
			s.sites[i] = s.sites[i].or(tv)
		}
	}
}

// step is the per-instruction transfer function (pure on the state; the
// global tables are updated by the replay in scan).
func (pr *taintProblem) step(s *taintState, pc int) {
	code := pr.info.cfg.Code
	in := code[pc]
	switch in.Op {
	case jvm.OpStore:
		d := int(in.A)
		if d >= len(s.slots) {
			return
		}
		s.slots[d] = pr.valueTaint(s, pc, 0).or(pr.info.pcT[pc])
		s.orig[d] = pr.valueOrigin(s, pc, 0)
	case jvm.OpNewArray:
		// The array's observable length derives from the popped length
		// operand; fold it into the site bucket.
		if idx, ok := pr.info.sites[pc]; ok && idx < len(s.sites) {
			tv := pr.valueTaint(s, pc, 0).or(pr.info.pcT[pc])
			s.sites[idx] = s.sites[idx].or(tv)
		}
	case jvm.OpPutField:
		tv := pr.storedTaint(s, pc, 0)
		pr.writeBucket(s, pr.valueOrigin(s, pc, 1), tv)
	case jvm.OpAStore:
		tv := pr.storedTaint(s, pc, 0).or(pr.valueTaint(s, pc, 1))
		pr.writeBucket(s, pr.valueOrigin(s, pc, 2), tv)
	case jvm.OpInvoke:
		ci := int(in.A)
		if ci < 0 || ci >= len(pr.ta.prog.Methods) {
			return
		}
		callee := pr.ta.prog.Methods[ci]
		for k := 0; k < callee.NArgs; k++ {
			ho := pr.ta.heapOut[ci][k]
			if ho.isZero() {
				continue
			}
			tv := pr.substCallee(s, pc, ci, ho).or(pr.info.pcT[pc])
			pr.writeBucket(s, pr.valueOrigin(s, pc, callee.NArgs-1-k), tv)
		}
	}
}

// substCallee maps a taint symbolic over callee ci's parameters to one
// symbolic over THIS method's parameters, using the argument expressions
// at the call site (pc is the OpInvoke).
func (pr *taintProblem) substCallee(s *taintState, pc, ci int, tv taintVal) taintVal {
	callee := pr.ta.prog.Methods[ci]
	res := taintVal{bits: tv.bits}
	for k := 0; k < callee.NArgs; k++ {
		d := callee.NArgs - 1 - k
		if tv.deps&paramBit(k) != 0 {
			res = res.or(pr.valueTaint(s, pc, d))
		}
		if tv.hdeps&paramBit(k) != 0 {
			res = res.or(pr.valueTaint(s, pc, d)).or(pr.heapTaint(s, pc, d))
		}
	}
	return res
}

// solveWithControl runs the intra-method solve to fixpoint, interleaved
// with the control-taint computation: branch-condition taint is smeared
// over the branch's control-dependent blocks, the problem re-solved, until
// the (finite, monotone) pcT assignment stabilizes.
func (pr *taintProblem) solveWithControl() []State {
	cd := controlDeps(pr.info.cfg)
	if pr.info.inCatch {
		// Whether catch code runs at all is violation-dependent.
		all := pr.conservativeAll()
		for pc := range pr.info.pcT {
			pr.info.pcT[pc] = pr.info.pcT[pc].or(all)
		}
	}
	var states []State
	for {
		states = Solve(pr.info.cfg, pr)
		changed := false
		for b, blk := range pr.info.cfg.Blocks {
			if blk.End <= blk.Start {
				continue
			}
			tpc := blk.End - 1
			op := pr.info.cfg.Code[tpc].Op
			if op != jvm.OpJmpIf && op != jvm.OpJmpIfNot {
				continue
			}
			cond := pr.valueTaint(pr.stateAt(states, tpc), tpc, 0)
			if cond.isZero() {
				continue
			}
			for _, db := range cd[b] {
				dblk := pr.info.cfg.Blocks[db]
				for pc := dblk.Start; pc < dblk.End; pc++ {
					if nv := pr.info.pcT[pc].or(cond); nv != pr.info.pcT[pc] {
						pr.info.pcT[pc] = nv
						changed = true
					}
				}
			}
		}
		if !changed {
			return states
		}
	}
}

// stateAt replays the transfer from pc's block entry up to (not
// including) pc.
func (pr *taintProblem) stateAt(states []State, pc int) *taintState {
	b := pr.info.cfg.BlockOf(pc)
	s := states[b].Clone().(*taintState)
	for i := pr.info.cfg.Blocks[b].Start; i < pc; i++ {
		pr.step(s, i)
	}
	return s
}

// controlDeps computes, per block, the blocks control-dependent on its
// terminal conditional branch: blocks reachable from a successor that do
// not postdominate the branch. Blocks that cannot reach an exit are
// treated as postdominated by nothing, which over-approximates dependence
// (conservative for a may-taint).
func controlDeps(g *CFG) [][]int {
	n := len(g.Blocks)
	cd := make([][]int, n)
	if n == 0 {
		return cd
	}
	// Which blocks can reach an exit (a block with no successors).
	canExit := make([]bool, n)
	var work []int
	for i, b := range g.Blocks {
		if len(b.Succs) == 0 {
			canExit[i] = true
			work = append(work, i)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range g.Blocks[b].Preds {
			if !canExit[p] {
				canExit[p] = true
				work = append(work, p)
			}
		}
	}
	// Postdominator sets by greatest fixpoint. Blocks that cannot reach
	// an exit are pinned to {self}: nothing is guaranteed to execute
	// after them.
	pdom := make([][]bool, n)
	for i := range pdom {
		pdom[i] = make([]bool, n)
		if len(g.Blocks[i].Succs) == 0 || !canExit[i] {
			pdom[i][i] = true
			continue
		}
		for j := range pdom[i] {
			pdom[i][j] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range pdom {
			if len(g.Blocks[i].Succs) == 0 || !canExit[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if !pdom[i][j] || j == i {
					continue
				}
				for _, s := range g.Blocks[i].Succs {
					if !pdom[s][j] {
						pdom[i][j] = false
						changed = true
						break
					}
				}
			}
		}
	}
	// reach[i]: forward closure over successors.
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		stack := []int{i}
		reach[i][i] = true
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Blocks[b].Succs {
				if !reach[i][s] {
					reach[i][s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	for i, b := range g.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for j := 0; j < n; j++ {
			fromSucc := false
			for _, s := range b.Succs {
				if reach[s][j] {
					fromSucc = true
					break
				}
			}
			if !fromSucc {
				continue
			}
			if pdom[i][j] && j != i {
				continue // j runs no matter which way the branch goes
			}
			cd[i] = append(cd[i], j)
		}
	}
	return cd
}

// Rule identifiers (stable; documented in cmd/laminar-vet help).
const (
	RuleRobustDeclass  = "robust-declassification"
	RuleTransparentEnd = "transparent-endorsement"
	RuleImplicitFanout = "implicit-flow-fanout"
)

// scan analyzes one code array to its intra-method fixpoint and replays
// it, joining into the global tables; when emit is non-nil it also
// reports findings.
func (ta *taintAnalysis) scan(mi int, info *methodInfo, emit func(pc int, rule, msg string)) {
	if info == nil {
		return
	}
	m := ta.prog.Methods[mi]
	pr := &taintProblem{ta: ta, m: m, mi: mi, info: info}
	states := pr.solveWithControl()
	cd := controlDeps(info.cfg)
	for b := range info.cfg.Blocks {
		blk := info.cfg.Blocks[b]
		s := states[b].Clone().(*taintState)
		for pc := blk.Start; pc < blk.End; pc++ {
			ta.visit(pr, s, b, pc, cd, emit)
			pr.step(s, pc)
		}
		// Writes into parameter objects made on this path escape to the
		// caller.
		for k := range s.hparam {
			ta.joinHeapOut(mi, k, s.hparam[k])
		}
	}
}

// visit performs the per-pc global-table updates and (optionally) the
// rule checks, given the state just before pc executes.
func (ta *taintAnalysis) visit(pr *taintProblem, s *taintState, b, pc int, cd [][]int, emit func(pc int, rule, msg string)) {
	mi := pr.mi
	info := pr.info
	code := info.cfg.Code
	in := code[pc]
	switch in.Op {
	case jvm.OpGetField, jvm.OpArrayLen:
		// Dereferences of parameter objects inside (or reachable into)
		// declass/endorse sites define the site's input data.
		ta.noteSiteRead(pr, s, pc, 0)
	case jvm.OpALoad:
		ta.noteSiteRead(pr, s, pc, 1)
	case jvm.OpReturnVal:
		ta.joinRet(mi, pr.valueTaint(s, pc, 0).or(info.pcT[pc]))
		ta.joinRetHeap(mi, pr.heapTaint(s, pc, 0).or(info.pcT[pc]))
	case jvm.OpPutField:
		// A write through a reference of unknown provenance may land in an
		// object reachable from a static (published earlier); fold it into
		// every slot readers could observe it through.
		if pr.valueOrigin(s, pc, 1) == originUnknown {
			ta.joinAllStatics(ta.resolve(mi, pr.storedTaint(s, pc, 0)))
		}
	case jvm.OpAStore:
		if pr.valueOrigin(s, pc, 2) == originUnknown {
			ta.joinAllStatics(ta.resolve(mi, pr.storedTaint(s, pc, 0).or(pr.valueTaint(s, pc, 1))))
		}
	case jvm.OpPutStatic:
		full := pr.storedTaint(s, pc, 0) // value + control + known heap contents
		vb := ta.resolve(mi, full)
		laundered := vb
		if ta.inDeclCtx[mi] {
			laundered &^= TaintSecret // sanctioned by the declassifier
		}
		if ta.inEndCtx[mi] {
			laundered &^= TaintLow // vouched for by the endorser
		}
		ta.joinStatic(in.A, laundered)
		if ta.inDeclCtx[mi] {
			ta.joinMask(&ta.declassIn[mi], full.deps|full.hdeps)
		}
		if ta.inEndCtx[mi] {
			ta.joinMask(&ta.endorseIn[mi], full.deps|full.hdeps)
		}
		if emit == nil {
			return
		}
		if ta.inDeclCtx[mi] && vb&TaintLow != 0 {
			emit(pc, RuleRobustDeclass,
				fmt.Sprintf("declassified publication to static slot %d depends on low-integrity data", in.A))
		}
		if ta.inEndCtx[mi] && vb&TaintSecret != 0 {
			emit(pc, RuleTransparentEnd,
				fmt.Sprintf("endorsed publication to static slot %d depends on secret data", in.A))
		}
		if !ta.inDeclCtx[mi] && !ta.inEndCtx[mi] {
			// Control taint is reported at the guarding branch
			// (implicit-flow-fanout there); here only the value itself
			// — except in catch blocks, where execution is itself a
			// violation-dependent channel.
			dataOnly := pr.valueTaint(s, pc, 0).or(pr.heapTaint(s, pc, 0))
			if info.inCatch {
				dataOnly = dataOnly.or(info.pcT[pc])
			}
			if ta.resolve(mi, dataOnly)&TaintSecret != 0 {
				emit(pc, RuleImplicitFanout,
					fmt.Sprintf("secret-derived value flows to public static slot %d outside any declassifier", in.A))
			}
		}
	case jvm.OpJmpIf, jvm.OpJmpIfNot:
		if emit == nil {
			return
		}
		if ta.inDeclCtx[mi] || ta.inEndCtx[mi] {
			// Inside a site's context, secret-guarded publications are the
			// site's business (robust/transparent rules cover the bad
			// cases via control taint on the publication itself).
			return
		}
		cond := ta.resolve(mi, pr.valueTaint(s, pc, 0))
		if cond&TaintSecret == 0 {
			return
		}
		// Does the branch select between distinguishable public effects?
		for _, db := range cd[b] {
			dblk := info.cfg.Blocks[db]
			for dpc := dblk.Start; dpc < dblk.End; dpc++ {
				din := code[dpc]
				pub := din.Op == jvm.OpPutStatic
				if din.Op == jvm.OpInvoke {
					if ci := int(din.A); ci >= 0 && ci < len(ta.hasPub) && ta.hasPub[ci] {
						pub = true
					}
				}
				if pub {
					emit(pc, RuleImplicitFanout,
						"branch on secret data selects between distinguishable public effects")
					return
				}
			}
		}
	case jvm.OpInvoke:
		ci := int(in.A)
		if ci < 0 || ci >= len(ta.prog.Methods) {
			return
		}
		callee := ta.prog.Methods[ci]
		pcT := info.pcT[pc]
		pcb := ta.resolve(mi, pcT)
		// Propagate entry taint and the site-input masks.
		for k := 0; k < callee.NArgs; k++ {
			d := callee.NArgs - 1 - k
			av := pr.valueTaint(s, pc, d)
			ah := pr.heapTaint(s, pc, d)
			// Entry taint is data-only: a call-site guard taints the
			// callee's EXECUTION, not its arguments, and is reported
			// here by the guard rules below.
			ta.joinEntry(ci, k, ta.resolve(mi, av), ta.resolve(mi, ah))
			if ta.declassIn[ci]&paramBit(k) != 0 {
				ta.joinMask(&ta.declassIn[mi], av.deps|av.hdeps|ah.deps|ah.hdeps)
			}
			if ta.endorseIn[ci]&paramBit(k) != 0 {
				ta.joinMask(&ta.endorseIn[mi], av.deps|av.hdeps|ah.deps|ah.hdeps)
			}
			if emit != nil {
				ab := ta.resolve(mi, av.or(ah))
				if ta.declassIn[ci]&paramBit(k) != 0 && ab&TaintLow != 0 {
					emit(pc, RuleRobustDeclass,
						fmt.Sprintf("low-integrity data flows into the declassification site reached via %s (argument %d)", callee.Name, k))
				}
				if ta.endorseIn[ci]&paramBit(k) != 0 && ab&TaintSecret != 0 {
					emit(pc, RuleTransparentEnd,
						fmt.Sprintf("secret data flows into the endorsement site reached via %s (argument %d)", callee.Name, k))
				}
			}
		}
		// A guarded call whose callee enters a site: the guard taints the
		// site's scope. Record the dependence for callers, then report.
		if ta.reachDecl[ci] {
			ta.joinMask(&ta.declassIn[mi], pcT.deps|pcT.hdeps)
		}
		if ta.reachEnd[ci] {
			ta.joinMask(&ta.endorseIn[mi], pcT.deps|pcT.hdeps)
		}
		if emit == nil {
			return
		}
		if pcb&TaintLow != 0 {
			switch {
			case ta.isDecl[ci]:
				emit(pc, RuleRobustDeclass,
					fmt.Sprintf("entry into declassifier %s is guarded by low-integrity data", callee.Name))
			case ta.reachDecl[ci]:
				emit(pc, RuleRobustDeclass,
					fmt.Sprintf("call to %s, which enters a declassifier, is guarded by low-integrity data", callee.Name))
			}
			if ta.inDeclCtx[mi] && ta.hasPub[ci] && !ta.isDecl[ci] && !ta.reachDecl[ci] {
				emit(pc, RuleRobustDeclass,
					fmt.Sprintf("publication inside a declassification context (call to %s) is guarded by low-integrity data", callee.Name))
			}
		}
		if pcb&TaintSecret != 0 {
			switch {
			case ta.isEnd[ci]:
				emit(pc, RuleTransparentEnd,
					fmt.Sprintf("entry into endorser %s is guarded by secret data", callee.Name))
			case ta.reachEnd[ci]:
				emit(pc, RuleTransparentEnd,
					fmt.Sprintf("call to %s, which enters an endorser, is guarded by secret data", callee.Name))
			}
			if ta.inEndCtx[mi] && ta.hasPub[ci] && !ta.isEnd[ci] && !ta.reachEnd[ci] {
				emit(pc, RuleTransparentEnd,
					fmt.Sprintf("publication inside an endorsement context (call to %s) is guarded by secret data", callee.Name))
			}
		}
	}
}

// noteSiteRead marks a dereference of a parameter object: inside a
// declass/endorse context that parameter's data is site input.
func (ta *taintAnalysis) noteSiteRead(pr *taintProblem, s *taintState, pc, depth int) {
	mi := pr.mi
	if !ta.inDeclCtx[mi] && !ta.inEndCtx[mi] {
		return
	}
	var mask uint32
	switch o := pr.valueOrigin(s, pc, depth); {
	case o >= 0:
		mask = paramBit(int(o))
	case o == originUnknown:
		mask = paramMask(pr.m.NArgs)
	default:
		return // fresh or int: not caller data
	}
	if ta.inDeclCtx[mi] {
		ta.joinMask(&ta.declassIn[mi], mask)
	}
	if ta.inEndCtx[mi] {
		ta.joinMask(&ta.endorseIn[mi], mask)
	}
}

// LintTaint runs the interprocedural taint analysis and reports
// robust-declassification, transparent-endorsement and
// implicit-flow-fanout findings. It is separate from Lint (whose rules
// are structural region-safety checks); laminar-vet runs both.
func LintTaint(p *jvm.Program) []Finding {
	ta := newTaintAnalysis(p)
	// Global fixpoint: iterate methods bottom-up (callee summaries first,
	// for fast convergence) until no table changes. The tables only grow
	// and all lattices are finite, so this terminates.
	for rounds := 0; ; rounds++ {
		ta.changed = false
		for _, scc := range ta.graph.SCCs {
			for _, mi := range scc {
				ta.scan(mi, ta.body[mi], nil)
				ta.scan(mi, ta.catch[mi], nil)
			}
		}
		if !ta.changed || rounds > 4*len(p.Methods)+64 {
			break
		}
	}
	var out []Finding
	seen := make(map[Finding]bool)
	for mi, m := range p.Methods {
		for _, part := range []*methodInfo{ta.body[mi], ta.catch[mi]} {
			if part == nil {
				continue
			}
			info := part
			ta.scan(mi, info, func(pc int, rule, msg string) {
				f := Finding{Method: m.Name, PC: pc, InCatch: info.inCatch, Rule: rule, Msg: msg}
				if !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		if out[i].InCatch != out[j].InCatch {
			return !out[i].InCatch
		}
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}
