package analysis

import (
	"fmt"

	"laminar/internal/jvm"
)

// Summary is one method's interprocedural contract, computed bottom-up
// over the call graph. Secure methods are opaque boundaries (checks inside
// run against the region's labels, not the caller's), so their summaries
// are empty and they receive no entry facts.
type Summary struct {
	// Ensures[k]: fact bits the method establishes for the object passed
	// as parameter k on every path to every normal return.
	Ensures []uint8
	// Return: fact bits carried by the return value on every path
	// (FactAll for factories returning fresh allocations).
	Return uint8
	// Statics: FactRead/FactWrite bits for checked static accesses the
	// method performs on every path to every normal return.
	Statics uint8
	// EntryChecked[k]: fact bits proven for argument k at every OpInvoke
	// site in the program (zero for host-only and secure methods).
	EntryChecked []uint8
	// BarrierFree: the compiler's own elimination pass keeps zero
	// access/static barrier sites even with conservative entry facts.
	BarrierFree bool
}

func (s *Summary) equal(o *Summary) bool {
	if o == nil || s.Return != o.Return || s.Statics != o.Statics || len(s.Ensures) != len(o.Ensures) {
		return false
	}
	for i := range s.Ensures {
		if s.Ensures[i] != o.Ensures[i] {
			return false
		}
	}
	return true
}

// Result is the output of Analyze: per-method summaries plus the call
// graph they were computed over, indexed by method table slot.
type Result struct {
	Prog      *jvm.Program
	Graph     *CallGraph
	Summaries []*Summary
}

type analyzer struct {
	prog  *jvm.Program
	graph *CallGraph
	sums  []*Summary
}

// summaryOf returns the (possibly still-iterating) summary for a method,
// or nil when no facts may be assumed. Secure methods hold an all-zero
// summary, so callers naturally learn nothing across a region boundary.
func (a *analyzer) summaryOf(mi int) *Summary {
	if mi < 0 || mi >= len(a.sums) {
		return nil
	}
	return a.sums[mi]
}

// Analyze verifies the program and computes summaries bottom-up over call
// graph SCCs: each component starts from the optimistic top summary and
// iterates its members to a greatest fixpoint (facts only shrink, so the
// iteration terminates). The fixpoint is sound by induction over completed
// sub-executions: a fact consumed from a callee summary concerns a call
// that returned normally, and only normal returns feed post-call code.
func Analyze(p *jvm.Program) (*Result, error) {
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("analysis: program does not verify: %w", err)
	}
	a := &analyzer{
		prog:  p,
		graph: BuildCallGraph(p),
		sums:  make([]*Summary, len(p.Methods)),
	}
	for mi, m := range p.Methods {
		if m.Secure != nil {
			a.sums[mi] = &Summary{Ensures: make([]uint8, m.NArgs)}
		}
	}
	for _, scc := range a.graph.SCCs {
		var members []int
		for _, mi := range scc {
			if p.Methods[mi].Secure == nil {
				members = append(members, mi)
				a.sums[mi] = topSummary(p.Methods[mi])
			}
		}
		for changed := true; changed; {
			changed = false
			for _, mi := range members {
				ns := a.summarize(mi)
				if !ns.equal(a.sums[mi]) {
					a.sums[mi] = ns
					changed = true
				}
			}
		}
	}
	a.entryChecked()
	return &Result{Prog: p, Graph: a.graph, Summaries: a.sums}, nil
}

// topSummary is the optimistic starting point for SCC iteration.
func topSummary(m *jvm.Method) *Summary {
	s := &Summary{Ensures: make([]uint8, m.NArgs), Statics: jvm.FactAll}
	for i := range s.Ensures {
		s.Ensures[i] = jvm.FactAll
	}
	if m.ReturnsValue() {
		s.Return = jvm.FactAll
	}
	return s
}

// summarize computes one method's summary from the current table: solve
// the checked-facts problem with no entry assumptions (summaries must hold
// for every caller, including the host), then meet the argument and
// static facts over all normal-return sites. A method with no normal
// return keeps the vacuous top (post-call code is unreachable).
func (a *analyzer) summarize(mi int) *Summary {
	m := a.prog.Methods[mi]
	pr := a.problemFor(m, m.Code, nil)
	states := Solve(pr.cfg, pr)

	out := topSummary(m)
	for bi, b := range pr.cfg.Blocks {
		last := pr.cfg.Code[b.End-1]
		if last.Op != jvm.OpReturn && last.Op != jvm.OpReturnVal {
			continue
		}
		s := states[bi].Clone().(*factState)
		for pc := b.Start; pc < b.End-1; pc++ {
			pr.step(s, pc)
		}
		for k := range out.Ensures {
			if k < len(s.args) {
				out.Ensures[k] &= s.args[k]
			} else {
				out.Ensures[k] = 0
			}
		}
		out.Statics &= s.stat
		if last.Op == jvm.OpReturnVal {
			bits, _, _ := pr.valueFacts(s, b.End-1, 0)
			out.Return &= bits
		}
	}
	return out
}

// entryChecked computes, for every non-secure method with at least one
// OpInvoke site, the facts proven for each argument at every site. Caller
// states are solved with no entry facts of their own — one conservative
// round, so a fact chain through a wrapper costs one extra kept barrier
// rather than a fixpoint over the whole program.
func (a *analyzer) entryChecked() {
	n := len(a.prog.Methods)
	entry := make([][]uint8, n)
	seen := make([]bool, n)
	for mi, m := range a.prog.Methods {
		entry[mi] = make([]uint8, m.NArgs)
		if m.Secure == nil {
			for k := range entry[mi] {
				entry[mi][k] = jvm.FactAll
			}
		}
	}
	collect := func(caller *jvm.Method, code []jvm.Instr) {
		pr := a.problemFor(caller, code, nil)
		states := Solve(pr.cfg, pr)
		for pc, in := range code {
			if in.Op != jvm.OpInvoke {
				continue
			}
			ci := int(in.A)
			if ci < 0 || ci >= n || a.prog.Methods[ci].Secure != nil {
				continue
			}
			callee := a.prog.Methods[ci]
			if callee.NArgs == 0 {
				seen[ci] = true
				continue
			}
			s := pr.stateAt(states, pc)
			for k := 0; k < callee.NArgs; k++ {
				bits, _, _ := pr.valueFacts(s, pc, callee.NArgs-1-k)
				entry[ci][k] &= bits
			}
			seen[ci] = true
		}
	}
	for _, m := range a.prog.Methods {
		collect(m, m.Code)
		if m.Secure != nil && m.Secure.Catch != nil {
			collect(m, m.Secure.Catch)
		}
	}
	for mi := range entry {
		if !seen[mi] {
			// Host-only entry: arguments never passed any barrier.
			for k := range entry[mi] {
				entry[mi][k] = 0
			}
		}
		a.sums[mi].EntryChecked = entry[mi]
	}
}

// Attach analyzes the program and attaches the results so compilation
// with CompileOptions.Interproc can consume them. Barrier-freedom is
// decided last, by the compiler's own elimination pass running over the
// just-attached summaries — the prover and the compiler cannot disagree.
func Attach(p *jvm.Program) (*Result, error) {
	r, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	n := len(p.Methods)
	ip := &jvm.InterprocResult{
		Ensures:       make([][]uint8, n),
		Return:        make([]uint8, n),
		EntryChecked:  make([][]uint8, n),
		EnsuresStatic: make([]uint8, n),
		BarrierFree:   make([]bool, n),
	}
	for mi, sum := range r.Summaries {
		ip.Ensures[mi] = sum.Ensures
		ip.Return[mi] = sum.Return
		ip.EntryChecked[mi] = sum.EntryChecked
		ip.EnsuresStatic[mi] = sum.Statics
	}
	p.SetInterproc(ip)
	for mi, m := range p.Methods {
		if p.RemainingBarriers(m, nil) == 0 {
			ip.BarrierFree[mi] = true
			r.Summaries[mi].BarrierFree = true
		}
	}
	return r, nil
}
