package analysis

// Direction selects the order facts flow through the CFG.
type Direction int

const (
	Forward  Direction = iota // facts flow from entry toward returns
	Backward                  // facts flow from returns toward entry
)

// State is one lattice element. The framework is agnostic about whether
// Merge is a meet (intersection, for must-facts like "checked on every
// path") or a join (union, for may-facts like "a return is reachable");
// the client picks by choosing Top and Merge consistently.
type State interface {
	Clone() State
	// Merge combines other into the receiver and reports whether the
	// receiver changed.
	Merge(other State) bool
	Equal(other State) bool
}

// Problem is a dataflow problem instance over one CFG.
type Problem interface {
	Direction() Direction
	// Boundary is the state at the entry block (Forward) or at every
	// exit block (Backward).
	Boundary() State
	// Top is the optimistic initial state for all other blocks.
	Top() State
	// Transfer mutates s through block b, in direction order.
	Transfer(b int, s State)
}

// Solve runs the worklist algorithm to fixpoint and returns the per-block
// input states: the state at block entry for Forward problems, at block
// exit for Backward ones. Blocks unreachable in the chosen direction keep
// Top.
func Solve(g *CFG, p Problem) []State {
	n := len(g.Blocks)
	in := make([]State, n)
	for i := range in {
		in[i] = p.Top()
	}
	backward := p.Direction() == Backward
	if backward {
		for i, b := range g.Blocks {
			if len(b.Succs) == 0 {
				in[i] = p.Boundary()
			}
		}
	} else if n > 0 {
		in[0] = p.Boundary()
	}

	// Worklist of block indices, seeded with every block so transfer
	// functions run at least once everywhere.
	work := make([]int, n)
	queued := make([]bool, n)
	for i := range work {
		work[i] = i
		queued[i] = true
	}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		out := in[bi].Clone()
		p.Transfer(bi, out)
		next := g.Blocks[bi].Succs
		if backward {
			next = g.Blocks[bi].Preds
		}
		for _, si := range next {
			if in[si].Merge(out) && !queued[si] {
				work = append(work, si)
				queued[si] = true
			}
		}
	}
	return in
}
