package analysis

import (
	"strings"
	"testing"

	"laminar/internal/jvm"
)

func mustParse(t *testing.T, src string) *jvm.Program {
	t.Helper()
	p, err := jvm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

func hasFinding(fs []Finding, method string, pc int, rule string) bool {
	for _, f := range fs {
		if f.Method == method && f.PC == pc && f.Rule == rule {
			return true
		}
	}
	return false
}

func rulesFired(fs []Finding) map[string]bool {
	m := make(map[string]bool)
	for _, f := range fs {
		m[f.Rule] = true
	}
	return m
}

// The evil router of SNIPPETS Snippet 2: no declassifier anywhere, yet
// the secret is copied into a public static purely through control flow.
func TestTaintEvilRouter(t *testing.T) {
	p := mustParse(t, `
statics 2
method main args=1 locals=1
    load 0
    jmpifnot zero
    const 1
    putstatic 1
    return
zero:
    const 0
    putstatic 1
    return
end
`)
	fs := LintTaint(p)
	if !hasFinding(fs, "main", 1, RuleImplicitFanout) {
		t.Fatalf("want implicit-flow-fanout at main@1, got %v", fs)
	}
}

// Direct flow: the secret itself published outside any declassifier.
func TestTaintDirectSecretPublish(t *testing.T) {
	p := mustParse(t, `
statics 2
method main args=1 locals=1
    load 0
    putstatic 1
    return
end
`)
	fs := LintTaint(p)
	if !hasFinding(fs, "main", 1, RuleImplicitFanout) {
		t.Fatalf("want implicit-flow-fanout at main@1, got %v", fs)
	}
}

// A declassifier whose entry is guarded by a low-integrity static: the
// robust-declassification invariant is violated at the call site.
func TestTaintDeclassEntryGuardedByLow(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=1 locals=2
    new 1
    store 1
    load 1
    load 0
    putfield 0
    getstatic 0
    jmpifnot skip
    load 1
    invoke publish
skip:
    return
end
secure method publish args=1 locals=1 minus=1
    load 0
    getfield 0
    putstatic 1
    return
end
`)
	fs := LintTaint(p)
	if !hasFinding(fs, "main", 8, RuleRobustDeclass) {
		t.Fatalf("want robust-declassification at main@8, got %v", fs)
	}
	if rulesFired(fs)[RuleImplicitFanout] {
		t.Fatalf("sanctioned declassification must not trip fanout: %v", fs)
	}
}

// Low-integrity DATA flowing into the declassified value: main mixes a
// static into the container the declassifier reads and publishes.
func TestTaintDeclassDataLowIntegrity(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=1 locals=2
    new 1
    store 1
    load 1
    getstatic 0
    putfield 0
    load 1
    invoke publish
    return
end
secure method publish args=1 locals=1 minus=1
    load 0
    getfield 0
    putstatic 1
    return
end
`)
	fs := LintTaint(p)
	// Reported both at the call site (data into the site via argument 0)
	// and inside the declassifier (tainted publication).
	if !hasFinding(fs, "main", 6, RuleRobustDeclass) {
		t.Fatalf("want robust-declassification at main@6, got %v", fs)
	}
	if !hasFinding(fs, "publish", 2, RuleRobustDeclass) {
		t.Fatalf("want robust-declassification at publish@2, got %v", fs)
	}
}

// An endorser whose entry is guarded by the secret: transparent
// endorsement violated at the call site.
func TestTaintEndorseGuardedBySecret(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=1 locals=2
    new 1
    store 1
    load 0
    jmpifnot skip
    load 1
    invoke stamp
skip:
    return
end
secure method stamp args=1 locals=1 integrity=2
    load 0
    const 1
    putfield 0
    return
catch:
    return
end
`)
	fs := LintTaint(p)
	if !hasFinding(fs, "main", 5, RuleTransparentEnd) {
		t.Fatalf("want transparent-endorsement at main@5, got %v", fs)
	}
}

// The guard rule must see through wrappers: main's branch guards a call
// to a plain helper that (unconditionally) enters the declassifier.
func TestTaintWrapperChainReportsAtCaller(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=1 locals=2
    new 1
    store 1
    load 1
    load 0
    putfield 0
    getstatic 0
    jmpifnot skip
    load 1
    invoke wrap
skip:
    return
end
method wrap args=1 locals=1
    load 0
    invoke publish
    return
end
secure method publish args=1 locals=1 minus=1
    load 0
    getfield 0
    putstatic 1
    return
end
`)
	fs := LintTaint(p)
	if !hasFinding(fs, "main", 8, RuleRobustDeclass) {
		t.Fatalf("want robust-declassification at main@8 (guarded call into wrapper), got %v", fs)
	}
}

// Laundering through statics: main stores the secret to a static; a
// helper reads it back and branches on it to select a publication.
func TestTaintSecretThroughStatics(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=1 locals=1
    load 0
    putstatic 2
    invoke relay
    return
end
method relay args=0 locals=0
    getstatic 2
    jmpifnot zero
    const 1
    putstatic 1
    return
zero:
    const 0
    putstatic 1
    return
end
`)
	fs := LintTaint(p)
	if !hasFinding(fs, "main", 1, RuleImplicitFanout) {
		t.Fatalf("want implicit-flow-fanout at main@1 (secret to static), got %v", fs)
	}
	if !hasFinding(fs, "relay", 1, RuleImplicitFanout) {
		t.Fatalf("want implicit-flow-fanout at relay@1 (branch on laundered secret), got %v", fs)
	}
}

// The sanctioned pipeline: secret flows only through an unconditional
// declassifier; no low-integrity influence anywhere. Zero findings.
func TestTaintCleanPipeline(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=1 locals=2
    new 1
    store 1
    load 1
    load 0
    putfield 0
    load 1
    invoke process
    return
end
secure method process args=1 locals=1 secrecy=1 minus=1
    load 0
    invoke publish
    return
catch:
    return
end
secure method publish args=1 locals=1 minus=1
    load 0
    getfield 0
    putstatic 1
    return
end
`)
	if fs := LintTaint(p); len(fs) != 0 {
		t.Fatalf("clean pipeline must lint clean, got %v", fs)
	}
}

// A program with no secret sources at all (main takes no arguments)
// must never trip the taint rules, however it shuffles statics.
func TestTaintNoSecretsNoFindings(t *testing.T) {
	p := mustParse(t, `
statics 3
method main args=0 locals=1
    getstatic 0
    jmpifnot zero
    const 1
    putstatic 1
    return
zero:
    getstatic 0
    putstatic 2
    return
end
`)
	if fs := LintTaint(p); len(fs) != 0 {
		t.Fatalf("no-secret program must lint clean, got %v", fs)
	}
}

// Existing positive corpus programs must stay clean under the taint
// rules too (none of them declare declassifiers/endorsers or take
// secret inputs). Guarded separately from TestPositiveCorpusLintClean so
// Lint keeps its original contract.
func TestTaintExistingLintCleanPrograms(t *testing.T) {
	p := mustParse(t, `
statics 1
method fill args=1 locals=1
    load 0
    const 21
    putfield 0
    return
end
secure method work args=1 locals=2 secrecy=1
    new 1
    store 1
    load 1
    invoke fill
    load 0
    getfield 0
    pop
    getstatic 0
    pop
    return
catch:
    return
end
method main args=0 locals=1
    new 1
    store 0
    load 0
    invoke work
    return
end
`)
	if fs := LintTaint(p); len(fs) != 0 {
		t.Fatalf("secret-free region program must lint clean, got %v", fs)
	}
}

// Satellite: Finding.String must render the .catch marker and the rule
// consistently for every PC/InCatch combination, including method-level
// findings (PC == -1) inside catch blocks.
func TestFindingStringCatchMarker(t *testing.T) {
	cases := []struct {
		f    Finding
		want string
	}{
		{Finding{Method: "m", PC: 3, Rule: "r", Msg: "x"}, "m@3: [r] x"},
		{Finding{Method: "m", PC: -1, Rule: "r", Msg: "x"}, "m: [r] x"},
		{Finding{Method: "m", PC: 3, InCatch: true, Rule: "r", Msg: "x"}, "m.catch@3: [r] x"},
		{Finding{Method: "m", PC: -1, InCatch: true, Rule: "r", Msg: "x"}, "m.catch: [r] x"},
		{Finding{Method: "m", PC: -1, InCatch: true, Advisory: true, Rule: "r", Msg: "x"}, "m.catch: [r] (advisory) x"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Finding.String() = %q, want %q", got, c.want)
		}
		if c.f.InCatch && !strings.Contains(c.f.String(), ".catch") {
			t.Errorf("catch finding %+v lost its .catch marker: %q", c.f, c.f.String())
		}
	}
}
