// Package jvm implements MiniJVM: a small stack-based bytecode virtual
// machine that stands in for the modified Jikes RVM of Laminar (§5.1, Roy
// et al., PLDI 2009). It exists so the paper's *compiler-level* mechanisms
// can be reproduced faithfully in Go:
//
//   - a baseline compiler that inserts read/write/alloc barriers at every
//     heap access, in three configurations (none / static / dynamic);
//   - method cloning for code reachable both inside and outside security
//     regions, plus the paper prototype's first-execution-context mode;
//   - an intraprocedural, flow-sensitive redundant-barrier-elimination
//     pass ("a barrier is redundant if the object has been read (written),
//     or was allocated, along every incoming path");
//   - a bytecode verifier enforcing the security-region restrictions on
//     local variables and return values.
//
// Security regions are methods (the prototype restriction of §5.1):
// invoking a method marked secure enters a region with the method's
// credentials and leaves it on return; a DIFC violation transfers to the
// method's catch code with region labels in force, and falls through.
package jvm

import "fmt"

// Op is a MiniJVM opcode.
type Op uint8

// The instruction set. Operand meanings are given per opcode; A and B are
// the instruction's immediate operands.
const (
	OpNop Op = iota

	// Stack and locals.
	OpConst // push A
	OpLoad  // push locals[A]
	OpStore // locals[A] = pop
	OpPop   // discard top
	OpDup   // duplicate top

	// Arithmetic and comparison (operate on ints; push int results,
	// comparisons push 0/1).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Control flow. Targets are absolute instruction indices.
	OpJmp      // jump A
	OpJmpIf    // pop; jump A if != 0
	OpJmpIfNot // pop; jump A if == 0

	// Heap. Objects have A field slots; arrays are separate objects.
	OpNew       // push new object with A field slots
	OpNewArray  // pop length; push new array
	OpGetField  // pop obj; push obj.fields[A]
	OpPutField  // pop value, pop obj; obj.fields[A] = value
	OpALoad     // pop idx, pop arr; push arr[idx]
	OpAStore    // pop value, pop idx, pop arr; arr[idx] = value
	OpArrayLen  // pop arr; push len
	OpGetStatic // push statics[A]
	OpPutStatic // statics[A] = pop

	// Calls. A = method index in the program's method table. Arguments
	// are popped (last argument on top); a value-returning callee pushes
	// its result.
	OpInvoke
	OpReturn    // return void
	OpReturnVal // return pop

	// Security barriers, inserted by the compiler — never written by
	// programs (the verifier rejects them in source code). A = stack
	// depth of the object operand (0 = top). They check and leave the
	// stack unchanged.
	OpBarrierRead    // in-region read barrier
	OpBarrierWrite   // in-region write barrier
	OpBarrierOutR    // outside-region read barrier (object must be unlabeled)
	OpBarrierOutW    // outside-region write barrier
	OpBarrierAlloc   // follows OpNew/OpNewArray: labels the fresh object (top) with region labels
	OpBarrierStaticR // static-variable read check (no integrity labels in region)
	OpBarrierStaticW // static-variable write check (no secrecy labels in region)
	OpBarrierSelR    // dynamic read barrier: pops the OpInRegion flag, selects in/out check
	OpBarrierSelW    // dynamic write barrier: pops the OpInRegion flag, selects in/out check

	// Dynamic-barrier support: pushes 1 if the thread is inside a
	// security region. Compiler-only.
	OpInRegion
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpLoad: "load", OpStore: "store",
	OpPop: "pop", OpDup: "dup",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg:   "neg",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpJmp: "jmp", OpJmpIf: "jmpif", OpJmpIfNot: "jmpifnot",
	OpNew: "new", OpNewArray: "newarray",
	OpGetField: "getfield", OpPutField: "putfield",
	OpALoad: "aload", OpAStore: "astore", OpArrayLen: "arraylen",
	OpGetStatic: "getstatic", OpPutStatic: "putstatic",
	OpInvoke: "invoke", OpReturn: "return", OpReturnVal: "returnval",
	OpBarrierRead: "barrier.r", OpBarrierWrite: "barrier.w",
	OpBarrierOutR: "barrier.or", OpBarrierOutW: "barrier.ow",
	OpBarrierAlloc:   "barrier.alloc",
	OpBarrierStaticR: "barrier.sr", OpBarrierStaticW: "barrier.sw",
	OpBarrierSelR: "barrier.selr", OpBarrierSelW: "barrier.selw",
	OpInRegion: "inregion",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instr is one MiniJVM instruction.
type Instr struct {
	Op Op
	A  int32
}

// String renders the instruction.
func (i Instr) String() string { return fmt.Sprintf("%s %d", i.Op, i.A) }

// isBarrier reports whether the opcode is compiler-inserted.
func (o Op) isBarrier() bool {
	switch o {
	case OpBarrierRead, OpBarrierWrite, OpBarrierOutR, OpBarrierOutW,
		OpBarrierAlloc, OpBarrierStaticR, OpBarrierStaticW,
		OpBarrierSelR, OpBarrierSelW, OpInRegion:
		return true
	}
	return false
}

// isJump reports whether the opcode has a branch target in A.
func (o Op) isJump() bool {
	return o == OpJmp || o == OpJmpIf || o == OpJmpIfNot
}
