package jvm

import (
	"fmt"

	"laminar/internal/difc"
)

// Value is a MiniJVM stack slot: an integer or an object reference. The
// zero value is the integer 0.
type Value struct {
	ref *Obj
	i   int64
}

// IntV boxes an integer.
func IntV(i int64) Value { return Value{i: i} }

// RefV boxes an object reference.
func RefV(o *Obj) Value { return Value{ref: o} }

// IsRef reports whether the value is an object reference.
func (v Value) IsRef() bool { return v.ref != nil }

// Int returns the integer payload (0 for references).
func (v Value) Int() int64 { return v.i }

// Ref returns the reference payload (nil for integers).
func (v Value) Ref() *Obj { return v.ref }

// Obj is a MiniJVM heap object: field slots or an array part, plus the
// immutable label words the Laminar allocator adds to the header (§5.1:
// "two words to each object's header, which point to secrecy and
// integrity labels").
type Obj struct {
	fields  []Value
	elems   []Value
	labels  difc.Labels
	labeled bool
}

// Labels returns the object's label pair.
func (o *Obj) Labels() difc.Labels { return o.labels }

// IsLabeled reports whether the object is in the labeled object space.
func (o *Obj) IsLabeled() bool { return o.labeled }

// Field reads a field slot without barriers (host/test access).
func (o *Obj) Field(i int) Value { return o.fields[i] }

// SetField writes a field slot without barriers (host/test access).
func (o *Obj) SetField(i int, v Value) { o.fields[i] = v }

// Elem reads an array slot without barriers (host/test access).
func (o *Obj) Elem(i int) Value { return o.elems[i] }

// Len returns the array length.
func (o *Obj) Len() int { return len(o.elems) }

// SecureInfo marks a method as a security region and carries its
// credentials. The prototype restriction of §5.1 applies: a security
// region is its own method.
type SecureInfo struct {
	// Labels and Caps are the region's credentials, fixed when the
	// program is assembled (workload setup allocates tags first).
	Labels difc.Labels
	Caps   difc.CapSet
	// Catch is the catch block's code. It runs with the region's labels
	// when the body raises; it must end in OpReturn. Nil means an empty
	// catch block.
	Catch []Instr
}

// Method is a MiniJVM method.
type Method struct {
	Name   string
	NArgs  int
	NLocal int // total local slots, including args
	Code   []Instr
	Secure *SecureInfo

	// compiled variants, filled by the compiler.
	variants     [2]*compiledMethod // [outside, inside]
	hostVariants [2]*compiledMethod // interproc: conservative host-entry variants
	firstUse     *compiledMethod    // prototype first-execution-context mode
	index        int
	maxStack     int // computed by Verify
}

// Index returns the method's slot in the program table.
func (m *Method) Index() int { return m.index }

// Program is a compiled unit: a method table plus a statics table size.
type Program struct {
	Methods  []*Method
	NStatics int

	byName   map[string]*Method
	verified bool
	// verifiedFP fingerprints the method table at Verify time. Verify is
	// memoized; mutating a verified program's methods in place breaks the
	// memoization contract and is detected by re-fingerprinting (the
	// fingerprint is a single linear scan, far cheaper than abstract
	// interpretation).
	verifiedFP uint64
	// interproc holds whole-program analysis results (SetInterproc).
	interproc *InterprocResult
}

// NewProgram creates an empty program with n static slots.
func NewProgram(nStatics int) *Program {
	return &Program{NStatics: nStatics, byName: make(map[string]*Method)}
}

// Add registers a method and returns it.
func (p *Program) Add(m *Method) *Method {
	m.index = len(p.Methods)
	p.Methods = append(p.Methods, m)
	p.byName[m.Name] = m
	p.verified = false
	return m
}

// fingerprint hashes the structural content of the program's methods
// (FNV-1a over names, arities, code and catch code). It detects in-place
// mutation of a verified program; see Verify.
func (p *Program) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mixCode := func(code []Instr) {
		mix(uint64(len(code)))
		for _, in := range code {
			mix(uint64(in.Op))
			mix(uint64(uint32(in.A)))
		}
	}
	mix(uint64(p.NStatics))
	mix(uint64(len(p.Methods)))
	for _, m := range p.Methods {
		for _, c := range m.Name {
			mix(uint64(c))
		}
		mix(uint64(m.NArgs))
		mix(uint64(m.NLocal))
		mixCode(m.Code)
		if m.Secure != nil {
			mix(1)
			mixCode(m.Secure.Catch)
		} else {
			mix(0)
		}
	}
	return h
}

// Lookup finds a method by name.
func (p *Program) Lookup(name string) (*Method, error) {
	m, ok := p.byName[name]
	if !ok {
		return nil, fmt.Errorf("jvm: no method %q", name)
	}
	return m, nil
}

// --- assembler ---

// Asm builds a method's code with symbolic labels, so workloads and tests
// don't hand-compute branch targets.
type Asm struct {
	code   []Instr
	labels map[string]int32
	refs   []labelRef
	err    error
}

type labelRef struct {
	pc    int
	label string
}

// NewAsm creates an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int32)}
}

// Emit appends a raw instruction.
func (a *Asm) Emit(op Op, operand int32) *Asm {
	if op.isBarrier() {
		a.err = fmt.Errorf("jvm: asm: barrier opcode %v in source", op)
	}
	a.code = append(a.code, Instr{Op: op, A: operand})
	return a
}

// Op appends an operand-less instruction.
func (a *Asm) Op(op Op) *Asm { return a.Emit(op, 0) }

// Const pushes an integer.
func (a *Asm) Const(v int64) *Asm { return a.Emit(OpConst, int32(v)) }

// Load pushes a local.
func (a *Asm) Load(slot int) *Asm { return a.Emit(OpLoad, int32(slot)) }

// Store pops into a local.
func (a *Asm) Store(slot int) *Asm { return a.Emit(OpStore, int32(slot)) }

// New allocates an object with n field slots.
func (a *Asm) New(nFields int) *Asm { return a.Emit(OpNew, int32(nFields)) }

// GetField reads field slot f of the popped object.
func (a *Asm) GetField(f int) *Asm { return a.Emit(OpGetField, int32(f)) }

// PutField writes field slot f.
func (a *Asm) PutField(f int) *Asm { return a.Emit(OpPutField, int32(f)) }

// Invoke calls method m.
func (a *Asm) Invoke(m *Method) *Asm { return a.Emit(OpInvoke, int32(m.index)) }

// Label defines a branch target at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.err = fmt.Errorf("jvm: asm: duplicate label %q", name)
	}
	a.labels[name] = int32(len(a.code))
	return a
}

// Jmp, JmpIf and JmpIfNot branch to a label.
func (a *Asm) Jmp(label string) *Asm      { return a.jump(OpJmp, label) }
func (a *Asm) JmpIf(label string) *Asm    { return a.jump(OpJmpIf, label) }
func (a *Asm) JmpIfNot(label string) *Asm { return a.jump(OpJmpIfNot, label) }

func (a *Asm) jump(op Op, label string) *Asm {
	a.refs = append(a.refs, labelRef{pc: len(a.code), label: label})
	a.code = append(a.code, Instr{Op: op})
	return a
}

// Build resolves labels and returns the code.
func (a *Asm) Build() ([]Instr, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, r := range a.refs {
		target, ok := a.labels[r.label]
		if !ok {
			return nil, fmt.Errorf("jvm: asm: undefined label %q", r.label)
		}
		a.code[r.pc].A = target
	}
	return a.code, nil
}

// MustBuild is Build for tests and workload constructors that control
// their own source.
func (a *Asm) MustBuild() []Instr {
	code, err := a.Build()
	if err != nil {
		panic(err)
	}
	return code
}
