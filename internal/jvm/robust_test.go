package jvm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestInstructionBudget(t *testing.T) {
	src := `
method spin args=0 locals=0
loop:
    jmp loop
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMachine(p, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mc.MaxInstructions = 10000
	_, err = mc.Call(mc.NewThread(), "spin")
	var te *TrapError
	if !errors.As(err, &te) || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("spin = %v, want budget trap", err)
	}
	// The budget resets per Call.
	p2, _ := Parse("method ok args=0 locals=0\n const 1\n returnval\nend")
	mc2, _ := NewMachine(p2, CompileOptions{})
	mc2.MaxInstructions = 100
	for i := 0; i < 5; i++ {
		if _, err := mc2.Call(mc2.NewThread(), "ok"); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestRandomProgramsNeverCrashTheVM generates random instruction
// sequences. Each either fails verification or — if it verifies — runs to
// completion, traps cleanly, or exhausts its budget. Nothing may escape
// as a raw panic, in any barrier mode.
func TestRandomProgramsNeverCrashTheVM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sourceOps := []Op{
		OpNop, OpConst, OpLoad, OpStore, OpPop, OpDup,
		OpAdd, OpSub, OpMul, OpDiv, OpMod, OpNeg,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE,
		OpJmp, OpJmpIf, OpJmpIfNot,
		OpNew, OpNewArray, OpGetField, OpPutField,
		OpALoad, OpAStore, OpArrayLen,
		OpGetStatic, OpPutStatic,
		OpReturn, OpReturnVal,
	}
	verified, rejected := 0, 0
	for trial := 0; trial < 500; trial++ {
		n := 4 + rng.Intn(24)
		code := make([]Instr, n)
		for i := range code {
			op := sourceOps[rng.Intn(len(sourceOps))]
			var a int32
			switch op {
			case OpConst:
				a = int32(rng.Intn(7)) - 3
			case OpLoad, OpStore:
				a = int32(rng.Intn(4))
			case OpJmp, OpJmpIf, OpJmpIfNot:
				a = int32(rng.Intn(n))
			case OpNew:
				a = int32(rng.Intn(3))
			case OpGetField, OpPutField:
				a = int32(rng.Intn(2))
			case OpGetStatic, OpPutStatic:
				a = int32(rng.Intn(2))
			}
			code[i] = Instr{Op: op, A: a}
		}
		// Guarantee a terminal exists somewhere.
		code[n-1] = Instr{Op: OpReturn}

		p := NewProgram(2)
		p.Add(&Method{Name: "m", NArgs: 0, NLocal: 4, Code: code})
		if err := p.Verify(); err != nil {
			rejected++
			continue
		}
		verified++
		for _, mode := range []BarrierMode{BarrierNone, BarrierStatic, BarrierDynamic} {
			p.ResetCompilation()
			func() {
				defer func() {
					if e := recover(); e != nil {
						t.Fatalf("trial %d mode %v: raw panic %v\n%s", trial, mode, e, Disassemble(code))
					}
				}()
				mc, err := NewMachine(p, CompileOptions{Mode: mode, Optimize: trial%2 == 0})
				if err != nil {
					t.Fatalf("trial %d: NewMachine after successful Verify: %v", trial, err)
				}
				mc.MaxInstructions = 50000
				// The call may trap (null deref, div-by-zero, array
				// bounds, budget) — any *error* is acceptable; a panic
				// is not. Array bounds panics from Go slices must be
				// caught by the interpreter as traps... the interpreter
				// lets Go's bounds check panic; harden below if needed.
				_, _ = mc.Call(mc.NewThread(), "m")
			}()
		}
	}
	if verified == 0 {
		t.Error("no random program verified; generator too hostile")
	}
	if rejected == 0 {
		t.Error("no random program rejected; verifier too lax")
	}
	t.Logf("verified=%d rejected=%d", verified, rejected)
}
