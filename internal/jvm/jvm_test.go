package jvm

import (
	"errors"
	"strings"
	"testing"

	"laminar/internal/difc"
)

// buildProg assembles a program with helper methods used across tests.
func method(name string, nargs, nlocal int, secure *SecureInfo, code []Instr) *Method {
	return &Method{Name: name, NArgs: nargs, NLocal: nlocal, Code: code, Secure: secure}
}

func run(t *testing.T, p *Program, opts CompileOptions, name string, args ...Value) Value {
	t.Helper()
	mc, err := NewMachine(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), name, args...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAsmLabels(t *testing.T) {
	a := NewAsm()
	a.Const(3).Store(0).
		Label("loop").
		Load(0).Const(0).Op(OpCmpLE).JmpIf("done").
		Load(0).Const(1).Op(OpSub).Store(0).
		Jmp("loop").
		Label("done").
		Load(0).Op(OpReturnVal)
	code, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram(0)
	p.Add(method("countdown", 0, 1, nil, code))
	if got := run(t, p, CompileOptions{}, "countdown"); got.Int() != 0 {
		t.Errorf("countdown = %d", got.Int())
	}
}

func TestAsmErrors(t *testing.T) {
	if _, err := NewAsm().Jmp("nowhere").Build(); err == nil {
		t.Error("undefined label accepted")
	}
	a := NewAsm().Label("x").Label("x")
	if _, err := a.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewAsm().Emit(OpBarrierRead, 0).Build(); err == nil {
		t.Error("barrier opcode in source accepted")
	}
}

func TestArithmetic(t *testing.T) {
	// f(a,b) = (a+b)*(a-b) % 7 with some negs thrown in
	code := NewAsm().
		Load(0).Load(1).Op(OpAdd).
		Load(0).Load(1).Op(OpSub).
		Op(OpMul).Const(7).Op(OpMod).Op(OpNeg).Op(OpNeg).
		Op(OpReturnVal).MustBuild()
	p := NewProgram(0)
	p.Add(method("f", 2, 2, nil, code))
	got := run(t, p, CompileOptions{}, "f", IntV(10), IntV(4))
	if got.Int() != (10+4)*(10-4)%7 {
		t.Errorf("f = %d", got.Int())
	}
}

func TestFibonacciRecursive(t *testing.T) {
	p := NewProgram(0)
	fib := &Method{Name: "fib", NArgs: 1, NLocal: 1}
	p.Add(fib)
	fib.Code = NewAsm().
		Load(0).Const(2).Op(OpCmpLT).JmpIf("base").
		Load(0).Const(1).Op(OpSub).Invoke(fib).
		Load(0).Const(2).Op(OpSub).Invoke(fib).
		Op(OpAdd).Op(OpReturnVal).
		Label("base").Load(0).Op(OpReturnVal).MustBuild()
	if got := run(t, p, CompileOptions{}, "fib", IntV(10)); got.Int() != 55 {
		t.Errorf("fib(10) = %d", got.Int())
	}
}

func TestObjectsAndArrays(t *testing.T) {
	// Build a 5-element array, fill with squares, sum via object field.
	code := NewAsm().
		Const(5).Emit(OpNewArray, 0).Store(0).
		Const(0).Store(1). // i
		Label("loop").
		Load(1).Const(5).Op(OpCmpGE).JmpIf("sum").
		Load(0).Load(1).Load(1).Load(1).Op(OpMul).Op(OpAStore).
		Load(1).Const(1).Op(OpAdd).Store(1).
		Jmp("loop").
		Label("sum").
		New(1).Store(2). // acc object with one field
		Const(0).Store(1).
		Label("loop2").
		Load(1).Const(5).Op(OpCmpGE).JmpIf("done").
		Load(2).
		Load(2).GetField(0).
		Load(0).Load(1).Op(OpALoad).
		Op(OpAdd).PutField(0).
		Load(1).Const(1).Op(OpAdd).Store(1).
		Jmp("loop2").
		Label("done").
		Load(2).GetField(0).Op(OpReturnVal).MustBuild()
	p := NewProgram(0)
	p.Add(method("squares", 0, 3, nil, code))
	want := int64(0 + 1 + 4 + 9 + 16)
	for _, mode := range []BarrierMode{BarrierNone, BarrierStatic, BarrierDynamic} {
		p.ResetCompilation()
		if got := run(t, p, CompileOptions{Mode: mode}, "squares"); got.Int() != want {
			t.Errorf("mode %v: squares = %d, want %d", mode, got.Int(), want)
		}
		p.ResetCompilation()
		if got := run(t, p, CompileOptions{Mode: mode, Optimize: true}, "squares"); got.Int() != want {
			t.Errorf("mode %v optimized: squares = %d, want %d", mode, got.Int(), want)
		}
	}
}

func TestStatics(t *testing.T) {
	code := NewAsm().
		Emit(OpGetStatic, 0).Const(1).Op(OpAdd).Emit(OpPutStatic, 0).
		Emit(OpGetStatic, 0).Op(OpReturnVal).MustBuild()
	p := NewProgram(1)
	p.Add(method("inc", 0, 0, nil, code))
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	th := mc.NewThread()
	for i := 1; i <= 3; i++ {
		v, err := mc.Call(th, "inc")
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != int64(i) {
			t.Errorf("inc #%d = %d", i, v.Int())
		}
	}
}

func TestArrayLenAndDup(t *testing.T) {
	code := NewAsm().
		Const(7).Emit(OpNewArray, 0).
		Op(OpDup).Op(OpArrayLen).
		Op(OpReturnVal).MustBuild()
	p := NewProgram(0)
	p.Add(method("len", 0, 0, nil, code))
	if got := run(t, p, CompileOptions{Mode: BarrierStatic}, "len"); got.Int() != 7 {
		t.Errorf("len = %d", got.Int())
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
		want string
	}{
		{"div zero", NewAsm().Const(1).Const(0).Op(OpDiv).Op(OpReturnVal).MustBuild(), "division by zero"},
		{"mod zero", NewAsm().Const(1).Const(0).Op(OpMod).Op(OpReturnVal).MustBuild(), "division by zero"},
		{"neg array", NewAsm().Const(-1).Emit(OpNewArray, 0).Op(OpPop).Op(OpReturn).MustBuild(), "negative array length"},
		{"null deref", NewAsm().Const(0).GetField(0).Op(OpReturnVal).MustBuild(), "dereference"},
	}
	for _, c := range cases {
		p := NewProgram(0)
		p.Add(method("m", 0, 0, nil, c.code))
		mc, err := NewMachine(p, CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		_, err = mc.Call(mc.NewThread(), "m")
		var te *TrapError
		if !errors.As(err, &te) || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// secureProgram builds the canonical test program: a secure method that
// allocates a labeled object, stores it to a static... no — statics in
// secrecy regions are forbidden; it returns it via an unlabeled box object
// passed as a parameter is also a write-down... The canonical shape: the
// secure method writes labeled data into a labeled object reachable from
// the parameter? For tests we mostly need: allocate labeled object inside
// region, observe that outside access traps.
func secureProgram(tag difc.Tag) (*Program, *Method, *Method) {
	p := NewProgram(1)
	labels := difc.Labels{S: difc.NewLabel(tag)}

	// fill(box): box.f0 = new labeled obj with field 42.
	fill := &Method{
		Name: "fill", NArgs: 1, NLocal: 2,
		Secure: &SecureInfo{Labels: labels, Caps: difc.EmptyCapSet},
	}
	p.Add(fill)
	fill.Code = NewAsm().
		New(1).Store(1).
		Load(1).Const(42).PutField(0).
		Load(0).Load(1).PutField(0). // box.f0 = secret (write barrier: box unlabeled!)
		Op(OpReturn).MustBuild()

	// main: box = new; fill(box); x = box.f0; return x.f0 (traps outside).
	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(fill).
		Load(0).GetField(0).
		GetField(0).
		Op(OpReturnVal).MustBuild()
	return p, fill, main
}

func TestSecureRegionViolationAndCatch(t *testing.T) {
	tag := difc.Tag(1)
	p, fill, _ := secureProgram(tag)
	// fill writes a labeled reference into the unlabeled box: the write
	// barrier must trap, transfer to catch, and suppress.
	caught := NewAsm().Const(1).Emit(OpPutStatic, 0).Op(OpReturn)
	// Catch writes a static -- but the region has secrecy labels, so THAT
	// also traps and is suppressed. Use a field write on the box instead?
	// that's the same violation. An empty catch suffices here.
	_ = caught
	fill.Secure.Catch = NewAsm().Op(OpReturn).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	th := mc.NewThread()
	// main then reads box.f0 (never assigned => null) and traps on null
	// deref outside a region.
	_, err = mc.Call(th, "main")
	if err == nil {
		t.Fatal("main should trap on null deref after suppressed violation")
	}
	if mc.Stats().Violations != 1 {
		t.Errorf("violations = %d, want 1", mc.Stats().Violations)
	}
	if mc.Stats().RegionsEntered != 1 {
		t.Errorf("regions = %d", mc.Stats().RegionsEntered)
	}
}

func TestSecureRegionLabeledAllocAndOutsideAccess(t *testing.T) {
	tag := difc.Tag(1)
	p := NewProgram(0)
	labels := difc.Labels{S: difc.NewLabel(tag)}
	// leak(box): box has field 0; store labeled object into labeled slot
	// is illegal; instead the secure method reads its own labeled object
	// legally, then main tries to touch it from outside via the box...
	// Simplest legal flow: the secure method allocates a labeled array
	// and stores it in a LABELED box created by the same region.
	mk := &Method{Name: "mk", NArgs: 1, NLocal: 2, Secure: &SecureInfo{Labels: labels}}
	p.Add(mk)
	// box is labeled (created by caller? caller is outside...). Let the
	// secure region allocate and return through... regions return void.
	// Use the parameter as an unlabeled holder of an int result obtained
	// legally: region reads labeled obj, but writing to unlabeled box is
	// illegal. So: region just allocates labeled obj and touches it; the
	// violation-free path.
	mk.Code = NewAsm().
		New(1).Store(1).
		Load(1).Const(7).PutField(0).
		Load(1).GetField(0).Op(OpPop).
		Op(OpReturn).MustBuild()
	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(mk).
		Const(0).Op(OpReturnVal).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 0 {
		t.Fatalf("main = %v, %v", v, err)
	}
	if mc.Stats().BarrierChecks == 0 {
		t.Error("no barrier checks recorded")
	}
}

func TestBarrierNoneHasNoChecks(t *testing.T) {
	tag := difc.Tag(1)
	p, _, _ := secureProgram(tag)
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierNone})
	if err != nil {
		t.Fatal(err)
	}
	// Unmodified VM: the "leak" just works and main returns 42.
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 42 {
		t.Fatalf("main = %v, %v", v, err)
	}
	if mc.Stats().BarrierChecks != 0 {
		t.Errorf("barrier checks in none mode = %d", mc.Stats().BarrierChecks)
	}
}

func TestDynamicBarriersBothContexts(t *testing.T) {
	// A helper method that reads a field, called from inside and outside
	// a region. Dynamic mode compiles it once.
	p := NewProgram(0)
	get := &Method{Name: "get", NArgs: 1, NLocal: 1}
	p.Add(get)
	get.Code = NewAsm().Load(0).GetField(0).Op(OpReturnVal).MustBuild()

	sec := &Method{Name: "sec", NArgs: 1, NLocal: 1, Secure: &SecureInfo{}}
	p.Add(sec)
	sec.Code = NewAsm().Load(0).Invoke(get).Op(OpPop).Op(OpReturn).MustBuild()

	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(get).Op(OpPop). // outside
		Load(0).Invoke(sec).           // inside (empty-label region)
		Const(1).Op(OpReturnVal).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierDynamic})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := mc.Call(mc.NewThread(), "main"); err != nil || v.Int() != 1 {
		t.Fatalf("main = %v, %v", v, err)
	}
	if mc.Stats().ContextChecks == 0 {
		t.Error("dynamic mode performed no context checks")
	}
	// Exactly one compiled variant of get.
	rep := mc.CompileReport()
	if rep.Methods != 3 {
		t.Errorf("methods compiled = %d, want 3", rep.Methods)
	}
}

func TestFirstUseModeFailsOnSecondContext(t *testing.T) {
	p := NewProgram(0)
	get := &Method{Name: "get", NArgs: 1, NLocal: 1}
	p.Add(get)
	get.Code = NewAsm().Load(0).GetField(0).Op(OpReturnVal).MustBuild()
	sec := &Method{Name: "sec", NArgs: 1, NLocal: 1, Secure: &SecureInfo{}}
	p.Add(sec)
	sec.Code = NewAsm().Load(0).Invoke(get).Op(OpPop).Op(OpReturn).MustBuild()
	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(get).Op(OpPop).
		Load(0).Invoke(sec).
		Const(1).Op(OpReturnVal).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Clone: FirstUse})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mc.Call(mc.NewThread(), "main")
	if err == nil || !strings.Contains(err.Error(), "first-execution-context") {
		t.Errorf("first-use dual context = %v", err)
	}
	// CloneBoth handles it.
	p.ResetCompilation()
	mc2, _ := NewMachine(p, CompileOptions{Mode: BarrierStatic, Clone: CloneBoth})
	if v, err := mc2.Call(mc2.NewThread(), "main"); err != nil || v.Int() != 1 {
		t.Errorf("clone mode main = %v, %v", v, err)
	}
	// And get has two variants.
	if rep := mc2.CompileReport(); rep.Methods != 4 {
		t.Errorf("clone mode compiled %d methods, want 4 (get×2, sec, main)", rep.Methods)
	}
}

func TestRegionEntryRequiresCapsForNested(t *testing.T) {
	// A secure region with label {a} invokes a nested secure region with
	// label {} and no a- capability: must violate and suppress.
	a := difc.Tag(3)
	p := NewProgram(1)
	inner := &Method{Name: "inner", NArgs: 0, NLocal: 1, Secure: &SecureInfo{}}
	p.Add(inner)
	inner.Code = NewAsm().Const(1).Emit(OpPutStatic, 0).Op(OpReturn).MustBuild()

	outer := &Method{Name: "outer", NArgs: 0, NLocal: 1,
		Secure: &SecureInfo{Labels: difc.Labels{S: difc.NewLabel(a)}}}
	p.Add(outer)
	outer.Code = NewAsm().Invoke(inner).Op(OpReturn).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Call(mc.NewThread(), "outer"); err != nil {
		t.Fatalf("outer call = %v (violation should be suppressed at region boundary)", err)
	}
	// inner never ran: the static stayed zero.
	if mc.Static(0).Int() != 0 {
		t.Error("nested region ran despite missing declassification capability")
	}
	if mc.Stats().Violations == 0 {
		t.Error("no violation recorded")
	}
}

func TestNestedRegionWithCapability(t *testing.T) {
	// Same shape but the outer region carries a-, so the nested empty
	// region is a legal declassification boundary.
	a := difc.Tag(3)
	p := NewProgram(1)
	inner := &Method{Name: "inner", NArgs: 0, NLocal: 1, Secure: &SecureInfo{
		Caps: difc.EmptyCapSet.Grant(a, difc.CapMinus),
	}}
	p.Add(inner)
	inner.Code = NewAsm().Const(1).Emit(OpPutStatic, 0).Op(OpReturn).MustBuild()
	outer := &Method{Name: "outer", NArgs: 0, NLocal: 1,
		Secure: &SecureInfo{
			Labels: difc.Labels{S: difc.NewLabel(a)},
			Caps:   difc.EmptyCapSet.Grant(a, difc.CapMinus),
		}}
	p.Add(outer)
	outer.Code = NewAsm().Invoke(inner).Op(OpReturn).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Call(mc.NewThread(), "outer"); err != nil {
		t.Fatal(err)
	}
	if mc.Static(0).Int() != 1 {
		t.Error("nested declassified region did not run")
	}
	if mc.Stats().Violations != 0 {
		t.Errorf("violations = %d", mc.Stats().Violations)
	}
}

func TestCatchRunsOnViolation(t *testing.T) {
	a := difc.Tag(2)
	p := NewProgram(1)
	// Secure region with INTEGRITY label writes a static from catch: the
	// restriction forbids reads with integrity, writes are fine.
	sec := &Method{Name: "sec", NArgs: 1, NLocal: 1, Secure: &SecureInfo{
		Labels: difc.Labels{I: difc.NewLabel(a)},
		Catch:  NewAsm().Const(99).Emit(OpPutStatic, 0).Op(OpReturn).MustBuild(),
	}}
	p.Add(sec)
	// Body reads an unlabeled object: integrity no-read-down violation.
	sec.Code = NewAsm().Load(0).GetField(0).Op(OpPop).Op(OpReturn).MustBuild()

	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(sec).
		Emit(OpGetStatic, 0).Op(OpReturnVal).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 99 {
		t.Errorf("catch result = %d, want 99", v.Int())
	}
}

func TestCompileReportModes(t *testing.T) {
	tag := difc.Tag(1)
	p, _, _ := secureProgram(tag)
	reports := map[BarrierMode]CompileReport{}
	for _, mode := range []BarrierMode{BarrierNone, BarrierStatic, BarrierDynamic} {
		p.ResetCompilation()
		rep, err := p.CompileAll(CompileOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		reports[mode] = rep
	}
	if reports[BarrierNone].BarriersEmitted != 0 {
		t.Error("none mode emitted barriers")
	}
	if reports[BarrierStatic].InstrsOut <= reports[BarrierNone].InstrsOut {
		t.Error("static mode did not grow code")
	}
	// Static-mode cloning compiles non-secure methods twice (that is where
	// its 2× compile-time cost comes from); compare dynamic's per-method
	// density instead of totals.
	dynPerMethod := float64(reports[BarrierDynamic].InstrsOut) / float64(reports[BarrierDynamic].Methods)
	statPerMethod := float64(reports[BarrierStatic].InstrsOut) / float64(reports[BarrierStatic].Methods)
	if dynPerMethod <= statPerMethod {
		t.Errorf("dynamic density %.1f should exceed static %.1f", dynPerMethod, statPerMethod)
	}
	if reports[BarrierStatic].Methods <= reports[BarrierDynamic].Methods {
		t.Error("static cloning should compile more method variants than dynamic")
	}
}
