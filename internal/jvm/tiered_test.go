package jvm

import "testing"

func TestTieredRecompilation(t *testing.T) {
	build := func() *Program {
		p := NewProgram(0)
		work := &Method{Name: "work", NArgs: 1, NLocal: 1}
		p.Add(work)
		work.Code = NewAsm().
			Load(0).GetField(0).Op(OpPop).
			Load(0).GetField(0).Op(OpPop).
			Op(OpReturn).MustBuild()
		return p
	}

	// Without tiering: every call pays both barriers.
	p := build()
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	th := mc.NewThread()
	obj := &Obj{fields: make([]Value, 1)}
	for i := 0; i < 20; i++ {
		if _, err := mc.Call(th, "work", RefV(obj)); err != nil {
			t.Fatal(err)
		}
	}
	cold := mc.Stats().BarrierChecks

	// With tiering (threshold 5): after five invocations the optimized
	// tier elides the redundant second barrier.
	p2 := build()
	mc2, err := NewMachine(p2, CompileOptions{Mode: BarrierStatic, HotThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	th2 := mc2.NewThread()
	for i := 0; i < 20; i++ {
		if _, err := mc2.Call(th2, "work", RefV(obj)); err != nil {
			t.Fatal(err)
		}
	}
	hot := mc2.Stats().BarrierChecks
	if hot >= cold {
		t.Errorf("tiered checks %d >= cold %d", hot, cold)
	}
	// The recompile shows up in the compile report (two compilations of
	// the method) and elides one barrier.
	rep := mc2.CompileReport()
	if rep.Methods != 2 {
		t.Errorf("methods compiled = %d, want 2 (baseline + hot tier)", rep.Methods)
	}
	if rep.BarriersElided == 0 {
		t.Error("hot tier elided nothing")
	}
}

func TestTieredKeepsContextDecision(t *testing.T) {
	// A method compiled outside regions stays an outside variant after
	// hot recompilation: its barriers remain the out-of-region kind.
	p := NewProgram(0)
	work := &Method{Name: "work", NArgs: 1, NLocal: 1}
	p.Add(work)
	work.Code = NewAsm().
		Load(0).GetField(0).Op(OpPop).
		Op(OpReturn).MustBuild()
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, HotThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	th := mc.NewThread()
	obj := &Obj{fields: make([]Value, 1)}
	for i := 0; i < 6; i++ {
		if _, err := mc.Call(th, "work", RefV(obj)); err != nil {
			t.Fatal(err)
		}
	}
	// The optimized variant must still carry an outside barrier.
	cm := work.variants[0]
	if cm == nil || !cm.optimized {
		t.Fatal("hot variant not installed")
	}
	found := false
	for _, in := range cm.code {
		if in.Op == OpBarrierOutR {
			found = true
		}
		if in.Op == OpBarrierRead {
			t.Error("outside variant gained an in-region barrier")
		}
	}
	if !found {
		t.Error("outside barrier missing from hot variant")
	}
}
