package jvm

import (
	"fmt"
	"strconv"
	"strings"

	"laminar/internal/difc"
)

// Text assembly. Programs can be written in a small line-oriented
// assembly, convenient for tests and for inspecting compiler behaviour:
//
//	; a comment
//	statics 2
//
//	method main args=0 locals=2
//	    const 5
//	    store 0
//	loop:
//	    load 0
//	    const 0
//	    cmple
//	    jmpif done
//	    load 0
//	    const 1
//	    sub
//	    store 0
//	    jmp loop
//	done:
//	    load 0
//	    returnval
//	end
//
//	secure method fill args=1 locals=2 secrecy=3 integrity=4 minus=3
//	    load 0
//	    getfield 0
//	    pop
//	    return
//	catch:
//	    return
//	end
//
// `invoke` takes a method name; names resolve after the whole file is
// read, so forward references work. Secrecy/integrity/plus/minus take
// comma-separated tag numbers for the region's credentials.

// Parse assembles a program from text.
func Parse(src string) (*Program, error) {
	p := &parser{prog: NewProgram(0)}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	prog *Program
	line int
}

type pendingMethod struct {
	method  *Method
	asm     *Asm
	catch   *Asm
	inCatch bool
	invokes []pendingInvoke // fixups by name
}

type pendingInvoke struct {
	inCatch bool
	pc      int
	name    string
	line    int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("jvm: parse line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	var cur *pendingMethod
	var done []*pendingMethod
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "statics":
			if len(fields) != 2 {
				return p.errf("statics wants a count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return p.errf("bad statics count %q", fields[1])
			}
			p.prog.NStatics = n
		case fields[0] == "method" || (fields[0] == "secure" && len(fields) > 1 && fields[1] == "method"):
			if cur != nil {
				return p.errf("method inside method")
			}
			m, err := p.parseHeader(fields)
			if err != nil {
				return err
			}
			cur = &pendingMethod{method: m, asm: NewAsm()}
		case fields[0] == "catch:":
			if cur == nil || cur.method.Secure == nil {
				return p.errf("catch outside a secure method")
			}
			if cur.inCatch {
				return p.errf("duplicate catch block")
			}
			cur.inCatch = true
			cur.catch = NewAsm()
		case fields[0] == "end":
			if cur == nil {
				return p.errf("end outside a method")
			}
			code, err := cur.asm.Build()
			if err != nil {
				return p.errf("%v", err)
			}
			cur.method.Code = code
			if cur.catch != nil {
				catch, err := cur.catch.Build()
				if err != nil {
					return p.errf("%v", err)
				}
				cur.method.Secure.Catch = catch
			}
			p.prog.Add(cur.method)
			done = append(done, cur)
			cur = nil
		case strings.HasSuffix(fields[0], ":") && len(fields) == 1:
			if cur == nil {
				return p.errf("label outside a method")
			}
			cur.active().Label(strings.TrimSuffix(fields[0], ":"))
		default:
			if cur == nil {
				return p.errf("instruction outside a method")
			}
			if err := p.parseInstr(cur, fields); err != nil {
				return err
			}
		}
	}
	if cur != nil {
		return p.errf("missing end for method %s", cur.method.Name)
	}
	// Resolve invoke-by-name fixups.
	for _, pm := range done {
		for _, iv := range pm.invokes {
			callee, err := p.prog.Lookup(iv.name)
			if err != nil {
				return fmt.Errorf("jvm: parse line %d: invoke of undefined method %q", iv.line, iv.name)
			}
			if iv.inCatch {
				pm.method.Secure.Catch[iv.pc].A = int32(callee.index)
			} else {
				pm.method.Code[iv.pc].A = int32(callee.index)
			}
		}
	}
	return nil
}

func (pm *pendingMethod) active() *Asm {
	if pm.inCatch {
		return pm.catch
	}
	return pm.asm
}

// parseHeader handles "method NAME k=v..." and "secure method NAME k=v...".
func (p *parser) parseHeader(fields []string) (*Method, error) {
	secure := fields[0] == "secure"
	if secure {
		fields = fields[1:]
	}
	if len(fields) < 2 {
		return nil, p.errf("method wants a name")
	}
	m := &Method{Name: fields[1]}
	if secure {
		m.Secure = &SecureInfo{}
	}
	for _, kv := range fields[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, p.errf("bad attribute %q", kv)
		}
		switch key {
		case "args":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, p.errf("bad args %q", val)
			}
			m.NArgs = n
		case "locals":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, p.errf("bad locals %q", val)
			}
			m.NLocal = n
		case "secrecy", "integrity", "plus", "minus":
			if m.Secure == nil {
				return nil, p.errf("%s= on a non-secure method", key)
			}
			tags, err := parseTags(val)
			if err != nil {
				return nil, p.errf("bad %s list %q", key, val)
			}
			switch key {
			case "secrecy":
				m.Secure.Labels.S = tags
			case "integrity":
				m.Secure.Labels.I = tags
			case "plus":
				m.Secure.Caps = difc.NewCapSet(tags, m.Secure.Caps.Minus())
			case "minus":
				m.Secure.Caps = difc.NewCapSet(m.Secure.Caps.Plus(), tags)
			}
		default:
			return nil, p.errf("unknown attribute %q", key)
		}
	}
	return m, nil
}

func parseTags(val string) (difc.Label, error) {
	var tags []difc.Tag
	for _, s := range strings.Split(val, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return difc.Label{}, err
		}
		tags = append(tags, difc.Tag(n))
	}
	return difc.NewLabel(tags...), nil
}

// opByName maps mnemonic to opcode (source opcodes only).
var opByName = func() map[string]Op {
	m := make(map[string]Op)
	for op, name := range opNames {
		if name == "" || Op(op).isBarrier() {
			continue
		}
		m[name] = Op(op)
	}
	return m
}()

func (p *parser) parseInstr(pm *pendingMethod, fields []string) error {
	name := fields[0]
	op, ok := opByName[name]
	if !ok {
		return p.errf("unknown mnemonic %q", name)
	}
	a := pm.active()
	switch {
	case op.isJump():
		if len(fields) != 2 {
			return p.errf("%s wants a label", name)
		}
		a.jump(op, fields[1])
	case op == OpInvoke:
		if len(fields) != 2 {
			return p.errf("invoke wants a method name")
		}
		pm.invokes = append(pm.invokes, pendingInvoke{
			inCatch: pm.inCatch,
			pc:      len(a.code),
			name:    fields[1],
			line:    p.line,
		})
		a.Emit(OpInvoke, -1) // fixed up after all methods parse
	case hasOperand(op):
		if len(fields) != 2 {
			return p.errf("%s wants an operand", name)
		}
		n, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return p.errf("bad operand %q", fields[1])
		}
		a.Emit(op, int32(n))
	default:
		if len(fields) != 1 {
			return p.errf("%s takes no operand", name)
		}
		a.Op(op)
	}
	return nil
}
