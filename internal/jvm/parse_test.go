package jvm

import (
	"math/rand"
	"strings"
	"testing"
)

const countdownSrc = `
; countdown from 5, returns 0
statics 1

method main args=0 locals=1
    const 5
    store 0
loop:
    load 0
    const 0
    cmple
    jmpif done
    load 0
    const 1
    sub
    store 0
    jmp loop
done:
    load 0
    returnval
end
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse(countdownSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.NStatics != 1 {
		t.Errorf("statics = %d", p.NStatics)
	}
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 0 {
		t.Fatalf("main = %v, %v", v, err)
	}
}

func TestParseForwardInvoke(t *testing.T) {
	src := `
method main args=0 locals=0
    const 6
    invoke double
    returnval
end

method double args=1 locals=1
    load 0
    const 2
    mul
    returnval
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMachine(p, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 12 {
		t.Fatalf("main = %v, %v", v, err)
	}
}

func TestParseSecureMethodWithCatch(t *testing.T) {
	src := `
statics 1

secure method probe args=1 locals=1 integrity=7 plus=7
    load 0
    getfield 0
    pop
    return
catch:
    const 99
    putstatic 0
    return
end

method main args=0 locals=1
    new 1
    store 0
    load 0
    invoke probe
    getstatic 0
    returnval
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Lookup("probe")
	if err != nil {
		t.Fatal(err)
	}
	if m.Secure == nil || m.Secure.Labels.I.Len() != 1 {
		t.Fatalf("secure info = %+v", m.Secure)
	}
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	// Reading an unlabeled object from an integrity region violates; the
	// catch writes 99 into the static.
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 99 {
		t.Fatalf("main = %v, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "method m args=0 locals=0\n bogus\nend", "unknown mnemonic"},
		{"instr outside", "const 1", "outside a method"},
		{"label outside", "foo:", "outside a method"},
		{"nested method", "method a args=0 locals=0\nmethod b args=0 locals=0", "method inside method"},
		{"missing end", "method a args=0 locals=0\n return", "missing end"},
		{"bad statics", "statics x", "bad statics"},
		{"bad attr", "method m argz\nend", "bad attribute"},
		{"unknown attr", "method m wat=1\nend", "unknown attribute"},
		{"secure attr on plain", "method m secrecy=1\nend", "non-secure"},
		{"catch on plain", "method m args=0 locals=0\ncatch:\n return\nend", "outside a secure"},
		{"undefined invoke", "method m args=0 locals=0\n invoke nope\n return\nend", "undefined method"},
		{"jump without label", "method m args=0 locals=0\n jmp\nend", "wants a label"},
		{"operand missing", "method m args=0 locals=0\n const\nend", "wants an operand"},
		{"stray operand", "method m args=0 locals=0\n add 3\nend", "takes no operand"},
		{"end outside", "end", "outside a method"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestParseDisassembleRoundTrip(t *testing.T) {
	p, err := Parse(countdownSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Lookup("main")
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(m.Code)
	// Every mnemonic used in the source appears in the disassembly.
	for _, want := range []string{"const", "store", "load", "cmple", "jmpif", "sub", "jmp", "returnval"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestParseFuzzNeverPanics(t *testing.T) {
	// Random byte soup and random token recombinations must produce an
	// error or a program — never a panic.
	rng := newDeterministicRand()
	tokens := []string{
		"method", "secure", "end", "catch:", "statics", "args=0", "locals=2",
		"const", "load", "store", "jmp", "jmpif", "invoke", "return",
		"returnval", "loop:", "loop", "1", "-3", "x", "secrecy=1", "add",
		"getfield", "putfield", "new", ";", "\n",
	}
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			if rng.Intn(3) == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		func() {
			defer func() {
				if e := recover(); e != nil {
					t.Fatalf("trial %d: parser panicked on %q: %v", trial, b.String(), e)
				}
			}()
			p, err := Parse(b.String())
			if err == nil && p != nil {
				// Any accepted program must also verify or fail cleanly.
				_ = p.Verify()
			}
		}()
	}
}

func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
