package jvm

import (
	"errors"
	"strings"
	"testing"
)

func TestPeepholeConstantFolding(t *testing.T) {
	code := NewAsm().
		Const(6).Const(7).Op(OpMul).
		Const(2).Op(OpAdd).
		Op(OpReturnVal).MustBuild()
	out, folded := peephole(code)
	if folded == 0 {
		t.Fatal("nothing folded")
	}
	// After fixpoint the whole expression is one constant.
	consts := 0
	for _, in := range out {
		if in.Op == OpConst {
			consts++
			if in.A != 44 {
				t.Errorf("folded const = %d, want 44", in.A)
			}
		}
	}
	if consts != 1 {
		t.Errorf("consts = %d, want 1:\n%s", consts, Disassemble(out))
	}
}

func TestPeepholeDivByZeroNotFolded(t *testing.T) {
	code := NewAsm().Const(5).Const(0).Op(OpDiv).Op(OpReturnVal).MustBuild()
	out, _ := peephole(code)
	hasDiv := false
	for _, in := range out {
		if in.Op == OpDiv {
			hasDiv = true
		}
	}
	if !hasDiv {
		t.Fatal("div-by-zero folded away")
	}
	// And the program still traps.
	p := NewProgram(0)
	p.Add(&Method{Name: "m", NArgs: 0, NLocal: 0, Code: code})
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	var te *TrapError
	if _, err := mc.Call(mc.NewThread(), "m"); !errors.As(err, &te) {
		t.Errorf("folded div-by-zero = %v, want trap", err)
	}
}

func TestPeepholeConstantBranch(t *testing.T) {
	// if (1) return 10 else return 20 — folds to the taken path.
	code := NewAsm().
		Const(1).JmpIf("then").
		Const(20).Op(OpReturnVal).
		Label("then").
		Const(10).Op(OpReturnVal).MustBuild()
	out, folded := peephole(code)
	if folded == 0 {
		t.Fatal("constant branch not folded")
	}
	p := NewProgram(0)
	p.Add(&Method{Name: "m", NArgs: 0, NLocal: 0, Code: out})
	if err := p.Verify(); err != nil {
		t.Fatalf("folded code fails verification: %v\n%s", err, Disassemble(out))
	}
	mc, _ := NewMachine(p, CompileOptions{})
	v, err := mc.Call(mc.NewThread(), "m")
	if err != nil || v.Int() != 10 {
		t.Errorf("m = %v, %v", v, err)
	}
}

func TestPeepholeJumpThreading(t *testing.T) {
	// jmp a; ... a: jmp b; ... b: return — the first jump should land on b.
	code := NewAsm().
		Jmp("a").
		Label("x").Const(0).Op(OpReturnVal).
		Label("a").Jmp("b").
		Label("b").Const(1).Op(OpReturnVal).MustBuild()
	out, _ := peephole(code)
	if out[0].Op != OpJmp {
		t.Fatalf("first instr = %v", out[0])
	}
	// The threaded target must point at the const 1, not the middle jmp.
	if out[out[0].A].Op != OpConst || out[out[0].A].A != 1 {
		t.Errorf("threaded target = %v\n%s", out[out[0].A], Disassemble(out))
	}
}

func TestPeepholeRespectsJumpTargetsInPattern(t *testing.T) {
	// A branch lands BETWEEN the two constants of a [const,const,add]
	// pattern: folding it would break the jump-in path, so the add must
	// survive. (The constant branch above may and does fold.)
	code := []Instr{
		{Op: OpConst, A: 9}, // 0: value the jump-in path adds with
		{Op: OpConst, A: 1}, // 1
		{Op: OpJmpIf, A: 5}, // 2: jumps INTO the would-be pattern
		{Op: OpPop},         // 3 (fall path, never taken)
		{Op: OpConst, A: 5}, // 4
		{Op: OpConst, A: 6}, // 5: jump target, mid-pattern
		{Op: OpAdd},         // 6
		{Op: OpReturnVal},   // 7
	}
	out, _ := peephole(code)
	hasAdd := false
	for _, in := range out {
		if in.Op == OpAdd {
			hasAdd = true
		}
	}
	if !hasAdd {
		t.Fatalf("folded across a jump target:\n%s", Disassemble(out))
	}
	// Semantics preserved end to end: 9 + 6 on the (always-taken) jump
	// path.
	p := NewProgram(0)
	p.Add(&Method{Name: "m", NArgs: 0, NLocal: 0, Code: out})
	if err := p.Verify(); err != nil {
		t.Fatalf("folded code fails verification: %v\n%s", err, Disassemble(out))
	}
	mc, _ := NewMachine(p, CompileOptions{})
	v, err := mc.Call(mc.NewThread(), "m")
	if err != nil || v.Int() != 15 {
		t.Errorf("m = %v, %v (want 15)", v, err)
	}
}

func TestPeepholePreservesWorkloadSemantics(t *testing.T) {
	src := `
method main args=0 locals=2
    const 10
    const 20
    add
    store 0
    const 0
    store 1
loop:
    load 1
    const 5
    cmpge
    jmpif done
    load 0
    const 2
    mul
    store 0
    load 1
    const 1
    add
    store 1
    jmp loop
done:
    load 0
    returnval
end
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mc1, _ := NewMachine(p1, CompileOptions{Mode: BarrierStatic})
	v1, err := mc1.Call(mc1.NewThread(), "main")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Parse(src)
	mc2, _ := NewMachine(p2, CompileOptions{Mode: BarrierStatic, Optimize: true})
	v2, err := mc2.Call(mc2.NewThread(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Int() != v2.Int() {
		t.Errorf("optimized result %d != %d", v2.Int(), v1.Int())
	}
	if v1.Int() != 30*32 {
		t.Errorf("result = %d, want %d", v1.Int(), 30*32)
	}
	// The optimized build executes fewer instructions.
	if mc2.Stats().Instructions >= mc1.Stats().Instructions {
		t.Logf("note: optimized %d vs %d instructions (nop-padded fold)",
			mc2.Stats().Instructions, mc1.Stats().Instructions)
	}
}

func TestPeepholeOnGeneratedWorkloads(t *testing.T) {
	// Sanity across the random-program corpus: optimized compilation of
	// valid programs never breaks verification of the emitted code (the
	// post-compile validator panics on compiler bugs).
	srcs := []string{countdownSrc, canonicalSrc}
	for _, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.CompileAll(CompileOptions{Mode: BarrierDynamic, Optimize: true, Inline: true}); err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
	_ = strings.TrimSpace
}
