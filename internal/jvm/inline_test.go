package jvm

import (
	"testing"

	"laminar/internal/difc"
)

// buildCallerCallee makes: getf(o) = o.f0 (leaf, inlinable) and
// main() { o = new; o.f0 = 7; s = 0; loop n: s += getf(o); return s }.
func buildCallerCallee(n int64) *Program {
	p := NewProgram(0)
	getf := &Method{Name: "getf", NArgs: 1, NLocal: 1}
	p.Add(getf)
	getf.Code = NewAsm().Load(0).GetField(0).Op(OpReturnVal).MustBuild()

	main := &Method{Name: "main", NArgs: 0, NLocal: 3}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Const(7).PutField(0).
		Const(0).Store(1).
		Const(0).Store(2).
		Label("loop").
		Load(2).Const(int32Of(n)).Op(OpCmpGE).JmpIf("done").
		Load(1).Load(0).Invoke(getf).Op(OpAdd).Store(1).
		Load(2).Const(1).Op(OpAdd).Store(2).
		Jmp("loop").
		Label("done").
		Load(1).Op(OpReturnVal).MustBuild()
	return p
}

func int32Of(n int64) int64 { return n }

func TestInlinePreservesSemantics(t *testing.T) {
	for _, inline := range []bool{false, true} {
		for _, mode := range []BarrierMode{BarrierNone, BarrierStatic, BarrierDynamic} {
			p := buildCallerCallee(10)
			mc, err := NewMachine(p, CompileOptions{Mode: mode, Inline: inline})
			if err != nil {
				t.Fatal(err)
			}
			v, err := mc.Call(mc.NewThread(), "main")
			if err != nil {
				t.Fatalf("inline=%v mode=%v: %v", inline, mode, err)
			}
			if v.Int() != 70 {
				t.Errorf("inline=%v mode=%v: main = %d, want 70", inline, mode, v.Int())
			}
			if inline {
				if rep := mc.CompileReport(); rep.InlinedCalls == 0 {
					t.Errorf("mode=%v: nothing inlined", mode)
				}
			}
		}
	}
}

func TestInlineValueReturnOnStack(t *testing.T) {
	// add(a,b) = a+b inlined into an expression context.
	p := NewProgram(0)
	add := &Method{Name: "add", NArgs: 2, NLocal: 2}
	p.Add(add)
	add.Code = NewAsm().Load(0).Load(1).Op(OpAdd).Op(OpReturnVal).MustBuild()
	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		Const(3).Const(4).Invoke(add).
		Const(10).Invoke(add). // (3+4)+10
		Op(OpReturnVal).MustBuild()
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 17 {
		t.Fatalf("main = %v, %v", v, err)
	}
	if mc.CompileReport().InlinedCalls != 2 {
		t.Errorf("inlined = %d, want 2", mc.CompileReport().InlinedCalls)
	}
}

func TestInlineBranchyCallee(t *testing.T) {
	// abs(x) with a branch, inlined; checks jump remapping inside the
	// spliced body.
	p := NewProgram(0)
	abs := &Method{Name: "abs", NArgs: 1, NLocal: 1}
	p.Add(abs)
	abs.Code = NewAsm().
		Load(0).Const(0).Op(OpCmpLT).JmpIf("neg").
		Load(0).Op(OpReturnVal).
		Label("neg").
		Load(0).Op(OpNeg).Op(OpReturnVal).MustBuild()
	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		Const(-5).Invoke(abs).
		Const(3).Invoke(abs).
		Op(OpAdd).Op(OpReturnVal).MustBuild()
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierNone, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 8 {
		t.Fatalf("main = %v, %v", v, err)
	}
}

func TestInlineSkipsSecureAndBigAndNonLeaf(t *testing.T) {
	p := NewProgram(0)
	// Secure method: never inlined.
	sec := &Method{Name: "sec", NArgs: 1, NLocal: 1, Secure: &SecureInfo{}}
	p.Add(sec)
	sec.Code = NewAsm().Load(0).GetField(0).Op(OpPop).Op(OpReturn).MustBuild()
	// Big method: exceeds inlineMaxSize.
	big := &Method{Name: "big", NArgs: 0, NLocal: 1}
	p.Add(big)
	a := NewAsm()
	for i := 0; i < inlineMaxSize+4; i++ {
		a.Op(OpNop)
	}
	big.Code = a.Op(OpReturn).MustBuild()
	// Non-leaf: calls big.
	nonleaf := &Method{Name: "nonleaf", NArgs: 0, NLocal: 1}
	p.Add(nonleaf)
	nonleaf.Code = NewAsm().Invoke(big).Op(OpReturn).MustBuild()

	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(sec).
		Invoke(big).
		Invoke(nonleaf).
		Const(1).Op(OpReturnVal).MustBuild()
	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 1 {
		t.Fatalf("main = %v, %v", v, err)
	}
	if rep := mc.CompileReport(); rep.InlinedCalls != 0 {
		t.Errorf("inlined = %d, want 0", rep.InlinedCalls)
	}
	// Regions still entered via the real call.
	if mc.Stats().RegionsEntered != 1 {
		t.Errorf("regions = %d", mc.Stats().RegionsEntered)
	}
}

func TestInlineWidensRedundancyElimination(t *testing.T) {
	// Without inlining, the loop's getf(o) call hides the field access
	// from the caller's dataflow: every iteration's barrier stays (inside
	// getf it is the method's first access). With inlining, the access
	// joins the caller's loop body and a pre-loop check makes it
	// redundant.
	build := func() *Program {
		p := NewProgram(0)
		getf := &Method{Name: "getf", NArgs: 1, NLocal: 1}
		p.Add(getf)
		getf.Code = NewAsm().Load(0).GetField(0).Op(OpReturnVal).MustBuild()
		main := &Method{Name: "main", NArgs: 0, NLocal: 3}
		p.Add(main)
		main.Code = NewAsm().
			New(1).Store(0).
			Load(0).Const(7).PutField(0).
			Load(0).GetField(0).Op(OpPop). // hoisted check
			Const(0).Store(1).
			Const(0).Store(2).
			Label("loop").
			Load(2).Const(100).Op(OpCmpGE).JmpIf("done").
			Load(1).Load(0).Invoke(getf).Op(OpAdd).Store(1).
			Load(2).Const(1).Op(OpAdd).Store(2).
			Jmp("loop").
			Label("done").
			Load(1).Op(OpReturnVal).MustBuild()
		return p
	}
	counts := map[bool]uint64{}
	for _, inline := range []bool{false, true} {
		p := build()
		mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Optimize: true, Inline: inline})
		if err != nil {
			t.Fatal(err)
		}
		v, err := mc.Call(mc.NewThread(), "main")
		if err != nil || v.Int() != 700 {
			t.Fatalf("inline=%v: main = %v, %v", inline, v, err)
		}
		counts[inline] = mc.Stats().BarrierChecks
	}
	if counts[true] >= counts[false] {
		t.Errorf("inlining did not widen elimination: %d checks with inline vs %d without",
			counts[true], counts[false])
	}
}

func TestInlineWithSecureCallerContext(t *testing.T) {
	// An inlinable leaf called from inside a security region: the access
	// it contributes must get in-region barriers and enforce labels.
	tag := difc.Tag(5)
	p := NewProgram(0)
	getf := &Method{Name: "getf", NArgs: 1, NLocal: 1}
	p.Add(getf)
	getf.Code = NewAsm().Load(0).GetField(0).Op(OpReturnVal).MustBuild()

	sec := &Method{Name: "sec", NArgs: 1, NLocal: 2, Secure: &SecureInfo{
		Labels: difc.Labels{I: difc.NewLabel(tag)},
	}}
	p.Add(sec)
	// Reads an unlabeled object's field while carrying an integrity
	// label: no-read-down violation even through the inlined body.
	sec.Code = NewAsm().Load(0).Invoke(getf).Op(OpPop).Op(OpReturn).MustBuild()

	main := &Method{Name: "main", NArgs: 0, NLocal: 1}
	p.Add(main)
	main.Code = NewAsm().
		New(1).Store(0).
		Load(0).Invoke(sec).
		Const(1).Op(OpReturnVal).MustBuild()

	mc, err := NewMachine(p, CompileOptions{Mode: BarrierStatic, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "main")
	if err != nil || v.Int() != 1 {
		t.Fatalf("main = %v, %v", v, err)
	}
	if mc.Stats().Violations != 1 {
		t.Errorf("violations = %d, want 1 (inlined access must still be checked)", mc.Stats().Violations)
	}
}
