package jvm

// This file implements the redundant-barrier-elimination optimization of
// §5.1: "We implement an intraprocedural, flow-sensitive data-flow
// analysis that identifies redundant barriers and removes them. A read
// (or write) barrier is redundant if the object has been read (written),
// or if the object was allocated, along every incoming path."
//
// The analysis tracks, per local-variable slot, whether the object
// currently held by the slot has already passed a read check, a write
// check, or was allocated in this method (allocation implies both: a
// fresh object carries the region's own labels). Facts meet by
// intersection at join points, giving the "along every incoming path"
// semantics. Object operands are traced to their producing instruction by
// backwards stack simulation within the basic block; operands that cannot
// be traced to a local load or a fresh allocation conservatively keep
// their barriers.
//
// Soundness rests on two Laminar invariants: object labels are immutable
// (§4.5) and a security region's labels cannot change during its execution
// (§4.4), so a check that succeeded once holds for the rest of the region.
// Calls do not invalidate facts — a nested region entered by a callee is
// popped again before control returns.
//
// When an InterprocResult is supplied (CompileOptions.Interproc), the same
// pass additionally consumes whole-program summaries from
// internal/jvm/analysis:
//
//   - entry facts seed parameter slots with checks proven at every call
//     site, so callees skip re-checking arguments;
//   - an invoke transfers the callee's Ensures facts onto the argument's
//     source slots, so callers skip re-checking objects a callee checked;
//   - a value stored from an invoke inherits the callee's Return facts
//     (factory methods returning fresh allocations);
//   - backwards stack tracing walks through calls, since a call never
//     touches stack values below its arguments.

// localFacts maps a local slot to its fact bits. Slots absent from the map
// hold unknown objects.
type localFacts struct {
	bits    []uint8
	staticR bool // a static-read check already ran in this region
	staticW bool
}

func newFacts(nLocal int) localFacts {
	return localFacts{bits: make([]uint8, nLocal)}
}

func (f localFacts) clone() localFacts {
	out := localFacts{bits: make([]uint8, len(f.bits)), staticR: f.staticR, staticW: f.staticW}
	copy(out.bits, f.bits)
	return out
}

// meet intersects two fact sets; reports whether the receiver changed.
func (f *localFacts) meet(other localFacts) bool {
	changed := false
	for i := range f.bits {
		nb := f.bits[i] & other.bits[i]
		if nb != f.bits[i] {
			f.bits[i] = nb
			changed = true
		}
	}
	if f.staticR && !other.staticR {
		f.staticR = false
		changed = true
	}
	if f.staticW && !other.staticW {
		f.staticW = false
		changed = true
	}
	return changed
}

// optContext bundles what the elimination pass knows beyond the method's
// own code: the program (for callee arity when tracing through calls) and
// the attached interprocedural summaries. A nil ip degrades to the purely
// intraprocedural §5.1 pass.
type optContext struct {
	p  *Program
	ip *InterprocResult
	// note, when non-nil, receives a human-readable reason each time the
	// final pass proves a barrier site redundant (laminar-vet explain).
	note func(pc int, reason string)
}

func (oc optContext) explain(pc int, reason string) {
	if oc.note != nil {
		oc.note(pc, reason)
	}
}

// stackSource walks backwards from pc to find the instruction that
// produced the stack value at the given depth (0 = value on top just
// before code[pc] executes). It stays within the basic block — the walk
// stops at branches, returns and join targets (jumpTarget marks them) —
// and returns the producing pc, or -1 when unknown. With interprocedural
// summaries available the walk continues through OpInvoke for values below
// the call's arguments (a call cannot touch them), and reports the invoke
// itself as the producer of its return value.
func (oc optContext) stackSource(code []Instr, jumpTarget []bool, pc, depth int) int {
	want := depth
	for i := pc - 1; i >= 0; i-- {
		in := code[i]
		if in.Op.isJump() || in.Op == OpReturn || in.Op == OpReturnVal {
			return -1
		}
		if jumpTarget[i+1] {
			// Something jumps to i+1; the values below may come from
			// elsewhere on another path.
			return -1
		}
		var pops, pushes int
		if in.Op == OpInvoke {
			if oc.ip == nil {
				return -1 // values across calls are not traced intraprocedurally
			}
			callee := oc.p.Methods[in.A]
			pops = callee.NArgs
			if callee.returnsValue() {
				pushes = 1
			}
		} else {
			pops, pushes = stackEffect(in.Op)
		}
		if pushes > want {
			return i
		}
		want = want - pushes + pops
	}
	return -1
}

// jumpTargets marks every pc that some branch lands on.
func jumpTargets(code []Instr) []bool {
	t := make([]bool, len(code)+1)
	for _, in := range code {
		if in.Op.isJump() && int(in.A) <= len(code) {
			t[in.A] = true
		}
	}
	return t
}

// eliminateRedundant computes which barriers must stay. need starts as the
// all-barriers set from allBarriers. entry seeds fact bits for the leading
// local slots (parameters) at method entry; nil means no entry facts.
func eliminateRedundant(oc optContext, code []Instr, need barrierNeed, entry []uint8) barrierNeed {
	blocks, blockOf := buildBlocks(code)
	jt := jumpTargets(code)
	nLocal := maxLocalSlot(code) + 1
	if len(entry) > nLocal {
		nLocal = len(entry)
	}

	in := make([]localFacts, len(blocks))
	out := make([]localFacts, len(blocks))
	for i := range blocks {
		in[i] = newFacts(nLocal)
		out[i] = newFacts(nLocal)
	}
	// Entry block starts with only the caller-proven facts; all others
	// optimistically start "all facts" so the intersection fixpoint
	// converges from above.
	copy(in[0].bits, entry)
	for i := 1; i < len(blocks); i++ {
		for s := range in[i].bits {
			in[i].bits[s] = FactAll
		}
		in[i].staticR, in[i].staticW = true, true
	}

	// Fixpoint: iterate transfer until stable.
	for changed := true; changed; {
		changed = false
		for bi, b := range blocks {
			f := in[bi].clone()
			transferBlock(oc, code, jt, b, &f, nil)
			if !factsEqual(out[bi], f) {
				out[bi] = f
				changed = true
			}
			for _, succ := range successors(code, b) {
				si := blockOf[succ]
				if in[si].meet(out[bi]) {
					changed = true
				}
			}
		}
	}

	// Final pass: with stable entry facts, mark redundant barriers.
	for bi, b := range blocks {
		f := in[bi].clone()
		transferBlock(oc, code, jt, b, &f, &need)
	}
	return need
}

// block is a half-open instruction range [start, end).
type block struct{ start, end int }

// buildBlocks splits code into basic blocks and maps start pc -> index.
func buildBlocks(code []Instr) ([]block, map[int]int) {
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc, in := range code {
		if in.Op.isJump() {
			leader[in.A] = true
			leader[pc+1] = true
		}
		if in.Op == OpReturn || in.Op == OpReturnVal {
			leader[pc+1] = true
		}
	}
	var blocks []block
	blockOf := make(map[int]int)
	start := 0
	for pc := 1; pc <= len(code); pc++ {
		if pc == len(code) || leader[pc] {
			if start < pc {
				blockOf[start] = len(blocks)
				blocks = append(blocks, block{start, pc})
			}
			start = pc
		}
	}
	return blocks, blockOf
}

// successors lists the start pcs of b's successor blocks.
func successors(code []Instr, b block) []int {
	last := code[b.end-1]
	switch {
	case last.Op == OpReturn || last.Op == OpReturnVal:
		return nil
	case last.Op == OpJmp:
		return []int{int(last.A)}
	case last.Op == OpJmpIf || last.Op == OpJmpIfNot:
		return []int{int(last.A), b.end}
	default:
		if b.end < len(code) {
			return []int{b.end}
		}
		return nil
	}
}

// calleeEnsures returns the interprocedural summary facts for a callee's
// parameter, or 0 without summaries.
func (oc optContext) calleeEnsures(calleeIdx int, param int) uint8 {
	if oc.ip == nil || calleeIdx >= len(oc.ip.Ensures) {
		return 0
	}
	e := oc.ip.Ensures[calleeIdx]
	if param >= len(e) {
		return 0
	}
	return e[param]
}

// calleeReturn returns the fact bits of a callee's return value, or 0.
func (oc optContext) calleeReturn(calleeIdx int) uint8 {
	if oc.ip == nil || calleeIdx >= len(oc.ip.Return) {
		return 0
	}
	return oc.ip.Return[calleeIdx]
}

// transferBlock runs the transfer function over a block. When need is
// non-nil, barriers proven redundant are cleared in it.
func transferBlock(oc optContext, code []Instr, jt []bool, b block, f *localFacts, need *barrierNeed) {
	for pc := b.start; pc < b.end; pc++ {
		in := code[pc]
		switch {
		case accessDepth(in.Op) >= 0:
			src := oc.stackSource(code, jt, pc, accessDepth(in.Op))
			bit := FactRead
			if isWrite(in.Op) {
				bit = FactWrite
			}
			switch {
			case src >= 0 && (code[src].Op == OpNew || code[src].Op == OpNewArray):
				// Freshly allocated on this path: always redundant.
				if need != nil {
					need.access[pc] = false
					oc.explain(pc, "object freshly allocated in this method; a fresh object carries the context's own labels")
				}
			case src >= 0 && code[src].Op == OpLoad:
				slot := int(code[src].A)
				if slot < len(f.bits) {
					if f.bits[slot]&bit != 0 {
						if need != nil {
							need.access[pc] = false
							oc.explain(pc, "object in local slot passed the same check on every incoming path")
						}
					}
					f.bits[slot] |= bit
				}
			case src >= 0 && code[src].Op == OpInvoke:
				// The accessed object is a callee's return value.
				if oc.calleeReturn(int(code[src].A))&bit != 0 && need != nil {
					need.access[pc] = false
					oc.explain(pc, "callee's Return summary proves its result checked or freshly allocated")
				}
			case src >= 0 && code[src].Op == OpDup:
				// Conservatively keep the barrier; no fact update.
			}
		case in.Op == OpGetStatic:
			if f.staticR && need != nil {
				need.static[pc] = false
				oc.explain(pc, "a checked static read already ran on every incoming path")
			}
			f.staticR = true
		case in.Op == OpPutStatic:
			if f.staticW && need != nil {
				need.static[pc] = false
				oc.explain(pc, "a checked static write already ran on every incoming path")
			}
			f.staticW = true
		case in.Op == OpInvoke && oc.ip != nil:
			// Callee summaries: the callee checked these arguments on
			// every path, so the source slots gain the facts for the rest
			// of this activation (the callee ran in this activation's
			// context — secure callees publish empty summaries).
			callee := oc.p.Methods[in.A]
			if idx := int(in.A); idx < len(oc.ip.EnsuresStatic) {
				if bits := oc.ip.EnsuresStatic[idx]; bits != 0 {
					// The callee ran checked static accesses in this same
					// region on every path, so our later ones are covered.
					f.staticR = f.staticR || bits&FactRead != 0
					f.staticW = f.staticW || bits&FactWrite != 0
				}
			}
			for k := 0; k < callee.NArgs; k++ {
				bits := oc.calleeEnsures(int(in.A), k)
				if bits == 0 {
					continue
				}
				// Argument k sits at depth NArgs-1-k (last argument on
				// top) just before the invoke executes.
				src := oc.stackSource(code, jt, pc, callee.NArgs-1-k)
				if src >= 0 && code[src].Op == OpLoad {
					if slot := int(code[src].A); slot < len(f.bits) {
						f.bits[slot] |= bits
					}
				}
			}
		case in.Op == OpStore:
			slot := int(in.A)
			if slot < len(f.bits) {
				// What is being stored? A fresh allocation transfers
				// full facts; anything else clears them.
				src := oc.stackSource(code, jt, pc, 0)
				if src >= 0 && (code[src].Op == OpNew || code[src].Op == OpNewArray) {
					f.bits[slot] = FactAll
				} else if src >= 0 && code[src].Op == OpLoad && int(code[src].A) < len(f.bits) {
					f.bits[slot] = f.bits[int(code[src].A)]
				} else if src >= 0 && code[src].Op == OpInvoke {
					f.bits[slot] = oc.calleeReturn(int(code[src].A))
				} else {
					f.bits[slot] = 0
				}
			}
		}
	}
}

func factsEqual(a, b localFacts) bool {
	if a.staticR != b.staticR || a.staticW != b.staticW {
		return false
	}
	for i := range a.bits {
		if a.bits[i] != b.bits[i] {
			return false
		}
	}
	return true
}

func maxLocalSlot(code []Instr) int {
	max := 0
	for _, in := range code {
		if (in.Op == OpLoad || in.Op == OpStore) && int(in.A) > max {
			max = int(in.A)
		}
	}
	return max
}
