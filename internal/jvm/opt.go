package jvm

// This file implements the redundant-barrier-elimination optimization of
// §5.1: "We implement an intraprocedural, flow-sensitive data-flow
// analysis that identifies redundant barriers and removes them. A read
// (or write) barrier is redundant if the object has been read (written),
// or if the object was allocated, along every incoming path."
//
// The analysis tracks, per local-variable slot, whether the object
// currently held by the slot has already passed a read check, a write
// check, or was allocated in this method (allocation implies both: a
// fresh object carries the region's own labels). Facts meet by
// intersection at join points, giving the "along every incoming path"
// semantics. Object operands are traced to their producing instruction by
// backwards stack simulation within the basic block; operands that cannot
// be traced to a local load or a fresh allocation conservatively keep
// their barriers.
//
// Soundness rests on two Laminar invariants: object labels are immutable
// (§4.5) and a security region's labels cannot change during its execution
// (§4.4), so a check that succeeded once holds for the rest of the region.
// Calls do not invalidate facts — a nested region entered by a callee is
// popped again before control returns.

const (
	factRead  = 1 << iota // slot's object has passed a read check
	factWrite             // slot's object has passed a write check
)

// localFacts maps a local slot to its fact bits. Slots absent from the map
// hold unknown objects.
type localFacts struct {
	bits    []uint8
	staticR bool // a static-read check already ran in this region
	staticW bool
}

func newFacts(nLocal int) localFacts {
	return localFacts{bits: make([]uint8, nLocal)}
}

func (f localFacts) clone() localFacts {
	out := localFacts{bits: make([]uint8, len(f.bits)), staticR: f.staticR, staticW: f.staticW}
	copy(out.bits, f.bits)
	return out
}

// meet intersects two fact sets; reports whether the receiver changed.
func (f *localFacts) meet(other localFacts) bool {
	changed := false
	for i := range f.bits {
		nb := f.bits[i] & other.bits[i]
		if nb != f.bits[i] {
			f.bits[i] = nb
			changed = true
		}
	}
	if f.staticR && !other.staticR {
		f.staticR = false
		changed = true
	}
	if f.staticW && !other.staticW {
		f.staticW = false
		changed = true
	}
	return changed
}

// stackSource walks backwards from pc to find the instruction that
// produced the stack value at the given depth (0 = value on top just
// before code[pc] executes). It stays within the basic block — the walk
// stops at branches, calls and join targets (jumpTarget marks them) — and
// returns the producing pc, or -1 when unknown.
func stackSource(code []Instr, jumpTarget []bool, pc, depth int) int {
	want := depth
	for i := pc - 1; i >= 0; i-- {
		in := code[i]
		if in.Op.isJump() || in.Op == OpReturn || in.Op == OpReturnVal || in.Op == OpInvoke {
			return -1 // values across calls/branches are not traced
		}
		if jumpTarget[i+1] {
			// Something jumps to i+1; the values below may come from
			// elsewhere on another path.
			return -1
		}
		pops, pushes := stackEffect(in.Op)
		if pushes > want {
			return i
		}
		want = want - pushes + pops
	}
	return -1
}

// jumpTargets marks every pc that some branch lands on.
func jumpTargets(code []Instr) []bool {
	t := make([]bool, len(code)+1)
	for _, in := range code {
		if in.Op.isJump() && int(in.A) <= len(code) {
			t[in.A] = true
		}
	}
	return t
}

// eliminateRedundant computes which barriers must stay. need starts as the
// all-barriers set from allBarriers.
func eliminateRedundant(code []Instr, need barrierNeed) barrierNeed {
	blocks, blockOf := buildBlocks(code)
	jt := jumpTargets(code)
	nLocal := maxLocalSlot(code) + 1

	in := make([]localFacts, len(blocks))
	out := make([]localFacts, len(blocks))
	for i := range blocks {
		in[i] = newFacts(nLocal)
		out[i] = newFacts(nLocal)
	}
	// Entry block starts with no facts; all others optimistically start
	// "all facts" so the intersection fixpoint converges from above.
	for i := 1; i < len(blocks); i++ {
		for s := range in[i].bits {
			in[i].bits[s] = factRead | factWrite
		}
		in[i].staticR, in[i].staticW = true, true
	}

	// Fixpoint: iterate transfer until stable.
	for changed := true; changed; {
		changed = false
		for bi, b := range blocks {
			f := in[bi].clone()
			transferBlock(code, jt, b, &f, nil)
			if !factsEqual(out[bi], f) {
				out[bi] = f
				changed = true
			}
			for _, succ := range successors(code, b) {
				si := blockOf[succ]
				if in[si].meet(out[bi]) {
					changed = true
				}
			}
		}
	}

	// Final pass: with stable entry facts, mark redundant barriers.
	for bi, b := range blocks {
		f := in[bi].clone()
		transferBlock(code, jt, b, &f, &need)
	}
	return need
}

// block is a half-open instruction range [start, end).
type block struct{ start, end int }

// buildBlocks splits code into basic blocks and maps start pc -> index.
func buildBlocks(code []Instr) ([]block, map[int]int) {
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc, in := range code {
		if in.Op.isJump() {
			leader[in.A] = true
			leader[pc+1] = true
		}
		if in.Op == OpReturn || in.Op == OpReturnVal {
			leader[pc+1] = true
		}
	}
	var blocks []block
	blockOf := make(map[int]int)
	start := 0
	for pc := 1; pc <= len(code); pc++ {
		if pc == len(code) || leader[pc] {
			if start < pc {
				blockOf[start] = len(blocks)
				blocks = append(blocks, block{start, pc})
			}
			start = pc
		}
	}
	return blocks, blockOf
}

// successors lists the start pcs of b's successor blocks.
func successors(code []Instr, b block) []int {
	last := code[b.end-1]
	switch {
	case last.Op == OpReturn || last.Op == OpReturnVal:
		return nil
	case last.Op == OpJmp:
		return []int{int(last.A)}
	case last.Op == OpJmpIf || last.Op == OpJmpIfNot:
		return []int{int(last.A), b.end}
	default:
		if b.end < len(code) {
			return []int{b.end}
		}
		return nil
	}
}

// transferBlock runs the transfer function over a block. When need is
// non-nil, barriers proven redundant are cleared in it.
func transferBlock(code []Instr, jt []bool, b block, f *localFacts, need *barrierNeed) {
	for pc := b.start; pc < b.end; pc++ {
		in := code[pc]
		switch {
		case accessDepth(in.Op) >= 0:
			src := stackSource(code, jt, pc, accessDepth(in.Op))
			bit := uint8(factRead)
			if isWrite(in.Op) {
				bit = factWrite
			}
			switch {
			case src >= 0 && (code[src].Op == OpNew || code[src].Op == OpNewArray):
				// Freshly allocated on this path: always redundant.
				if need != nil {
					need.access[pc] = false
				}
			case src >= 0 && code[src].Op == OpLoad:
				slot := int(code[src].A)
				if slot < len(f.bits) {
					if f.bits[slot]&bit != 0 {
						if need != nil {
							need.access[pc] = false
						}
					}
					f.bits[slot] |= bit
				}
			case src >= 0 && code[src].Op == OpDup:
				// Conservatively keep the barrier; no fact update.
			}
		case in.Op == OpGetStatic:
			if f.staticR && need != nil {
				need.static[pc] = false
			}
			f.staticR = true
		case in.Op == OpPutStatic:
			if f.staticW && need != nil {
				need.static[pc] = false
			}
			f.staticW = true
		case in.Op == OpStore:
			slot := int(in.A)
			if slot < len(f.bits) {
				// What is being stored? A fresh allocation transfers
				// full facts; anything else clears them.
				src := stackSource(code, jt, pc, 0)
				if src >= 0 && (code[src].Op == OpNew || code[src].Op == OpNewArray) {
					f.bits[slot] = factRead | factWrite
				} else if src >= 0 && code[src].Op == OpLoad && int(code[src].A) < len(f.bits) {
					f.bits[slot] = f.bits[int(code[src].A)]
				} else {
					f.bits[slot] = 0
				}
			}
		}
	}
}

func factsEqual(a, b localFacts) bool {
	if a.staticR != b.staticR || a.staticW != b.staticW {
		return false
	}
	for i := range a.bits {
		if a.bits[i] != b.bits[i] {
			return false
		}
	}
	return true
}

func maxLocalSlot(code []Instr) int {
	max := 0
	for _, in := range code {
		if (in.Op == OpLoad || in.Op == OpStore) && int(in.A) > max {
			max = int(in.A)
		}
	}
	return max
}
