package jvm

import (
	"fmt"
	"strings"

	"laminar/internal/difc"
)

// Source renders the program back into the text-assembly format that
// Parse accepts, with synthesized labels at branch targets and invokes by
// callee name. Parse(p.Source()) yields a structurally identical program,
// so the renderer doubles as the parser's round-trip oracle (FuzzParse).
// Only source programs round-trip: compiled variants hold barrier opcodes
// that the assembler deliberately refuses.
func (p *Program) Source() string {
	var b strings.Builder
	if p.NStatics > 0 {
		fmt.Fprintf(&b, "statics %d\n\n", p.NStatics)
	}
	for _, m := range p.Methods {
		if m.Secure != nil {
			fmt.Fprintf(&b, "secure method %s args=%d locals=%d", m.Name, m.NArgs, m.NLocal)
			writeTags(&b, "secrecy", m.Secure.Labels.S)
			writeTags(&b, "integrity", m.Secure.Labels.I)
			writeTags(&b, "plus", m.Secure.Caps.Plus())
			writeTags(&b, "minus", m.Secure.Caps.Minus())
			b.WriteByte('\n')
		} else {
			fmt.Fprintf(&b, "method %s args=%d locals=%d\n", m.Name, m.NArgs, m.NLocal)
		}
		p.writeCode(&b, m.Code, "L")
		if m.Secure != nil && m.Secure.Catch != nil {
			b.WriteString("catch:\n")
			p.writeCode(&b, m.Secure.Catch, "C")
		}
		b.WriteString("end\n\n")
	}
	return b.String()
}

func writeTags(b *strings.Builder, key string, l difc.Label) {
	tags := l.Tags()
	if len(tags) == 0 {
		return
	}
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = fmt.Sprintf("%d", uint64(t))
	}
	fmt.Fprintf(b, " %s=%s", key, strings.Join(parts, ","))
}

// writeCode renders one code block with prefix-named labels at branch
// targets. Branch targets past the end of the block get a trailing label
// line; Parse's assembler accepts a label at the very end of a block.
func (p *Program) writeCode(b *strings.Builder, code []Instr, prefix string) {
	targets := map[int32]bool{}
	for _, in := range code {
		if in.Op.isJump() {
			targets[in.A] = true
		}
	}
	label := func(pc int32) string { return fmt.Sprintf("%s%d", prefix, pc) }
	for pc, in := range code {
		if targets[int32(pc)] {
			fmt.Fprintf(b, "%s:\n", label(int32(pc)))
		}
		switch {
		case in.Op.isJump():
			fmt.Fprintf(b, "    %s %s\n", in.Op, label(in.A))
		case in.Op == OpInvoke:
			name := fmt.Sprintf("m%d", in.A)
			if int(in.A) >= 0 && int(in.A) < len(p.Methods) {
				name = p.Methods[in.A].Name
			}
			fmt.Fprintf(b, "    invoke %s\n", name)
		case hasOperand(in.Op):
			fmt.Fprintf(b, "    %s %d\n", in.Op, in.A)
		default:
			fmt.Fprintf(b, "    %s\n", in.Op)
		}
	}
	if targets[int32(len(code))] {
		fmt.Fprintf(b, "%s:\n", label(int32(len(code))))
	}
}
