package jvm

import (
	"fmt"
	"strings"
)

// Disassemble renders code with pc labels and symbolic branch targets, for
// compiler debugging and golden tests.
func Disassemble(code []Instr) string {
	var b strings.Builder
	targets := map[int32]bool{}
	for _, in := range code {
		if in.Op.isJump() {
			targets[in.A] = true
		}
	}
	for pc, in := range code {
		mark := "  "
		if targets[int32(pc)] {
			mark = "L:"
		}
		switch {
		case in.Op.isJump():
			fmt.Fprintf(&b, "%s%4d  %-12s -> %d\n", mark, pc, in.Op.String(), in.A)
		case hasOperand(in.Op):
			fmt.Fprintf(&b, "%s%4d  %-12s %d\n", mark, pc, in.Op.String(), in.A)
		default:
			fmt.Fprintf(&b, "%s%4d  %s\n", mark, pc, in.Op.String())
		}
	}
	return b.String()
}

// hasOperand reports whether the opcode's A field is meaningful.
func hasOperand(op Op) bool {
	switch op {
	case OpConst, OpLoad, OpStore, OpNew, OpGetField, OpPutField,
		OpGetStatic, OpPutStatic, OpInvoke,
		OpBarrierRead, OpBarrierWrite, OpBarrierOutR, OpBarrierOutW,
		OpBarrierSelR, OpBarrierSelW:
		return true
	}
	return false
}

// Dump renders a whole program: every method's source code and, when
// compiled, each variant — the tool a compiler engineer reaches for first.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, m := range p.Methods {
		kind := ""
		if m.Secure != nil {
			kind = fmt.Sprintf(" secure%v%v", m.Secure.Labels, m.Secure.Caps)
		}
		fmt.Fprintf(&b, "method %s (args=%d locals=%d)%s\n", m.Name, m.NArgs, m.NLocal, kind)
		b.WriteString(Disassemble(m.Code))
		if m.Secure != nil && m.Secure.Catch != nil {
			b.WriteString("  catch:\n")
			b.WriteString(Disassemble(m.Secure.Catch))
		}
		for vi, v := range m.variants {
			if v == nil {
				continue
			}
			ctx := "outside"
			if vi == 1 {
				ctx = "inside"
			}
			fmt.Fprintf(&b, "  compiled (%s, %d instrs):\n", ctx, len(v.code))
			b.WriteString(Disassemble(v.code))
		}
		if m.firstUse != nil {
			fmt.Fprintf(&b, "  compiled (first-use inRegion=%v, %d instrs):\n",
				m.firstUse.inRegion, len(m.firstUse.code))
			b.WriteString(Disassemble(m.firstUse.code))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
