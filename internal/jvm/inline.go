package jvm

// Method inlining. §5.1 notes that the redundant-barrier-elimination pass
// is intraprocedural "but the compiler already inlines small and hot
// methods, increasing the scope of redundancy elimination". This pass
// reproduces that interaction: small leaf methods are spliced into their
// callers before barrier insertion, so accesses that were hidden behind a
// call boundary become visible to the dataflow analysis.
//
// Inlining policy: a callee is inlined when it is (a) not a security
// region (region entry has semantics a splice must not erase), (b) a leaf
// (no OpInvoke — depth-1 inlining keeps the pass simple and bounded),
// and (c) at most inlineMaxSize instructions.

// inlineMaxSize bounds inlinable callee bodies.
const inlineMaxSize = 24

// inlinable reports whether callee may be spliced into a caller.
func inlinable(callee *Method) bool {
	if callee.Secure != nil || len(callee.Code) > inlineMaxSize {
		return false
	}
	for _, in := range callee.Code {
		if in.Op == OpInvoke {
			return false
		}
	}
	return true
}

// inlineCalls returns code with every inlinable call site expanded, plus
// the new local-slot count (each site gets a fresh frame of callee locals
// appended to the caller's) and the old-pc → new-pc map (nil when nothing
// was expanded, so callers can remap per-pc side tables). Jump targets
// are remapped across the expansion, and the callee's returns become
// jumps past the splice.
func (p *Program) inlineCalls(code []Instr, nLocal int, st *compileStats) ([]Instr, int, []int32) {
	// Pass 1: site lengths and new positions.
	siteLen := func(in Instr) int {
		if in.Op != OpInvoke {
			return 0
		}
		callee := p.Methods[in.A]
		if !inlinable(callee) {
			return 0
		}
		// arg stores + body (1:1 length: returns become jumps)
		return callee.NArgs + len(callee.Code)
	}
	newPos := make([]int32, len(code)+1)
	pos := int32(0)
	expanded := false
	for pc, in := range code {
		newPos[pc] = pos
		if n := siteLen(in); n > 0 {
			pos += int32(n)
			expanded = true
		} else {
			pos++
		}
	}
	newPos[len(code)] = pos
	if !expanded {
		return code, nLocal, nil
	}

	// Pass 2: emit with remapping.
	out := make([]Instr, 0, pos)
	for _, in := range code {
		if in.Op.isJump() {
			out = append(out, Instr{Op: in.Op, A: newPos[in.A]})
			continue
		}
		if n := siteLen(in); n > 0 {
			callee := p.Methods[in.A]
			base := int32(nLocal)
			nLocal += callee.NLocal
			st.inlinedCalls++
			// Pop arguments into the inlined frame: the last argument is
			// on top, so it stores to the highest slot first.
			for a := callee.NArgs - 1; a >= 0; a-- {
				out = append(out, Instr{Op: OpStore, A: base + int32(a)})
			}
			bodyStart := int32(len(out))
			end := bodyStart + int32(len(callee.Code))
			for _, ci := range callee.Code {
				switch {
				case ci.Op == OpLoad || ci.Op == OpStore:
					out = append(out, Instr{Op: ci.Op, A: ci.A + base})
				case ci.Op.isJump():
					out = append(out, Instr{Op: ci.Op, A: bodyStart + ci.A})
				case ci.Op == OpReturn || ci.Op == OpReturnVal:
					// A value return leaves its result on the stack,
					// exactly where the caller expects it.
					out = append(out, Instr{Op: OpJmp, A: end})
				default:
					out = append(out, ci)
				}
			}
			continue
		}
		out = append(out, in)
	}
	return out, nLocal, newPos
}
