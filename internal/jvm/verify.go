package jvm

import "fmt"

// VerifyError reports a bytecode verification failure.
type VerifyError struct {
	Method string
	PC     int
	Msg    string
}

// Error formats the failure.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("jvm: verify %s@%d: %s", e.Method, e.PC, e.Msg)
}

// returnsValue reports whether the method returns a value. A method must
// be consistent: mixing OpReturn and OpReturnVal is rejected by Verify.
func (m *Method) returnsValue() bool {
	for _, in := range m.Code {
		if in.Op == OpReturnVal {
			return true
		}
	}
	return false
}

// Verify checks a whole program: stack discipline, branch targets, local
// slot bounds, call indices, and the security-region restrictions of §5.1.
// It also records each method's maximum stack depth for frame allocation.
// Programs must verify before Compile.
//
// Verification is memoized. Mutating a verified program's methods in
// place is a caller error, and an enforced one: the memoized path
// re-fingerprints the method table and returns a VerifyError on mismatch
// instead of silently blessing stale verification state. (Program.Add
// legitimately extends a verified program; it clears the memo so the next
// Verify runs in full.)
func (p *Program) Verify() error {
	if p.verified {
		if fp := p.fingerprint(); fp != p.verifiedFP {
			return &VerifyError{Method: "(program)", PC: 0,
				Msg: "method table mutated after verification; verified state is stale"}
		}
		return nil
	}
	for _, m := range p.Methods {
		if err := p.verifyMethod(m); err != nil {
			return err
		}
	}
	p.verified = true
	p.verifiedFP = p.fingerprint()
	return nil
}

func (p *Program) verifyMethod(m *Method) error {
	if m.NArgs < 0 || m.NLocal < m.NArgs {
		return &VerifyError{m.Name, 0, fmt.Sprintf("bad locals: %d args, %d slots", m.NArgs, m.NLocal)}
	}
	if len(m.Code) == 0 {
		return &VerifyError{m.Name, 0, "empty code"}
	}
	max, err := p.verifyCode(m, m.Code, false)
	if err != nil {
		return err
	}
	m.maxStack = max
	if m.Secure != nil {
		if err := p.verifySecureRestrictions(m); err != nil {
			return err
		}
		if m.Secure.Catch != nil {
			cmax, err := p.verifyCode(m, m.Secure.Catch, true)
			if err != nil {
				return err
			}
			if cmax > m.maxStack {
				m.maxStack = cmax
			}
		}
	}
	return nil
}

// stackEffect returns (pops, pushes) for an instruction; OpInvoke is
// handled by the caller.
func stackEffect(op Op) (int, int) {
	switch op {
	case OpNop, OpJmp, OpReturn:
		return 0, 0
	case OpConst, OpLoad, OpGetStatic, OpNew:
		return 0, 1
	case OpStore, OpPop, OpJmpIf, OpJmpIfNot, OpPutStatic, OpReturnVal:
		return 1, 0
	case OpDup:
		return 1, 2
	case OpAdd, OpSub, OpMul, OpDiv, OpMod,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE:
		return 2, 1
	case OpNeg, OpNewArray, OpGetField, OpArrayLen:
		return 1, 1
	case OpPutField:
		return 2, 0
	case OpALoad:
		return 2, 1
	case OpAStore:
		return 3, 0
	default:
		return 0, 0
	}
}

// verifyCode abstract-interprets stack depth over the CFG, rejecting
// underflow, inconsistent depths at join points, bad targets and bad
// operands. isCatch restricts the terminal to OpReturn.
func (p *Program) verifyCode(m *Method, code []Instr, isCatch bool) (int, error) {
	const unvisited = -1
	depth := make([]int, len(code))
	for i := range depth {
		depth[i] = unvisited
	}
	work := []int{0}
	depth[0] = 0
	maxDepth := 0
	retVal := m.returnsValue()

	flow := func(from, to, d int) error {
		if to < 0 || to >= len(code) {
			return &VerifyError{m.Name, from, fmt.Sprintf("branch target %d out of range", to)}
		}
		if depth[to] == unvisited {
			depth[to] = d
			work = append(work, to)
		} else if depth[to] != d {
			return &VerifyError{m.Name, from, fmt.Sprintf("inconsistent stack depth at join %d: %d vs %d", to, depth[to], d)}
		}
		return nil
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := code[pc]
		d := depth[pc]

		if in.Op.isBarrier() {
			return 0, &VerifyError{m.Name, pc, fmt.Sprintf("barrier opcode %v in source code", in.Op)}
		}
		pops, pushes := stackEffect(in.Op)
		if in.Op == OpInvoke {
			if int(in.A) < 0 || int(in.A) >= len(p.Methods) {
				return 0, &VerifyError{m.Name, pc, fmt.Sprintf("invoke of undefined method %d", in.A)}
			}
			callee := p.Methods[in.A]
			pops = callee.NArgs
			if callee.returnsValue() {
				pushes = 1
			}
		}
		switch in.Op {
		case OpLoad, OpStore:
			if int(in.A) < 0 || int(in.A) >= m.NLocal {
				return 0, &VerifyError{m.Name, pc, fmt.Sprintf("local slot %d out of range", in.A)}
			}
		case OpGetField, OpPutField, OpGetStatic, OpPutStatic, OpNew:
			if in.A < 0 {
				return 0, &VerifyError{m.Name, pc, "negative operand"}
			}
			if (in.Op == OpGetStatic || in.Op == OpPutStatic) && int(in.A) >= p.NStatics {
				return 0, &VerifyError{m.Name, pc, fmt.Sprintf("static slot %d out of range", in.A)}
			}
		case OpReturnVal:
			if retVal && isCatch {
				return 0, &VerifyError{m.Name, pc, "catch block may not return a value"}
			}
			if !retVal {
				return 0, &VerifyError{m.Name, pc, "returnval in void method"}
			}
		case OpReturn:
			if retVal && !isCatch {
				return 0, &VerifyError{m.Name, pc, "void return in value-returning method"}
			}
		}
		if d < pops {
			return 0, &VerifyError{m.Name, pc, fmt.Sprintf("stack underflow: depth %d, need %d", d, pops)}
		}
		nd := d - pops + pushes
		if nd > maxDepth {
			maxDepth = nd
		}
		switch {
		case in.Op == OpReturn || in.Op == OpReturnVal:
			// terminal
		case in.Op == OpJmp:
			if err := flow(pc, int(in.A), nd); err != nil {
				return 0, err
			}
		case in.Op == OpJmpIf || in.Op == OpJmpIfNot:
			if err := flow(pc, int(in.A), nd); err != nil {
				return 0, err
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return 0, err
			}
		default:
			if pc+1 >= len(code) {
				return 0, &VerifyError{m.Name, pc, "control falls off end of code"}
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return 0, err
			}
		}
	}
	return maxDepth, nil
}

// verifySecureRestrictions enforces the §5.1 prototype rules for security
// region methods, which a production system would fold into bytecode
// verification (as we do here):
//
//  1. a secure method returns no value (its region has labels; a return
//     value would leak through the caller's stack);
//  2. its parameters are reference-typed and are only dereferenced —
//     loads of parameter slots must feed field/array accesses or calls,
//     and parameter slots are never stored to;
//  3. it may not contain a value return even on catch paths.
func (p *Program) verifySecureRestrictions(m *Method) error {
	if m.returnsValue() {
		return &VerifyError{m.Name, 0, "security region method returns a value"}
	}
	for pc, in := range m.Code {
		switch in.Op {
		case OpStore:
			if int(in.A) < m.NArgs {
				return &VerifyError{m.Name, pc, fmt.Sprintf("security region writes parameter slot %d", in.A)}
			}
		case OpLoad:
			if int(in.A) < m.NArgs {
				if !derefFollows(m.Code, pc) {
					return &VerifyError{m.Name, pc, fmt.Sprintf("security region reads parameter slot %d as a value (only dereference is allowed)", in.A)}
				}
			}
		}
	}
	return nil
}

// derefFollows reports whether the value pushed at pc is consumed by a
// dereference-style instruction. It scans forward over pushes that stack
// on top (a conservative pattern sufficient for parameter uses like
// "load p; const i; putfield/aload/invoke").
func derefFollows(code []Instr, pc int) bool {
	height := 0 // operands stacked on top of the loaded parameter
	for i := pc + 1; i < len(code); i++ {
		op := code[i].Op
		pops, pushes := stackEffect(op)
		if op == OpInvoke {
			// Calls consume parameters by reference; allowed.
			return true
		}
		if pops > height {
			// This instruction consumes the parameter value.
			switch op {
			case OpGetField, OpPutField, OpALoad, OpAStore, OpArrayLen:
				return true
			default:
				return false
			}
		}
		if op.isJump() || op == OpReturn || op == OpReturnVal {
			return false
		}
		height = height - pops + pushes
	}
	return false
}
