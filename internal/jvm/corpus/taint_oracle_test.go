package corpus_test

// The interpreter-backed leak oracle for the taint lint rules. The three
// rules claim one-sided soundness on this corpus' program shapes: if
// LintTaint reports nothing for a rule family, interpretation must not
// exhibit the corresponding leak. The oracle makes "leak" operational:
//
//   robust-declassification  vary the low-integrity host input (static
//                            slot 0) with the secret fixed; the declass
//                            stream (declassifier region events + every
//                            publication made inside a declassification
//                            context) must not change.
//   transparent-endorsement  vary the secret (main's argument) with the
//                            host input fixed; the endorse stream
//                            (endorser region events + publications made
//                            inside an endorsement context) must not
//                            change.
//   implicit-flow-fanout     vary the secret; the public stream (every
//                            publication made OUTSIDE declassification
//                            and endorsement contexts) must not change.
//
// Publications inside a declassification context are sanctioned secret
// releases and excluded from the public stream; publications inside an
// endorsement context are charged to the endorse stream, where the
// transparent-endorsement rule owns them. The oracle is one-sided by
// design: a finding without an observed leak may be lint imprecision OR
// a leak the three probe inputs cannot distinguish, so only the
// leak-without-finding direction is a hard failure.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"laminar/internal/jvm"
	"laminar/internal/jvm/analysis"
	"laminar/internal/jvm/corpus"
)

// taintRun captures one interpretation of a program under one (secret,
// low-input) assignment.
type taintRun struct {
	verifyErr string
	declass   []string
	endorse   []string
	public    []string
}

func (tr taintRun) key() [3]string {
	return [3]string{
		strings.Join(tr.declass, "\n"),
		strings.Join(tr.endorse, "\n"),
		strings.Join(tr.public, "\n"),
	}
}

// runTaintOracle interprets src under cfg with the given secret (passed
// to each of main's arguments) and low-integrity input (static slot 0),
// and splits the trace into the three streams.
func runTaintOracle(t *testing.T, src string, cfg config, secret, low int64) taintRun {
	t.Helper()
	p, err := jvm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.opts.Interproc {
		if _, err := analysis.Attach(p); err != nil {
			return taintRun{verifyErr: err.Error()}
		}
	}
	mc, err := jvm.NewMachine(p, cfg.opts)
	if err != nil {
		return taintRun{verifyErr: err.Error()}
	}
	mc.Trace = &jvm.TraceLog{}
	mc.TracePubs = true
	mc.MaxInstructions = 200000
	if p.NStatics > 0 {
		mc.SetStatic(0, jvm.IntV(low))
	}
	main, err := p.Lookup("main")
	if err != nil {
		t.Fatalf("lookup main: %v", err)
	}
	args := make([]jvm.Value, main.NArgs)
	for i := range args {
		args[i] = jvm.IntV(secret)
	}
	mc.Call(mc.NewThread(), "main", args...) // errors are themselves part of the trace
	out := taintRun{}
	isD, isE := make(map[string]bool), make(map[string]bool)
	for _, m := range p.Methods {
		isD[m.Name] = analysis.IsDeclassifier(m)
		isE[m.Name] = analysis.IsEndorser(m)
	}
	depthD, depthE := 0, 0
	for _, ev := range mc.Trace.Events {
		f := strings.Fields(ev)
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case "enter", "deny-enter", "exit", "catch":
			if isD[f[1]] {
				out.declass = append(out.declass, ev)
				switch f[0] {
				case "enter":
					depthD++
				case "exit":
					depthD--
				}
			}
			if isE[f[1]] {
				out.endorse = append(out.endorse, ev)
				switch f[0] {
				case "enter":
					depthE++
				case "exit":
					depthE--
				}
			}
		case "pub":
			if depthD > 0 {
				out.declass = append(out.declass, ev)
			}
			if depthE > 0 {
				out.endorse = append(out.endorse, ev)
			}
			if depthD == 0 && depthE == 0 {
				out.public = append(out.public, ev)
			}
		}
	}
	return out
}

// leakReport is the oracle verdict for one program under one config.
type leakReport struct {
	rd, te, fan bool
}

// probeLeaks runs the program under the probe inputs and reports which
// streams the inputs can distinguish.
func probeLeaks(t *testing.T, src string, cfg config) (leakReport, bool) {
	t.Helper()
	r10 := runTaintOracle(t, src, cfg, 1, 0)
	r11 := runTaintOracle(t, src, cfg, 1, 1)
	r00 := runTaintOracle(t, src, cfg, 0, 0)
	r20 := runTaintOracle(t, src, cfg, 2, 0)
	if r10.verifyErr != "" || r11.verifyErr != "" || r00.verifyErr != "" || r20.verifyErr != "" {
		return leakReport{}, false
	}
	var rep leakReport
	rep.rd = strings.Join(r10.declass, "\n") != strings.Join(r11.declass, "\n")
	te0, te1, te2 := strings.Join(r00.endorse, "\n"), strings.Join(r10.endorse, "\n"), strings.Join(r20.endorse, "\n")
	rep.te = te0 != te1 || te1 != te2
	p0, p1, p2 := strings.Join(r00.public, "\n"), strings.Join(r10.public, "\n"), strings.Join(r20.public, "\n")
	rep.fan = p0 != p1 || p1 != p2
	return rep, true
}

func taintRules(src string, t *testing.T) map[string]bool {
	t.Helper()
	p, err := jvm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rules := make(map[string]bool)
	for _, f := range analysis.LintTaint(p) {
		rules[f.Rule] = true
	}
	return rules
}

// assertSound is the one-sided soundness check: an observed leak without
// the matching finding is a missed bug.
func assertSound(t *testing.T, name, src string, cfg config, rep leakReport, rules map[string]bool) {
	t.Helper()
	if rep.rd && !rules[analysis.RuleRobustDeclass] {
		t.Errorf("%s/%s: declass stream varies with low-integrity input but no %s finding\n%s",
			name, cfg.name, analysis.RuleRobustDeclass, src)
	}
	if rep.te && !rules[analysis.RuleTransparentEnd] {
		t.Errorf("%s/%s: endorse stream varies with the secret but no %s finding\n%s",
			name, cfg.name, analysis.RuleTransparentEnd, src)
	}
	if rep.fan && !rules[analysis.RuleImplicitFanout] {
		t.Errorf("%s/%s: public stream varies with the secret but no %s finding\n%s",
			name, cfg.name, analysis.RuleImplicitFanout, src)
	}
}

// TestTaintFixtures pins every taint-corpus fixture to its declared
// expectations: "; EXPECT <rule> <method>@<pc>" lines must match a
// finding exactly, "; EXPECT clean" pins zero findings; and each
// expectation family must correspond to an interpreter-visible leak (or
// its absence) so the fixtures stay true positives/negatives.
func TestTaintFixtures(t *testing.T) {
	all := corpus.Taint()
	if len(all) == 0 {
		t.Fatal("taint corpus is empty")
	}
	sawRule := map[string]bool{}
	for _, name := range corpus.Names(all) {
		src := all[name]
		p, err := jvm.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := p.Verify(); err != nil {
			t.Errorf("%s: verify: %v", name, err)
			continue
		}
		findings := analysis.LintTaint(p)
		got := map[string]bool{}
		for _, f := range findings {
			got[fmt.Sprintf("%s %s@%d", f.Rule, f.Method, f.PC)] = true
			sawRule[f.Rule] = true
		}
		wantClean := false
		var wants []string
		for _, line := range strings.Split(src, "\n") {
			line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), ";"))
			if !strings.HasPrefix(line, "EXPECT ") {
				continue
			}
			w := strings.TrimSpace(strings.TrimPrefix(line, "EXPECT "))
			if w == "clean" {
				wantClean = true
				continue
			}
			wants = append(wants, strings.Join(strings.Fields(w), " "))
		}
		if wantClean && len(findings) != 0 {
			t.Errorf("%s: expected clean, got %v", name, findings)
		}
		if !wantClean && len(wants) == 0 {
			t.Errorf("%s: fixture declares no EXPECT lines", name)
		}
		for _, w := range wants {
			if !got[w] {
				t.Errorf("%s: missing expected finding %q; got %v", name, w, findings)
			}
		}
		// Tie the static verdict to dynamic behavior under every config.
		rules := taintRules(src, t)
		for _, cfg := range configs() {
			rep, ok := probeLeaks(t, src, cfg)
			if !ok {
				t.Errorf("%s/%s: fixture failed to verify", name, cfg.name)
				continue
			}
			assertSound(t, name, src, cfg, rep, rules)
			if wantClean && (rep.rd || rep.te || rep.fan) {
				t.Errorf("%s/%s: clean fixture leaks under interpretation: %+v", name, cfg.name, rep)
			}
		}
	}
	for _, r := range []string{analysis.RuleRobustDeclass, analysis.RuleTransparentEnd, analysis.RuleImplicitFanout} {
		if !sawRule[r] {
			t.Errorf("taint corpus has no true-positive fixture for %s", r)
		}
	}
}

// TestTaintOracleCorpus runs the leak oracle over the positive corpus:
// those programs take no secret arguments, so they must neither leak nor
// lint dirty.
func TestTaintOracleCorpus(t *testing.T) {
	all := corpus.Programs()
	for _, name := range corpus.Names(all) {
		src := all[name]
		if !hasMain(src) {
			continue
		}
		rules := taintRules(src, t)
		if len(rules) != 0 {
			t.Errorf("%s: positive corpus program has taint findings: %v", name, rules)
		}
		for _, cfg := range configs() {
			rep, ok := probeLeaks(t, src, cfg)
			if !ok {
				continue
			}
			assertSound(t, name, src, cfg, rep, rules)
		}
	}
}

// TestTaintOracleRandomized is the main soundness sweep: randomized
// declassify/endorse/publish programs, each interpreted under all nine
// compiler configurations and the probe inputs. Any leak the lint did
// not predict fails the test. Per-rule confusion counts are logged for
// the EXPERIMENTS.md precision/recall table.
func TestTaintOracleRandomized(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	type cell struct{ flaggedLeak, flaggedClean, cleanLeak, cleanClean int }
	stats := map[string]*cell{
		analysis.RuleRobustDeclass:  {},
		analysis.RuleTransparentEnd: {},
		analysis.RuleImplicitFanout: {},
	}
	for i := 0; i < n; i++ {
		src := genTaintProgram(rand.New(rand.NewSource(int64(i))))
		name := fmt.Sprintf("taint-rand-%04d", i)
		p, err := jvm.Parse(src)
		if err != nil {
			t.Fatalf("%s: generated program must parse: %v\n%s", name, err, src)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("%s: generated program must verify: %v\n%s", name, err, src)
		}
		rules := taintRules(src, t)
		var agg leakReport
		for _, cfg := range configs() {
			rep, ok := probeLeaks(t, src, cfg)
			if !ok {
				t.Errorf("%s/%s: generated program failed under config", name, cfg.name)
				continue
			}
			assertSound(t, name, src, cfg, rep, rules)
			agg.rd = agg.rd || rep.rd
			agg.te = agg.te || rep.te
			agg.fan = agg.fan || rep.fan
		}
		for rule, leaked := range map[string]bool{
			analysis.RuleRobustDeclass:  agg.rd,
			analysis.RuleTransparentEnd: agg.te,
			analysis.RuleImplicitFanout: agg.fan,
		} {
			c := stats[rule]
			switch {
			case rules[rule] && leaked:
				c.flaggedLeak++
			case rules[rule]:
				c.flaggedClean++
			case leaked:
				c.cleanLeak++ // soundness failure; assertSound already errored
			default:
				c.cleanClean++
			}
		}
		if t.Failed() {
			t.Logf("failing source for %s:\n%s", name, src)
			return
		}
	}
	for rule, c := range stats {
		t.Logf("%s: flagged+leak=%d flagged-only=%d missed-leak=%d clean=%d",
			rule, c.flaggedLeak, c.flaggedClean, c.cleanLeak, c.cleanClean)
	}
}

// genTaintProgram emits one random declassify/endorse/publish program.
// Static slot 0 is the host's low-integrity input, slots 1-2 are public
// outputs, main's single argument is the secret. The mode picks which
// policy bug (if any) the program embeds; filler helpers add benign
// interprocedural noise.
func genTaintProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("statics 3\n\n")

	nHelpers := r.Intn(3)
	for i := 0; i < nHelpers; i++ {
		fmt.Fprintf(&b, "method th%d args=1 locals=2\n", i)
		for j := 1 + r.Intn(3); j > 0; j-- {
			switch r.Intn(5) {
			case 0:
				b.WriteString("    load 0\n    getfield 0\n    pop\n")
			case 1:
				fmt.Fprintf(&b, "    load 0\n    const %d\n    putfield 0\n", r.Intn(50))
			case 2:
				b.WriteString("    new 1\n    store 1\n    load 1\n    const 7\n    putfield 0\n")
			case 3:
				fmt.Fprintf(&b, "    getstatic %d\n    pop\n", r.Intn(3))
			default:
				fmt.Fprintf(&b, "    const %d\n    putstatic 2\n", r.Intn(9))
			}
		}
		b.WriteString("    return\nend\n\n")
	}

	// mode: 0 clean declass, 1 declass guarded by low input, 2 low data
	// into declassified value, 3 endorse guarded by secret, 4 fanout
	// router, 5 direct secret publish, 6 benign static shuffle, 7 clean
	// endorse.
	mode := r.Intn(8)
	needD := mode <= 2
	needE := mode == 3 || mode == 7
	if needD {
		b.WriteString("secure method dcl args=1 locals=1 minus=1\n")
		b.WriteString("    load 0\n    getfield 0\n    putstatic 1\n    return\nend\n\n")
	}
	if needE {
		b.WriteString("secure method endo args=1 locals=1 integrity=2\n")
		b.WriteString("    load 0\n    const 1\n    putfield 0\n    return\ncatch:\n    return\nend\n\n")
	}

	b.WriteString("method main args=1 locals=2\n")
	b.WriteString("    new 1\n    store 1\n")
	// Benign filler before the mode body: helper calls on the (still
	// secret-free) container and constant publications.
	for j := r.Intn(3); j > 0; j-- {
		if nHelpers > 0 && r.Intn(2) == 0 {
			fmt.Fprintf(&b, "    load 1\n    invoke th%d\n", r.Intn(nHelpers))
		} else {
			fmt.Fprintf(&b, "    const %d\n    putstatic 2\n", r.Intn(9))
		}
	}
	switch mode {
	case 0: // sanctioned: secret into the declassifier, nothing low
		b.WriteString("    load 1\n    load 0\n    putfield 0\n")
		b.WriteString("    load 1\n    invoke dcl\n")
	case 1: // robust-declassification: low input guards the declassify
		b.WriteString("    load 1\n    load 0\n    putfield 0\n")
		b.WriteString("    getstatic 0\n    jmpifnot skip\n")
		b.WriteString("    load 1\n    invoke dcl\nskip:\n")
	case 2: // robust-declassification: low input mixed into the value
		b.WriteString("    load 1\n    getstatic 0\n    load 0\n    add\n    putfield 0\n")
		b.WriteString("    load 1\n    invoke dcl\n")
	case 3: // transparent-endorsement: secret guards the endorse
		b.WriteString("    load 0\n    jmpifnot skip\n")
		b.WriteString("    load 1\n    invoke endo\nskip:\n")
	case 4: // implicit-flow-fanout: the evil router
		b.WriteString("    load 0\n    jmpifnot zero\n")
		b.WriteString("    const 1\n    putstatic 2\n    jmp join\n")
		b.WriteString("zero:\n    const 0\n    putstatic 2\n")
		b.WriteString("join:\n")
	case 5: // implicit-flow-fanout: direct publish of the secret
		b.WriteString("    load 0\n    putstatic 2\n")
	case 6: // benign: public shuffling of the host input only
		b.WriteString("    getstatic 0\n    putstatic 2\n")
		b.WriteString("    const 5\n    putstatic 1\n")
	case 7: // sanctioned: unconditional endorse of a secret-free object
		b.WriteString("    load 1\n    invoke endo\n")
	}
	b.WriteString("    return\nend\n")
	return b.String()
}
