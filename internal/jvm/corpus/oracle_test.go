package corpus_test

// The differential soundness oracle for barrier optimization: every
// program in the corpus — plus a large set of randomized structured
// programs — must behave identically under every compiler configuration.
// "Identically" means: same return value, same error, same final statics,
// same security trace (region entries/exits, denials, catch transfers in
// order), same violation and region counts. Barrier-check counts are the
// one thing allowed to differ, and only monotonically: optimized runs
// check at most as often as unoptimized ones, and interprocedural
// optimization must beat intraprocedural on the call-heavy corpus.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"laminar/internal/jvm"
	"laminar/internal/jvm/analysis"
	"laminar/internal/jvm/corpus"
)

// config is one compiler configuration under test.
type config struct {
	name string
	opts jvm.CompileOptions
}

func configs() []config {
	return []config{
		{"static", jvm.CompileOptions{Mode: jvm.BarrierStatic}},
		{"static-opt", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true}},
		{"static-opt-inline", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true, Inline: true}},
		{"static-interproc", jvm.CompileOptions{Mode: jvm.BarrierStatic, Interproc: true}},
		{"static-interproc-inline", jvm.CompileOptions{Mode: jvm.BarrierStatic, Interproc: true, Inline: true}},
		{"static-tiered", jvm.CompileOptions{Mode: jvm.BarrierStatic, HotThreshold: 2}},
		{"dynamic", jvm.CompileOptions{Mode: jvm.BarrierDynamic}},
		{"dynamic-opt", jvm.CompileOptions{Mode: jvm.BarrierDynamic, Optimize: true}},
		{"dynamic-interproc", jvm.CompileOptions{Mode: jvm.BarrierDynamic, Interproc: true}},
	}
}

// outcome is everything a run may not change across configurations.
type outcome struct {
	verifyErr string
	callErr   string
	ret       string
	statics   string
	trace     string
	violations uint64
	regions    uint64
	checks     uint64 // barrier checks; compared only for monotonicity
}

func renderValue(v jvm.Value) string {
	if !v.IsRef() {
		return fmt.Sprintf("i%d", v.Int())
	}
	o := v.Ref()
	return fmt.Sprintf("ref(labeled=%v,labels=%v,len=%d)", o.IsLabeled(), o.Labels(), o.Len())
}

// run executes src's main under one configuration and captures the
// observable outcome.
func run(t *testing.T, src string, cfg config) outcome {
	t.Helper()
	p, err := jvm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.opts.Interproc {
		if _, err := analysis.Attach(p); err != nil {
			return outcome{verifyErr: err.Error()}
		}
	}
	mc, err := jvm.NewMachine(p, cfg.opts)
	if err != nil {
		return outcome{verifyErr: err.Error()}
	}
	mc.Trace = &jvm.TraceLog{}
	v, callErr := mc.Call(mc.NewThread(), "main")
	var statics []string
	for i := 0; i < p.NStatics; i++ {
		statics = append(statics, renderValue(mc.Static(i)))
	}
	out := outcome{
		ret:        renderValue(v),
		statics:    strings.Join(statics, ";"),
		trace:      strings.Join(mc.Trace.Events, "\n"),
		violations: mc.Stats().Violations,
		regions:    mc.Stats().RegionsEntered,
		checks:     mc.Stats().BarrierChecks,
	}
	if callErr != nil {
		out.callErr = callErr.Error()
	}
	return out
}

// hasMain reports whether the program defines main (lint-only corpus
// entries do not).
func hasMain(src string) bool { return strings.Contains(src, "method main ") }

// checkProgram runs one source under every configuration and compares
// outcomes against the first (unoptimized static) run.
func checkProgram(t *testing.T, name, src string) (base, intra, inter outcome) {
	t.Helper()
	cfgs := configs()
	outs := make([]outcome, len(cfgs))
	for i, cfg := range cfgs {
		outs[i] = run(t, src, cfg)
	}
	for i, cfg := range cfgs[1:] {
		got, want := outs[i+1], outs[0]
		// Verify errors carry no barrier state; they must agree exactly.
		if (got.verifyErr == "") != (want.verifyErr == "") {
			t.Errorf("%s/%s: verify divergence: %q vs %q", name, cfg.name, got.verifyErr, want.verifyErr)
			continue
		}
		if got.verifyErr != "" {
			continue
		}
		if got.callErr != want.callErr {
			t.Errorf("%s/%s: error divergence:\n got %q\nwant %q", name, cfg.name, got.callErr, want.callErr)
		}
		if got.ret != want.ret {
			t.Errorf("%s/%s: return divergence: %s vs %s", name, cfg.name, got.ret, want.ret)
		}
		if got.statics != want.statics {
			t.Errorf("%s/%s: statics divergence:\n got %s\nwant %s", name, cfg.name, got.statics, want.statics)
		}
		if got.trace != want.trace {
			t.Errorf("%s/%s: trace divergence:\n got:\n%s\nwant:\n%s", name, cfg.name, got.trace, want.trace)
		}
		if got.violations != want.violations || got.regions != want.regions {
			t.Errorf("%s/%s: security counters diverge: violations %d/%d regions %d/%d",
				name, cfg.name, got.violations, want.violations, got.regions, want.regions)
		}
	}
	// Monotonicity within the static family.
	if outs[0].verifyErr == "" {
		if outs[1].checks > outs[0].checks {
			t.Errorf("%s: static-opt checks more than unopt: %d > %d", name, outs[1].checks, outs[0].checks)
		}
		if outs[3].checks > outs[1].checks {
			t.Errorf("%s: static-interproc checks more than static-opt: %d > %d", name, outs[3].checks, outs[1].checks)
		}
		if outs[7].checks > outs[6].checks {
			t.Errorf("%s: dynamic-opt checks more than dynamic: %d > %d", name, outs[7].checks, outs[6].checks)
		}
		if outs[8].checks > outs[7].checks {
			t.Errorf("%s: dynamic-interproc checks more than dynamic-opt: %d > %d", name, outs[8].checks, outs[7].checks)
		}
	}
	return outs[0], outs[1], outs[3]
}

func TestOracleCorpus(t *testing.T) {
	var intraTotal, interTotal uint64
	all := corpus.Programs()
	for _, name := range corpus.Names(all) {
		src := all[name]
		if !hasMain(src) {
			t.Errorf("positive corpus program %s has no main", name)
			continue
		}
		_, intra, inter := checkProgram(t, name, src)
		intraTotal += intra.checks
		interTotal += inter.checks
	}
	// The acceptance bar: summed over the call-heavy corpus,
	// interprocedural elimination removes strictly more dynamic checks
	// than the intraprocedural pass.
	if interTotal >= intraTotal {
		t.Errorf("interproc did not beat intraproc over the corpus: %d >= %d", interTotal, intraTotal)
	}
}

func TestOracleNegativeCorpus(t *testing.T) {
	all := corpus.Negative()
	for _, name := range corpus.Names(all) {
		src := all[name]
		if !hasMain(src) {
			continue // lint-only entry
		}
		checkProgram(t, name, src)
	}
}

// TestOracleRandomized differentially tests generated structured
// programs: straight-line bodies with forward branches, helper call
// chains, factories, and optional security regions whose bodies may
// include guaranteed denials (absorbed by their catch blocks).
func TestOracleRandomized(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	for i := 0; i < n; i++ {
		src := genProgram(rand.New(rand.NewSource(int64(i))))
		name := fmt.Sprintf("rand-%04d", i)
		base, _, _ := checkProgram(t, name, src)
		if base.verifyErr != "" {
			t.Errorf("%s: generated program must verify: %v\n%s", name, base.verifyErr, src)
		}
		if t.Failed() {
			t.Logf("failing source for %s:\n%s", name, src)
			return
		}
	}
}

// genProgram emits one random structured program. Generated code is
// verifiable by construction: stack effects balance, branches only jump
// forward to emitted labels, and region bodies respect the §5.1
// parameter rules (parameters are only dereferenced).
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("statics 2\n\n")

	nHelpers := 1 + r.Intn(3)
	returns := make([]bool, nHelpers)
	helperOp := func(i int) string {
		choices := 5
		if i > 0 {
			choices = 6
		}
		switch r.Intn(choices) {
		case 0:
			return "    load 0\n    getfield 0\n    pop\n"
		case 1:
			return fmt.Sprintf("    load 0\n    const %d\n    putfield 0\n", r.Intn(100))
		case 2:
			return "    new 1\n    store 1\n    load 1\n    const 7\n    putfield 0\n"
		case 3:
			return fmt.Sprintf("    getstatic %d\n    pop\n", r.Intn(2))
		case 4:
			return fmt.Sprintf("    const %d\n    putstatic %d\n", r.Intn(50), r.Intn(2))
		default:
			callee := r.Intn(i)
			s := fmt.Sprintf("    load 0\n    invoke h%d\n", callee)
			if returns[callee] {
				s += "    pop\n"
			}
			return s
		}
	}
	for i := 0; i < nHelpers; i++ {
		returns[i] = r.Intn(2) == 0
		fmt.Fprintf(&b, "method h%d args=1 locals=2\n", i)
		for j := 1 + r.Intn(4); j > 0; j-- {
			b.WriteString(helperOp(i))
		}
		if returns[i] {
			switch r.Intn(3) {
			case 0:
				b.WriteString("    load 0\n    getfield 0\n    returnval\n")
			case 1:
				fmt.Fprintf(&b, "    const %d\n    returnval\n", r.Intn(9))
			default:
				b.WriteString("    new 1\n    returnval\n")
			}
		} else {
			b.WriteString("    return\n")
		}
		b.WriteString("end\n\n")
	}

	// Optional security region; its body may contain guaranteed denials,
	// which its catch absorbs — the oracle then checks the denial fires
	// identically under every configuration.
	kind := r.Intn(3) // 0 none, 1 secrecy, 2 integrity
	if kind > 0 {
		attr := "secrecy=1"
		if kind == 2 {
			attr = "integrity=2"
		}
		fmt.Fprintf(&b, "secure method region args=1 locals=2 %s\n", attr)
		for j := 1 + r.Intn(3); j > 0; j-- {
			switch r.Intn(6) {
			case 0:
				b.WriteString("    load 0\n    getfield 0\n    pop\n") // denied in integrity regions
			case 1:
				b.WriteString("    load 0\n    const 5\n    putfield 0\n") // denied in secrecy regions
			case 2:
				b.WriteString("    new 1\n    store 1\n    load 1\n    getfield 0\n    pop\n")
			case 3:
				b.WriteString("    getstatic 0\n    pop\n") // denied in integrity regions
			case 4:
				b.WriteString("    const 3\n    putstatic 1\n") // denied in secrecy regions
			default:
				callee := r.Intn(nHelpers)
				b.WriteString(fmt.Sprintf("    load 0\n    invoke h%d\n", callee))
				if returns[callee] {
					b.WriteString("    pop\n")
				}
			}
		}
		b.WriteString("    return\ncatch:\n    return\nend\n\n")
	}

	b.WriteString("method main args=0 locals=2\n")
	b.WriteString("    new 1\n    store 0\n")
	fmt.Fprintf(&b, "    load 0\n    const %d\n    putfield 0\n", r.Intn(100))
	if r.Intn(2) == 0 {
		// A diamond join over a static-controlled branch.
		b.WriteString("    getstatic 0\n    jmpif dyes\n")
		b.WriteString("    load 0\n    const 1\n    putfield 0\n    jmp djoin\n")
		b.WriteString("dyes:\n    load 0\n    const 2\n    putfield 0\n")
		b.WriteString("djoin:\n")
	}
	for j := 1 + r.Intn(3); j > 0; j-- {
		callee := r.Intn(nHelpers)
		fmt.Fprintf(&b, "    load 0\n    invoke h%d\n", callee)
		if returns[callee] {
			b.WriteString("    pop\n")
		}
	}
	if kind > 0 {
		b.WriteString("    load 0\n    invoke region\n")
	}
	b.WriteString("    load 0\n    getfield 0\n    returnval\nend\n")
	return b.String()
}

// TestLintFlagsEveryRuntimeDenial is the no-false-negative check: every
// negative-corpus program whose execution the runtime denies must carry
// at least one non-advisory lint finding, and the finding's rule must
// match the denial the program was built to exhibit.
func TestLintFlagsEveryRuntimeDenial(t *testing.T) {
	wantRule := map[string]string{
		"static_write_secrecy.mjvm":  "region-static-write-secrecy",
		"static_read_integrity.mjvm": "region-static-read-integrity",
		"outer_write.mjvm":           "region-outer-write",
		"outer_read.mjvm":            "region-outer-read",
		"ref_escape.mjvm":            "region-ref-escape",
		"param_write.mjvm":           "region-param-write",
		"no_exit.mjvm":               "region-no-exit",
	}
	all := corpus.Negative()
	if len(all) != len(wantRule) {
		t.Errorf("negative corpus has %d entries, rule table has %d", len(all), len(wantRule))
	}
	for _, name := range corpus.Names(all) {
		src := all[name]
		p, err := jvm.Parse(src)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		findings := analysis.Lint(p)
		rules := map[string]bool{}
		hard := 0
		for _, f := range findings {
			rules[f.Rule] = true
			if !f.Advisory {
				hard++
			}
		}
		if hard == 0 {
			t.Errorf("%s: no non-advisory lint finding (false negative)", name)
		}
		if want := wantRule[name]; want != "" && !rules[want] {
			t.Errorf("%s: missing expected rule %s; got %v", name, want, findings)
		}
		// Tie the static verdict to dynamic behavior: runnable entries
		// must actually be denied at runtime.
		if hasMain(src) {
			out := run(t, src, config{"dynamic", jvm.CompileOptions{Mode: jvm.BarrierDynamic}})
			denied := out.violations > 0 || out.callErr != "" || out.verifyErr != ""
			if !denied {
				t.Errorf("%s: ran clean under dynamic barriers; negative corpus entry proves nothing", name)
			}
		}
	}
}

// TestPositiveCorpusLintClean pins the positive corpus (and the example
// programs the CI vet gate covers) to zero lint findings.
func TestPositiveCorpusLintClean(t *testing.T) {
	all := corpus.Programs()
	for _, name := range corpus.Names(all) {
		p, err := jvm.Parse(all[name])
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := p.Verify(); err != nil {
			t.Errorf("%s: verify: %v", name, err)
		}
		if findings := analysis.Lint(p); len(findings) != 0 {
			t.Errorf("%s: unexpected findings: %v", name, findings)
		}
	}
}
