// Package corpus embeds the golden MiniJVM program corpus shared by the
// differential oracle tests, the barrier-reduction benchmark
// (laminar-bench -barriers), and the laminar-vet CI gate.
//
// progs/ holds positive programs: they verify, run deterministically
// under every compiler configuration, are lint-clean, and are
// call-heavy on purpose so interprocedural barrier elimination has
// something to prove. negative/ holds region-restriction violations:
// each is flagged by the static lint, and the runnable ones trigger the
// corresponding runtime denial so tests can tie the static finding to
// the dynamic behavior it predicts. taint/ holds the policy-invariant
// corpus for the interprocedural taint rules (robust-declassification,
// transparent-endorsement, implicit-flow-fanout): files named *_bad_*
// are true positives pinned to a method@pc, the rest must lint clean.
package corpus

import (
	"embed"
	"io/fs"
	"path"
	"sort"
)

//go:embed progs/*.mjvm negative/*.mjvm taint/*.mjvm
var files embed.FS

func read(dir string) map[string]string {
	out := make(map[string]string)
	entries, err := fs.ReadDir(files, dir)
	if err != nil {
		panic(err) // embedded FS: unreachable unless the build is broken
	}
	for _, e := range entries {
		data, err := fs.ReadFile(files, path.Join(dir, e.Name()))
		if err != nil {
			panic(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// Programs returns the positive corpus, keyed by file name.
func Programs() map[string]string { return read("progs") }

// Negative returns the region-violation corpus, keyed by file name.
func Negative() map[string]string { return read("negative") }

// Taint returns the policy-invariant corpus for the taint rules, keyed
// by file name.
func Taint() map[string]string { return read("taint") }

// Names returns sorted keys, for deterministic iteration in tests and
// benchmarks.
func Names(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
