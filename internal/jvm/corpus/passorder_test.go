package corpus_test

// Pass-ordering differential test: the compiler's pre-insertion passes
// (inline, peephole, opt) may be scheduled in any order without changing
// observable semantics. Orders differ in how much they optimize — an
// "opt" placed before "inline" never sees the spliced callee bodies and
// keeps all their barriers — but every order must produce the same
// return value, statics, security trace, and denial behavior, and no
// order may check more often than the unoptimized baseline.

import (
	"math/rand"
	"testing"

	"laminar/internal/jvm"
	"laminar/internal/jvm/corpus"
)

// passOrders is every permutation of the three pre-insertion passes.
func passOrders() [][]string {
	return [][]string{
		{"inline", "peephole", "opt"}, // default
		{"inline", "opt", "peephole"},
		{"peephole", "inline", "opt"},
		{"peephole", "opt", "inline"},
		{"opt", "inline", "peephole"},
		{"opt", "peephole", "inline"},
	}
}

func TestPassOrderDifferential(t *testing.T) {
	optionSets := []config{
		{"static-opt-inline", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true, Inline: true}},
		{"static-interproc-inline", jvm.CompileOptions{Mode: jvm.BarrierStatic, Interproc: true, Inline: true}},
		{"dynamic-opt-inline", jvm.CompileOptions{Mode: jvm.BarrierDynamic, Optimize: true, Inline: true}},
	}
	all := corpus.Programs()
	for _, name := range corpus.Names(all) {
		src := all[name]
		if !hasMain(src) {
			continue
		}
		baseline := run(t, src, config{"static", jvm.CompileOptions{Mode: jvm.BarrierStatic}})
		for _, set := range optionSets {
			var want outcome
			for i, order := range passOrders() {
				opts := set.opts
				opts.PassOrder = order
				got := run(t, src, config{set.name, opts})
				if got.verifyErr != "" {
					t.Errorf("%s/%s/%v: verify: %v", name, set.name, order, got.verifyErr)
					continue
				}
				if got.checks > baseline.checks {
					t.Errorf("%s/%s/%v: checks exceed unoptimized baseline: %d > %d",
						name, set.name, order, got.checks, baseline.checks)
				}
				if i == 0 {
					want = got
					continue
				}
				if got.callErr != want.callErr || got.ret != want.ret ||
					got.statics != want.statics || got.trace != want.trace ||
					got.violations != want.violations || got.regions != want.regions {
					t.Errorf("%s/%s: order %v diverges from default order:\n got %+v\nwant %+v",
						name, set.name, order, got, want)
				}
			}
		}
	}
}

// TestPassOrderRandomized extends the permutation check to generated
// programs, which exercise region denial paths the curated corpus keeps
// clean.
func TestPassOrderRandomized(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 25
	}
	orders := passOrders()
	for i := 0; i < n; i++ {
		src := genProgram(rand.New(rand.NewSource(int64(i))))
		var want outcome
		for j, order := range orders {
			got := run(t, src, config{"randorder", jvm.CompileOptions{
				Mode: jvm.BarrierStatic, Optimize: true, Inline: true, PassOrder: order,
			}})
			if j == 0 {
				want = got
				continue
			}
			if got.callErr != want.callErr || got.ret != want.ret ||
				got.statics != want.statics || got.trace != want.trace ||
				got.violations != want.violations {
				t.Errorf("seed %d: order %v diverges:\n got %+v\nwant %+v\nsource:\n%s",
					i, order, got, want, src)
				return
			}
		}
	}
}
