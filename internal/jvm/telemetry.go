package jvm

import "laminar/internal/telemetry"

// PublishTelemetry folds the machine's compile-time barrier decisions
// (PR 3's kept/elided counts) and run-time security counters into rec's
// free-form metric series. It is a snapshot-time fold, called once per
// machine at the end of a run (bench and eval harnesses do this) — never
// from the interpreter loop — so it cannot perturb the differential
// oracle's configuration-invariant traces. No-op when telemetry is off.
func (mc *Machine) PublishTelemetry(rec *telemetry.Recorder) {
	if rec == nil || !rec.Active() {
		return
	}
	cr := mc.CompileReport()
	rs := mc.Stats()
	add := func(name string, n uint64) {
		if n > 0 {
			rec.M.Extra.Get(name).Add(0, n)
		}
	}
	add("jvm.methods.compiled", uint64(cr.Methods))
	add("jvm.barriers.emitted", uint64(cr.BarriersEmitted))
	add("jvm.barriers.elided", uint64(cr.BarriersElided))
	add("jvm.calls.inlined", uint64(cr.InlinedCalls))
	add("jvm.barrier.checks", rs.BarrierChecks)
	add("jvm.context.checks", rs.ContextChecks)
	add("jvm.regions.entered", rs.RegionsEntered)
	add("jvm.violations", rs.Violations)
}
