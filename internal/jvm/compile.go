package jvm

import "fmt"

// BarrierMode selects the compiler's barrier strategy (§5.1, §6.1).
type BarrierMode int

// Barrier modes.
const (
	// BarrierNone is the unmodified-VM baseline: no barriers, no labels.
	BarrierNone BarrierMode = iota
	// BarrierStatic compiles barriers whose in/out-of-region context is
	// known at compile time, cloning methods reachable from both contexts
	// (the production design; also the cost of the paper's prototype when
	// every method is reached from one context).
	BarrierStatic
	// BarrierDynamic emits barriers that test the thread's context at run
	// time, for methods called both inside and outside regions without
	// cloning. ~3× the static barrier cost in the paper.
	BarrierDynamic
)

// String names the mode.
func (m BarrierMode) String() string {
	switch m {
	case BarrierNone:
		return "none"
	case BarrierStatic:
		return "static"
	case BarrierDynamic:
		return "dynamic"
	default:
		return "?"
	}
}

// CloneMode selects how BarrierStatic handles methods invoked from both
// inside and outside security regions.
type CloneMode int

// Clone modes.
const (
	// CloneBoth compiles a variant per context on demand (production
	// design, method cloning; §5.1).
	CloneBoth CloneMode = iota
	// FirstUse freezes the context observed at a method's first
	// execution, as the paper's prototype does; invoking the method from
	// the other context later is an error.
	FirstUse
)

// CompileOptions configures the baseline compiler.
type CompileOptions struct {
	Mode BarrierMode
	// Optimize enables the redundant-barrier-elimination dataflow pass.
	Optimize bool
	// Inline splices small leaf methods into callers before barrier
	// insertion, widening the optimizer's intraprocedural scope (§5.1).
	Inline bool
	// Clone selects static-mode handling of dual-context methods.
	Clone CloneMode
	// HotThreshold enables tiered recompilation: a method invoked this
	// many times is recompiled at the higher optimization level (with
	// redundant-barrier elimination and inlining), reusing its original
	// barrier-context decision — "subsequent recompilation at higher
	// optimization levels reuses this decision" (§5.1). 0 disables.
	HotThreshold int
}

// compiledMethod is an executable method variant.
type compiledMethod struct {
	method   *Method
	code     []Instr
	catch    []Instr
	maxStack int
	nLocal   int
	inRegion bool

	// Tiered-recompilation state: invocation count and whether this
	// variant is already the optimized tier.
	invocations int
	optimized   bool
}

// compileStats counts compiler work, feeding the compilation-time
// experiment in §6.1.
type compileStats struct {
	methodsCompiled int
	instrsIn        int
	instrsOut       int
	barriersEmitted int
	barriersElided  int
	inlinedCalls    int
	instrsFolded    int
}

// accessInfo describes a heap-access opcode's object operand depth at
// barrier time (before the access pops anything), or -1 for non-access
// ops.
func accessDepth(op Op) int {
	switch op {
	case OpGetField, OpArrayLen:
		return 0
	case OpPutField, OpALoad:
		return 1
	case OpAStore:
		return 2
	default:
		return -1
	}
}

func isRead(op Op) bool  { return op == OpGetField || op == OpALoad || op == OpArrayLen }
func isWrite(op Op) bool { return op == OpPutField || op == OpAStore }

// compile produces the executable variant of m for the given context.
// Secure-method bodies are always "inside" — the compiler knows a region
// method's context statically even in dynamic mode.
func (p *Program) compile(m *Method, opts CompileOptions, inRegion bool, st *compileStats) *compiledMethod {
	st.methodsCompiled++
	st.instrsIn += len(m.Code)
	cm := &compiledMethod{method: m, inRegion: inRegion, maxStack: m.maxStack, nLocal: m.NLocal}
	src := m.Code
	if opts.Inline {
		src, cm.nLocal = p.inlineCalls(m, st)
		// maxStack is a capacity hint for the frame; inlined bodies stack
		// on top of the caller's operands.
		cm.maxStack = m.maxStack + 8
	}
	if opts.Mode == BarrierNone {
		// The unmodified baseline still runs the codegen pass (copy +
		// branch fixup) with zero insertions, so compile-time ratios
		// compare barrier work against a real compiler pass rather than
		// against a no-op.
		empty := barrierNeed{
			access: make([]bool, len(src)),
			static: make([]bool, len(src)),
			alloc:  make([]bool, len(src)),
		}
		cm.code = p.insertBarriers(src, empty, false, false, st)
		if m.Secure != nil && m.Secure.Catch != nil {
			emptyC := barrierNeed{
				access: make([]bool, len(m.Secure.Catch)),
				static: make([]bool, len(m.Secure.Catch)),
				alloc:  make([]bool, len(m.Secure.Catch)),
			}
			cm.catch = p.insertBarriers(m.Secure.Catch, emptyC, false, false, st)
		}
		st.instrsOut += len(cm.code) + len(cm.catch)
		return cm
	}
	dynamic := opts.Mode == BarrierDynamic && m.Secure == nil
	if opts.Optimize {
		var folded int
		src, folded = peephole(src)
		st.instrsFolded += folded
	}
	need := allBarriers(src)
	if opts.Optimize {
		before := countBarriers(need)
		need = eliminateRedundant(src, need)
		st.barriersElided += before - countBarriers(need)
	}
	cm.code = p.insertBarriers(src, need, inRegion, dynamic, st)
	if dynamic || opts.Mode == BarrierDynamic {
		cm.maxStack++ // OpInRegion pushes a temporary
	}
	if m.Secure != nil && m.Secure.Catch != nil {
		// Catch blocks run with the region's labels in force.
		catchNeed := allBarriers(m.Secure.Catch)
		if opts.Optimize {
			catchNeed = eliminateRedundant(m.Secure.Catch, catchNeed)
		}
		cm.catch = p.insertBarriers(m.Secure.Catch, catchNeed, true, false, st)
	}
	if err := p.validateCompiled(m, cm.code); err != nil {
		panic(err) // compiler bug, not a program error
	}
	if cm.catch != nil {
		if err := p.validateCompiled(m, cm.catch); err != nil {
			panic(err)
		}
	}
	st.instrsOut += len(cm.code) + len(cm.catch)
	return cm
}

// barrierNeed records which source sites keep their barriers.
type barrierNeed struct {
	access []bool // heap accesses (indexed by pc)
	static []bool // static variable accesses
	alloc  []bool // allocation labeling barriers
}

func countBarriers(n barrierNeed) int {
	c := 0
	for _, b := range n.access {
		if b {
			c++
		}
	}
	for _, b := range n.static {
		if b {
			c++
		}
	}
	return c
}

func allBarriers(code []Instr) barrierNeed {
	n := barrierNeed{
		access: make([]bool, len(code)),
		static: make([]bool, len(code)),
		alloc:  make([]bool, len(code)),
	}
	for pc, in := range code {
		if accessDepth(in.Op) >= 0 {
			n.access[pc] = true
		}
		if in.Op == OpGetStatic || in.Op == OpPutStatic {
			n.static[pc] = true
		}
		if in.Op == OpNew || in.Op == OpNewArray {
			n.alloc[pc] = true
		}
	}
	return n
}

// insertLen returns how many instructions the barrier sequence for a
// source instruction occupies, excluding the instruction itself.
func insertLen(in Instr, need barrierNeed, pc int, dynamic bool) int {
	switch {
	case accessDepth(in.Op) >= 0 && need.access[pc]:
		if dynamic {
			// inregion, barrier.sel — the select barrier consumes the
			// context flag and applies the matching check, modeling the
			// paper's inlined conditional barrier.
			return 2
		}
		return 1
	case (in.Op == OpGetStatic || in.Op == OpPutStatic) && need.static[pc]:
		if dynamic {
			// inregion, jmpifnot(skip), barrier.static
			return 3
		}
		return 1
	default:
		return 0
	}
}

// allocSuffixLen returns the instruction count emitted after an
// allocation for its labeling barrier.
func allocSuffixLen(in Instr, need barrierNeed, pc int, dynamic, inRegion bool) int {
	if (in.Op != OpNew && in.Op != OpNewArray) || !need.alloc[pc] {
		return 0
	}
	if dynamic {
		// inregion, jmpifnot(skip), barrier.alloc
		return 3
	}
	if inRegion {
		return 1
	}
	return 0
}

// validateCompiled is the compiler's downstream pass: an abstract stack
// simulation over the *emitted* code (barrier opcodes included) asserting
// the insertion pass preserved stack discipline and branch targets. Its
// cost is proportional to output size, so barrier expansion shows up in
// compilation time exactly as inlining bloat does in the paper's JIT
// (§6.1: "we instruct the compiler to inline the barriers aggressively,
// which bloats the code and slows downstream optimizations").
func (p *Program) validateCompiled(m *Method, code []Instr) error {
	const unvisited = -1
	depth := make([]int, len(code))
	for i := range depth {
		depth[i] = unvisited
	}
	work := make([]int, 0, 16)
	work = append(work, 0)
	depth[0] = 0
	flow := func(from, to, d int) error {
		if to < 0 || to >= len(code) {
			return fmt.Errorf("jvm: compiled %s: branch target %d out of range (from %d)", m.Name, to, from)
		}
		if depth[to] == unvisited {
			depth[to] = d
			work = append(work, to)
		} else if depth[to] != d {
			return fmt.Errorf("jvm: compiled %s: inconsistent stack depth at %d", m.Name, to)
		}
		return nil
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := code[pc]
		d := depth[pc]
		var pops, pushes int
		switch in.Op {
		case OpBarrierRead, OpBarrierWrite, OpBarrierOutR, OpBarrierOutW, OpBarrierAlloc:
			if d <= int(in.A) {
				return fmt.Errorf("jvm: compiled %s: barrier at %d peeks depth %d with stack %d", m.Name, pc, in.A, d)
			}
		case OpBarrierSelR, OpBarrierSelW:
			pops = 1 // consumes the OpInRegion flag
			if d-1 <= int(in.A) {
				return fmt.Errorf("jvm: compiled %s: select barrier at %d peeks depth %d with stack %d", m.Name, pc, in.A, d-1)
			}
		case OpBarrierStaticR, OpBarrierStaticW:
			// no stack effect
		case OpInRegion:
			pushes = 1
		case OpInvoke:
			callee := p.Methods[in.A]
			pops = callee.NArgs
			if callee.returnsValue() {
				pushes = 1
			}
		default:
			pops, pushes = stackEffect(in.Op)
		}
		if d < pops {
			return fmt.Errorf("jvm: compiled %s: stack underflow at %d", m.Name, pc)
		}
		nd := d - pops + pushes
		switch {
		case in.Op == OpReturn || in.Op == OpReturnVal:
		case in.Op == OpJmp:
			if err := flow(pc, int(in.A), nd); err != nil {
				return err
			}
		case in.Op == OpJmpIf || in.Op == OpJmpIfNot:
			if err := flow(pc, int(in.A), nd); err != nil {
				return err
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return err
			}
		default:
			if pc+1 >= len(code) {
				return fmt.Errorf("jvm: compiled %s: falls off end", m.Name)
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return err
			}
		}
	}
	return nil
}

// insertBarriers rewrites code with barrier sequences and remaps branch
// targets — the address-relocation pass every barrier-inserting compiler
// needs.
func (p *Program) insertBarriers(code []Instr, need barrierNeed, inRegion, dynamic bool, st *compileStats) []Instr {
	// Pass 1: compute the new position of every source instruction.
	newPos := make([]int32, len(code)+1)
	pos := int32(0)
	for pc, in := range code {
		newPos[pc] = pos + int32(insertLen(in, need, pc, dynamic))
		pos = newPos[pc] + 1 + int32(allocSuffixLen(in, need, pc, dynamic, inRegion))
	}
	newPos[len(code)] = pos

	// Pass 2: emit.
	out := make([]Instr, 0, pos)
	for pc, in := range code {
		depth := accessDepth(in.Op)
		switch {
		case depth >= 0 && need.access[pc]:
			read := isRead(in.Op)
			if dynamic {
				sel := OpBarrierSelR
				if !read {
					sel = OpBarrierSelW
				}
				out = append(out,
					Instr{Op: OpInRegion},
					Instr{Op: sel, A: int32(depth)},
				)
			} else if inRegion {
				op := OpBarrierRead
				if !read {
					op = OpBarrierWrite
				}
				out = append(out, Instr{Op: op, A: int32(depth)})
			} else {
				op := OpBarrierOutR
				if !read {
					op = OpBarrierOutW
				}
				out = append(out, Instr{Op: op, A: int32(depth)})
			}
			st.barriersEmitted++
		case (in.Op == OpGetStatic || in.Op == OpPutStatic) && need.static[pc]:
			op := OpBarrierStaticR
			if in.Op == OpPutStatic {
				op = OpBarrierStaticW
			}
			if dynamic {
				base := int32(len(out))
				out = append(out,
					Instr{Op: OpInRegion},
					Instr{Op: OpJmpIfNot, A: base + 3},
					Instr{Op: op},
				)
				st.barriersEmitted++
			} else if inRegion {
				out = append(out, Instr{Op: op})
				st.barriersEmitted++
			}
			// Outside regions statics are unrestricted: no barrier.
		}

		// The instruction itself, with branch targets remapped.
		emitted := in
		if in.Op.isJump() {
			emitted.A = newPos[in.A]
		}
		out = append(out, emitted)

		// Allocation labeling runs after the object is on the stack.
		if (in.Op == OpNew || in.Op == OpNewArray) && need.alloc[pc] {
			if dynamic {
				base := int32(len(out))
				out = append(out,
					Instr{Op: OpInRegion},
					Instr{Op: OpJmpIfNot, A: base + 3},
					Instr{Op: OpBarrierAlloc},
				)
				st.barriersEmitted++
			} else if inRegion {
				out = append(out, Instr{Op: OpBarrierAlloc})
				st.barriersEmitted++
			}
		}
	}
	return out
}

// variantFor returns (compiling on demand) the executable variant of m for
// the given context, honoring the clone mode. It is called by the
// interpreter at invoke time, mirroring JIT-on-first-execution. With
// HotThreshold set, hot variants are recompiled at the optimizing tier
// while keeping their original barrier-context decision.
func (p *Program) variantFor(m *Method, opts CompileOptions, inRegion bool, st *compileStats) (*compiledMethod, error) {
	if m.Secure != nil {
		inRegion = true // region bodies are always inside
	}
	if opts.Mode == BarrierStatic && opts.Clone == FirstUse && m.Secure == nil {
		if m.firstUse == nil {
			m.firstUse = p.compile(m, opts, inRegion, st)
		} else if m.firstUse.inRegion != inRegion {
			return nil, fmt.Errorf("jvm: method %s compiled for inRegion=%v but invoked with inRegion=%v (first-execution-context prototype limitation, §5.1)", m.Name, m.firstUse.inRegion, inRegion)
		}
		return p.maybeRecompileHot(m, &m.firstUse, opts, st), nil
	}
	idx := 0
	if inRegion {
		idx = 1
	}
	if opts.Mode == BarrierDynamic && m.Secure == nil {
		idx = 0 // single dynamic variant
	}
	if m.variants[idx] == nil {
		m.variants[idx] = p.compile(m, opts, inRegion, st)
	}
	return p.maybeRecompileHot(m, &m.variants[idx], opts, st), nil
}

// maybeRecompileHot bumps the variant's invocation count and, past the
// threshold, replaces it with an optimized recompilation that reuses the
// original in/out-of-region decision.
func (p *Program) maybeRecompileHot(m *Method, slot **compiledMethod, opts CompileOptions, st *compileStats) *compiledMethod {
	cm := *slot
	if opts.HotThreshold <= 0 || cm.optimized {
		return cm
	}
	cm.invocations++
	if cm.invocations < opts.HotThreshold {
		return cm
	}
	hot := opts
	hot.Optimize = true
	hot.Inline = true
	ncm := p.compile(m, hot, cm.inRegion, st)
	ncm.optimized = true
	*slot = ncm
	return ncm
}

// ResetCompilation discards all compiled variants (between benchmark
// configurations).
func (p *Program) ResetCompilation() {
	for _, m := range p.Methods {
		m.variants = [2]*compiledMethod{}
		m.firstUse = nil
	}
}

// CompileAll eagerly compiles every method (both variants for dual-context
// static mode) and returns compiler work statistics — the §6.1
// compilation-time experiment.
func (p *Program) CompileAll(opts CompileOptions) (CompileReport, error) {
	if err := p.Verify(); err != nil {
		return CompileReport{}, err
	}
	st := &compileStats{}
	for _, m := range p.Methods {
		if m.Secure != nil || opts.Mode != BarrierStatic || opts.Clone == FirstUse {
			if _, err := p.variantFor(m, opts, false, st); err != nil {
				return CompileReport{}, err
			}
			continue
		}
		if _, err := p.variantFor(m, opts, false, st); err != nil {
			return CompileReport{}, err
		}
		if _, err := p.variantFor(m, opts, true, st); err != nil {
			return CompileReport{}, err
		}
	}
	return CompileReport{
		Methods:         st.methodsCompiled,
		InstrsIn:        st.instrsIn,
		InstrsOut:       st.instrsOut,
		BarriersEmitted: st.barriersEmitted,
		BarriersElided:  st.barriersElided,
		InlinedCalls:    st.inlinedCalls,
	}, nil
}

// CompileReport summarizes compiler work.
type CompileReport struct {
	Methods         int
	InstrsIn        int
	InstrsOut       int
	BarriersEmitted int
	BarriersElided  int
	InlinedCalls    int
}
