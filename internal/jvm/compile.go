package jvm

import "fmt"

// BarrierMode selects the compiler's barrier strategy (§5.1, §6.1).
type BarrierMode int

// Barrier modes.
const (
	// BarrierNone is the unmodified-VM baseline: no barriers, no labels.
	BarrierNone BarrierMode = iota
	// BarrierStatic compiles barriers whose in/out-of-region context is
	// known at compile time, cloning methods reachable from both contexts
	// (the production design; also the cost of the paper's prototype when
	// every method is reached from one context).
	BarrierStatic
	// BarrierDynamic emits barriers that test the thread's context at run
	// time, for methods called both inside and outside regions without
	// cloning. ~3× the static barrier cost in the paper.
	BarrierDynamic
)

// String names the mode.
func (m BarrierMode) String() string {
	switch m {
	case BarrierNone:
		return "none"
	case BarrierStatic:
		return "static"
	case BarrierDynamic:
		return "dynamic"
	default:
		return "?"
	}
}

// CloneMode selects how BarrierStatic handles methods invoked from both
// inside and outside security regions.
type CloneMode int

// Clone modes.
const (
	// CloneBoth compiles a variant per context on demand (production
	// design, method cloning; §5.1).
	CloneBoth CloneMode = iota
	// FirstUse freezes the context observed at a method's first
	// execution, as the paper's prototype does; invoking the method from
	// the other context later is an error.
	FirstUse
)

// CompileOptions configures the baseline compiler.
type CompileOptions struct {
	Mode BarrierMode
	// Optimize enables the redundant-barrier-elimination dataflow pass.
	Optimize bool
	// Interproc additionally consumes the whole-program summaries
	// attached by internal/jvm/analysis (Program.SetInterproc): entry
	// facts let callees skip re-checking arguments proven checked at
	// every call site, callee summaries let callers skip re-checking
	// objects the callee checked, and proven barrier-free methods skip
	// insertion entirely. Implies Optimize; requires CloneBoth in static
	// mode (host entries compile a separate conservative variant, which
	// the single first-use slot cannot represent).
	Interproc bool
	// Inline splices small leaf methods into callers before barrier
	// insertion, widening the optimizer's intraprocedural scope (§5.1).
	Inline bool
	// Clone selects static-mode handling of dual-context methods.
	Clone CloneMode
	// HotThreshold enables tiered recompilation: a method invoked this
	// many times is recompiled at the higher optimization level (with
	// redundant-barrier elimination and inlining), reusing its original
	// barrier-context decision — "subsequent recompilation at higher
	// optimization levels reuses this decision" (§5.1). 0 disables.
	HotThreshold int
	// PassOrder schedules the pre-insertion passes. Valid names are
	// "inline", "peephole" and "opt"; nil means the default order
	// (inline, peephole, opt). A pass only runs when its option is
	// enabled. Any order is semantically equivalent — earlier "opt"
	// placements just analyze less-transformed code and may keep more
	// barriers (inlined bodies spliced after "opt" keep all of theirs).
	PassOrder []string
}

// defaultPassOrder is the pipeline used when PassOrder is nil.
var defaultPassOrder = []string{"inline", "peephole", "opt"}

// compiledMethod is an executable method variant.
type compiledMethod struct {
	method   *Method
	code     []Instr
	catch    []Instr
	maxStack int
	nLocal   int
	inRegion bool
	host     bool // compiled for host entry (no call-site entry facts)

	// Per-variant barrier accounting (body + catch): sites is the number
	// of access/static barrier sites before elimination, elided how many
	// the dataflow pass removed, emitted how many barrier instructions
	// insertion produced (including allocation-labeling barriers, which
	// are never elided).
	sites   int
	elided  int
	emitted int

	// Tiered-recompilation state: invocation count and whether this
	// variant is already the optimized tier.
	invocations int
	optimized   bool
}

// variantName names the variant for reports.
func (cm *compiledMethod) variantName() string {
	ctx := "outside"
	if cm.inRegion {
		ctx = "inside"
	}
	if cm.host {
		return "host-" + ctx
	}
	return ctx
}

// compileStats counts compiler work, feeding the compilation-time
// experiment in §6.1.
type compileStats struct {
	methodsCompiled int
	instrsIn        int
	instrsOut       int
	barriersEmitted int
	barriersElided  int
	inlinedCalls    int
	instrsFolded    int
}

// accessInfo describes a heap-access opcode's object operand depth at
// barrier time (before the access pops anything), or -1 for non-access
// ops.
func accessDepth(op Op) int {
	switch op {
	case OpGetField, OpArrayLen:
		return 0
	case OpPutField, OpALoad:
		return 1
	case OpAStore:
		return 2
	default:
		return -1
	}
}

func isRead(op Op) bool  { return op == OpGetField || op == OpALoad || op == OpArrayLen }
func isWrite(op Op) bool { return op == OpPutField || op == OpAStore }

// compile produces the executable variant of m for the given context.
// Secure-method bodies are always "inside" — the compiler knows a region
// method's context statically even in dynamic mode. host marks variants
// reached by Machine.Call, whose arguments never passed a barrier and so
// must not assume interprocedural entry facts.
func (p *Program) compile(m *Method, opts CompileOptions, inRegion, host bool, st *compileStats) *compiledMethod {
	st.methodsCompiled++
	st.instrsIn += len(m.Code)
	cm := &compiledMethod{method: m, inRegion: inRegion, host: host, maxStack: m.maxStack, nLocal: m.NLocal}
	src := m.Code
	if opts.Mode == BarrierNone && opts.Inline {
		src, cm.nLocal, _ = p.inlineCalls(src, m.NLocal, st)
		// maxStack is a capacity hint for the frame; inlined bodies stack
		// on top of the caller's operands.
		cm.maxStack = m.maxStack + 8
	}
	if opts.Mode == BarrierNone {
		// The unmodified baseline still runs the codegen pass (copy +
		// branch fixup) with zero insertions, so compile-time ratios
		// compare barrier work against a real compiler pass rather than
		// against a no-op.
		empty := barrierNeed{
			access: make([]bool, len(src)),
			static: make([]bool, len(src)),
			alloc:  make([]bool, len(src)),
		}
		cm.code = p.insertBarriers(src, empty, false, false, st)
		if m.Secure != nil && m.Secure.Catch != nil {
			emptyC := barrierNeed{
				access: make([]bool, len(m.Secure.Catch)),
				static: make([]bool, len(m.Secure.Catch)),
				alloc:  make([]bool, len(m.Secure.Catch)),
			}
			cm.catch = p.insertBarriers(m.Secure.Catch, emptyC, false, false, st)
		}
		st.instrsOut += len(cm.code) + len(cm.catch)
		return cm
	}
	optimize := opts.Optimize || opts.Interproc
	oc := optContext{p: p}
	if opts.Interproc {
		oc.ip = p.interproc
	}
	dynamic := opts.Mode == BarrierDynamic && m.Secure == nil
	barrierFree := oc.ip != nil && !opts.Inline &&
		m.index < len(oc.ip.BarrierFree) && oc.ip.BarrierFree[m.index]

	// Pre-insertion passes, in the scheduled order. The need mask is
	// decided by "opt"; passes that transform code after it must keep the
	// mask aligned (peephole is length-preserving, inlining remaps —
	// spliced callee bodies keep all their barriers, since the analysis
	// never saw them).
	order := opts.PassOrder
	if order == nil {
		order = defaultPassOrder
	}
	var need barrierNeed
	haveNeed := false
	for _, pass := range order {
		switch pass {
		case "inline":
			if !opts.Inline {
				continue
			}
			var newPos []int32
			prev := src
			src, cm.nLocal, newPos = p.inlineCalls(src, cm.nLocal, st)
			// maxStack is a capacity hint for the frame; inlined bodies
			// stack on top of the caller's operands.
			cm.maxStack = m.maxStack + 8
			if haveNeed && newPos != nil {
				remapped := allBarriers(src)
				for pc := range prev {
					if prev[pc].Op == OpInvoke {
						continue // expanded sites carry no barrier
					}
					np := newPos[pc]
					remapped.access[np] = need.access[pc]
					remapped.static[np] = need.static[pc]
					remapped.alloc[np] = need.alloc[pc]
				}
				need = remapped
			}
		case "peephole":
			if !optimize {
				continue
			}
			var folded int
			src, folded = peephole(src)
			st.instrsFolded += folded
		case "opt":
			if !optimize || barrierFree {
				continue
			}
			var entry []uint8
			if oc.ip != nil && !host && m.Secure == nil && m.index < len(oc.ip.EntryChecked) {
				entry = oc.ip.EntryChecked[m.index]
			}
			need = eliminateRedundant(oc, src, allBarriers(src), entry)
			haveNeed = true
		default:
			panic(fmt.Sprintf("jvm: unknown compiler pass %q", pass))
		}
	}
	cm.sites = countBarriers(allBarriers(src))
	if !haveNeed {
		need = allBarriers(src)
		if barrierFree {
			// Proven barrier-free: no access/static check can ever be
			// needed, so skip the dataflow pass and insert only allocation
			// labeling. The proof covers m.Code only, so inlined bodies
			// (which splice in callee barrier sites the proof never saw)
			// take the dataflow path instead.
			for i := range need.access {
				need.access[i] = false
			}
			for i := range need.static {
				need.static[i] = false
			}
		}
	}
	cm.elided = cm.sites - countBarriers(need)
	st.barriersElided += cm.elided
	emitted0 := st.barriersEmitted
	cm.code = p.insertBarriers(src, need, inRegion, dynamic, st)
	if dynamic || opts.Mode == BarrierDynamic {
		cm.maxStack++ // OpInRegion pushes a temporary
	}
	if m.Secure != nil && m.Secure.Catch != nil {
		// Catch blocks run with the region's labels in force. Entry facts
		// never apply: control may arrive from any raise point.
		catchNeed := allBarriers(m.Secure.Catch)
		cm.sites += countBarriers(catchNeed)
		if optimize {
			before := countBarriers(catchNeed)
			catchNeed = eliminateRedundant(oc, m.Secure.Catch, catchNeed, nil)
			d := before - countBarriers(catchNeed)
			cm.elided += d
			st.barriersElided += d
		}
		cm.catch = p.insertBarriers(m.Secure.Catch, catchNeed, true, false, st)
	}
	cm.emitted = st.barriersEmitted - emitted0
	if err := p.validateCompiled(m, cm.code); err != nil {
		panic(err) // compiler bug, not a program error
	}
	if cm.catch != nil {
		if err := p.validateCompiled(m, cm.catch); err != nil {
			panic(err)
		}
	}
	st.instrsOut += len(cm.code) + len(cm.catch)
	return cm
}

// barrierNeed records which source sites keep their barriers.
type barrierNeed struct {
	access []bool // heap accesses (indexed by pc)
	static []bool // static variable accesses
	alloc  []bool // allocation labeling barriers
}

func countBarriers(n barrierNeed) int {
	c := 0
	for _, b := range n.access {
		if b {
			c++
		}
	}
	for _, b := range n.static {
		if b {
			c++
		}
	}
	return c
}

func allBarriers(code []Instr) barrierNeed {
	n := barrierNeed{
		access: make([]bool, len(code)),
		static: make([]bool, len(code)),
		alloc:  make([]bool, len(code)),
	}
	for pc, in := range code {
		if accessDepth(in.Op) >= 0 {
			n.access[pc] = true
		}
		if in.Op == OpGetStatic || in.Op == OpPutStatic {
			n.static[pc] = true
		}
		if in.Op == OpNew || in.Op == OpNewArray {
			n.alloc[pc] = true
		}
	}
	return n
}

// insertLen returns how many instructions the barrier sequence for a
// source instruction occupies, excluding the instruction itself.
func insertLen(in Instr, need barrierNeed, pc int, dynamic, inRegion bool) int {
	switch {
	case accessDepth(in.Op) >= 0 && need.access[pc]:
		if dynamic {
			// inregion, barrier.sel — the select barrier consumes the
			// context flag and applies the matching check, modeling the
			// paper's inlined conditional barrier.
			return 2
		}
		return 1
	case (in.Op == OpGetStatic || in.Op == OpPutStatic) && need.static[pc]:
		if dynamic {
			// inregion, jmpifnot(skip), barrier.static
			return 3
		}
		if inRegion {
			return 1
		}
		// Outside regions statics are unrestricted: no barrier.
		return 0
	default:
		return 0
	}
}

// allocSuffixLen returns the instruction count emitted after an
// allocation for its labeling barrier.
func allocSuffixLen(in Instr, need barrierNeed, pc int, dynamic, inRegion bool) int {
	if (in.Op != OpNew && in.Op != OpNewArray) || !need.alloc[pc] {
		return 0
	}
	if dynamic {
		// inregion, jmpifnot(skip), barrier.alloc
		return 3
	}
	if inRegion {
		return 1
	}
	return 0
}

// validateCompiled is the compiler's downstream pass: an abstract stack
// simulation over the *emitted* code (barrier opcodes included) asserting
// the insertion pass preserved stack discipline and branch targets. Its
// cost is proportional to output size, so barrier expansion shows up in
// compilation time exactly as inlining bloat does in the paper's JIT
// (§6.1: "we instruct the compiler to inline the barriers aggressively,
// which bloats the code and slows downstream optimizations").
func (p *Program) validateCompiled(m *Method, code []Instr) error {
	const unvisited = -1
	depth := make([]int, len(code))
	for i := range depth {
		depth[i] = unvisited
	}
	work := make([]int, 0, 16)
	work = append(work, 0)
	depth[0] = 0
	flow := func(from, to, d int) error {
		if to < 0 || to >= len(code) {
			return fmt.Errorf("jvm: compiled %s: branch target %d out of range (from %d)", m.Name, to, from)
		}
		if depth[to] == unvisited {
			depth[to] = d
			work = append(work, to)
		} else if depth[to] != d {
			return fmt.Errorf("jvm: compiled %s: inconsistent stack depth at %d", m.Name, to)
		}
		return nil
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := code[pc]
		d := depth[pc]
		var pops, pushes int
		switch in.Op {
		case OpBarrierRead, OpBarrierWrite, OpBarrierOutR, OpBarrierOutW, OpBarrierAlloc:
			if d <= int(in.A) {
				return fmt.Errorf("jvm: compiled %s: barrier at %d peeks depth %d with stack %d", m.Name, pc, in.A, d)
			}
		case OpBarrierSelR, OpBarrierSelW:
			pops = 1 // consumes the OpInRegion flag
			if d-1 <= int(in.A) {
				return fmt.Errorf("jvm: compiled %s: select barrier at %d peeks depth %d with stack %d", m.Name, pc, in.A, d-1)
			}
		case OpBarrierStaticR, OpBarrierStaticW:
			// no stack effect
		case OpInRegion:
			pushes = 1
		case OpInvoke:
			callee := p.Methods[in.A]
			pops = callee.NArgs
			if callee.returnsValue() {
				pushes = 1
			}
		default:
			pops, pushes = stackEffect(in.Op)
		}
		if d < pops {
			return fmt.Errorf("jvm: compiled %s: stack underflow at %d", m.Name, pc)
		}
		nd := d - pops + pushes
		switch {
		case in.Op == OpReturn || in.Op == OpReturnVal:
		case in.Op == OpJmp:
			if err := flow(pc, int(in.A), nd); err != nil {
				return err
			}
		case in.Op == OpJmpIf || in.Op == OpJmpIfNot:
			if err := flow(pc, int(in.A), nd); err != nil {
				return err
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return err
			}
		default:
			if pc+1 >= len(code) {
				return fmt.Errorf("jvm: compiled %s: falls off end", m.Name)
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return err
			}
		}
	}
	return nil
}

// insertBarriers rewrites code with barrier sequences and remaps branch
// targets — the address-relocation pass every barrier-inserting compiler
// needs.
func (p *Program) insertBarriers(code []Instr, need barrierNeed, inRegion, dynamic bool, st *compileStats) []Instr {
	// Pass 1: compute the new position of every source instruction's
	// emission group. Branch targets remap to the group START (the barrier
	// prefix, not the instruction) so a jump edge cannot skip a check that
	// the fall-through edge would run.
	newPos := make([]int32, len(code)+1)
	pos := int32(0)
	for pc, in := range code {
		newPos[pc] = pos
		pos += int32(insertLen(in, need, pc, dynamic, inRegion)) + 1 +
			int32(allocSuffixLen(in, need, pc, dynamic, inRegion))
	}
	newPos[len(code)] = pos

	// Pass 2: emit.
	out := make([]Instr, 0, pos)
	for pc, in := range code {
		depth := accessDepth(in.Op)
		switch {
		case depth >= 0 && need.access[pc]:
			read := isRead(in.Op)
			if dynamic {
				sel := OpBarrierSelR
				if !read {
					sel = OpBarrierSelW
				}
				out = append(out,
					Instr{Op: OpInRegion},
					Instr{Op: sel, A: int32(depth)},
				)
			} else if inRegion {
				op := OpBarrierRead
				if !read {
					op = OpBarrierWrite
				}
				out = append(out, Instr{Op: op, A: int32(depth)})
			} else {
				op := OpBarrierOutR
				if !read {
					op = OpBarrierOutW
				}
				out = append(out, Instr{Op: op, A: int32(depth)})
			}
			st.barriersEmitted++
		case (in.Op == OpGetStatic || in.Op == OpPutStatic) && need.static[pc]:
			op := OpBarrierStaticR
			if in.Op == OpPutStatic {
				op = OpBarrierStaticW
			}
			if dynamic {
				base := int32(len(out))
				out = append(out,
					Instr{Op: OpInRegion},
					Instr{Op: OpJmpIfNot, A: base + 3},
					Instr{Op: op},
				)
				st.barriersEmitted++
			} else if inRegion {
				out = append(out, Instr{Op: op})
				st.barriersEmitted++
			}
			// Outside regions statics are unrestricted: no barrier.
		}

		// The instruction itself, with branch targets remapped.
		emitted := in
		if in.Op.isJump() {
			emitted.A = newPos[in.A]
		}
		out = append(out, emitted)

		// Allocation labeling runs after the object is on the stack.
		if (in.Op == OpNew || in.Op == OpNewArray) && need.alloc[pc] {
			if dynamic {
				base := int32(len(out))
				out = append(out,
					Instr{Op: OpInRegion},
					Instr{Op: OpJmpIfNot, A: base + 3},
					Instr{Op: OpBarrierAlloc},
				)
				st.barriersEmitted++
			} else if inRegion {
				out = append(out, Instr{Op: OpBarrierAlloc})
				st.barriersEmitted++
			}
		}
	}
	return out
}

// interprocCheck validates an interprocedural compilation request.
func (p *Program) interprocCheck(opts CompileOptions) error {
	if !opts.Interproc {
		return nil
	}
	if p.interproc == nil {
		return fmt.Errorf("jvm: CompileOptions.Interproc set but no analysis attached (run analysis.Attach first)")
	}
	if opts.Mode == BarrierStatic && opts.Clone == FirstUse {
		return fmt.Errorf("jvm: interprocedural optimization requires CloneBoth (first-use mode cannot hold separate host-entry variants)")
	}
	return nil
}

// entryFactsDiffer reports whether interprocedural entry facts would make
// the invoke-reached variant of m differ from the host-entry variant.
func (p *Program) entryFactsDiffer(m *Method, opts CompileOptions) bool {
	if !opts.Interproc || p.interproc == nil || m.Secure != nil {
		return false
	}
	if m.index >= len(p.interproc.EntryChecked) {
		return false
	}
	for _, bits := range p.interproc.EntryChecked[m.index] {
		if bits != 0 {
			return true
		}
	}
	return false
}

// variantFor returns (compiling on demand) the executable variant of m for
// the given context, honoring the clone mode. It is called by the
// interpreter at invoke time, mirroring JIT-on-first-execution. With
// HotThreshold set, hot variants are recompiled at the optimizing tier
// while keeping their original barrier-context decision. host marks calls
// entering through Machine.Call: when interprocedural entry facts apply to
// m, those calls get a separate conservative variant, because host
// arguments never passed a barrier at any call site.
func (p *Program) variantFor(m *Method, opts CompileOptions, inRegion, host bool, st *compileStats) (*compiledMethod, error) {
	if err := p.interprocCheck(opts); err != nil {
		return nil, err
	}
	if m.Secure != nil {
		inRegion = true // region bodies are always inside
	}
	if opts.Mode == BarrierStatic && opts.Clone == FirstUse && m.Secure == nil {
		if m.firstUse == nil {
			m.firstUse = p.compile(m, opts, inRegion, host, st)
		} else if m.firstUse.inRegion != inRegion {
			return nil, fmt.Errorf("jvm: method %s compiled for inRegion=%v but invoked with inRegion=%v (first-execution-context prototype limitation, §5.1)", m.Name, m.firstUse.inRegion, inRegion)
		}
		return p.maybeRecompileHot(m, &m.firstUse, opts, st), nil
	}
	idx := 0
	if inRegion {
		idx = 1
	}
	if opts.Mode == BarrierDynamic && m.Secure == nil {
		idx = 0 // single dynamic variant
	}
	slots := &m.variants
	useHost := host && p.entryFactsDiffer(m, opts)
	if useHost {
		slots = &m.hostVariants
	}
	if slots[idx] == nil {
		slots[idx] = p.compile(m, opts, inRegion, useHost, st)
	}
	return p.maybeRecompileHot(m, &slots[idx], opts, st), nil
}

// maybeRecompileHot bumps the variant's invocation count and, past the
// threshold, replaces it with an optimized recompilation that reuses the
// original in/out-of-region decision.
func (p *Program) maybeRecompileHot(m *Method, slot **compiledMethod, opts CompileOptions, st *compileStats) *compiledMethod {
	cm := *slot
	if opts.HotThreshold <= 0 || cm.optimized {
		return cm
	}
	cm.invocations++
	if cm.invocations < opts.HotThreshold {
		return cm
	}
	hot := opts
	hot.Optimize = true
	hot.Inline = true
	ncm := p.compile(m, hot, cm.inRegion, cm.host, st)
	ncm.optimized = true
	*slot = ncm
	return ncm
}

// ResetCompilation discards all compiled variants (between benchmark
// configurations).
func (p *Program) ResetCompilation() {
	for _, m := range p.Methods {
		m.variants = [2]*compiledMethod{}
		m.hostVariants = [2]*compiledMethod{}
		m.firstUse = nil
	}
}

// CompileAll eagerly compiles every method (both variants for dual-context
// static mode) and returns compiler work statistics — the §6.1
// compilation-time experiment. Variants are compiled as invoke-reached;
// host-entry variants (interprocedural mode) compile lazily on first
// Machine.Call.
func (p *Program) CompileAll(opts CompileOptions) (CompileReport, error) {
	if err := p.Verify(); err != nil {
		return CompileReport{}, err
	}
	if err := p.interprocCheck(opts); err != nil {
		return CompileReport{}, err
	}
	st := &compileStats{}
	for _, m := range p.Methods {
		if m.Secure != nil || opts.Mode != BarrierStatic || opts.Clone == FirstUse {
			if _, err := p.variantFor(m, opts, false, false, st); err != nil {
				return CompileReport{}, err
			}
			continue
		}
		if _, err := p.variantFor(m, opts, false, false, st); err != nil {
			return CompileReport{}, err
		}
		if _, err := p.variantFor(m, opts, true, false, st); err != nil {
			return CompileReport{}, err
		}
	}
	return CompileReport{
		Methods:         st.methodsCompiled,
		InstrsIn:        st.instrsIn,
		InstrsOut:       st.instrsOut,
		BarriersEmitted: st.barriersEmitted,
		BarriersElided:  st.barriersElided,
		InlinedCalls:    st.inlinedCalls,
	}, nil
}

// CompileReport summarizes compiler work.
type CompileReport struct {
	Methods         int
	InstrsIn        int
	InstrsOut       int
	BarriersEmitted int
	BarriersElided  int
	InlinedCalls    int
}

// MethodBarrierStats is one compiled variant's barrier accounting, for
// per-method optimization reports (laminar-asm run -stats / dis
// -compiled).
type MethodBarrierStats struct {
	Method      string
	Variant     string // outside, inside, host-outside, host-inside, first-use
	Sites       int    // access+static barrier sites before elimination
	Elided      int    // sites removed by the dataflow pass
	Emitted     int    // barrier instructions inserted (incl. allocation labeling)
	BarrierFree bool   // proven barrier-free by the whole-program analysis
}

// BarrierStats reports per-method barrier counts for every variant
// compiled so far, in method-table order.
func (p *Program) BarrierStats() []MethodBarrierStats {
	var out []MethodBarrierStats
	add := func(m *Method, cm *compiledMethod, variant string) {
		if cm == nil {
			return
		}
		free := p.interproc != nil && m.index < len(p.interproc.BarrierFree) && p.interproc.BarrierFree[m.index]
		out = append(out, MethodBarrierStats{
			Method: m.Name, Variant: variant,
			Sites: cm.sites, Elided: cm.elided, Emitted: cm.emitted,
			BarrierFree: free,
		})
	}
	for _, m := range p.Methods {
		add(m, m.variants[0], "outside")
		add(m, m.variants[1], "inside")
		add(m, m.hostVariants[0], "host-outside")
		add(m, m.hostVariants[1], "host-inside")
		if m.firstUse != nil {
			add(m, m.firstUse, "first-use")
		}
	}
	return out
}
