package jvm

import (
	"strings"
	"testing"

	"laminar/internal/difc"
)

func TestDisassemble(t *testing.T) {
	code := NewAsm().
		Const(3).Store(0).
		Label("loop").
		Load(0).Const(0).Op(OpCmpLE).JmpIf("done").
		Load(0).Const(1).Op(OpSub).Store(0).
		Jmp("loop").
		Label("done").Op(OpReturn).MustBuild()
	out := Disassemble(code)
	for _, want := range []string{"const", "store", "jmpif", "-> ", "L:"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Branch-target lines are marked.
	if !strings.Contains(out, "L:   2") {
		t.Errorf("loop header not marked:\n%s", out)
	}
}

func TestDumpShowsCompiledVariants(t *testing.T) {
	tag := difc.Tag(1)
	p, _, _ := secureProgram(tag)
	if _, err := p.CompileAll(CompileOptions{Mode: BarrierStatic}); err != nil {
		t.Fatal(err)
	}
	out := p.Dump()
	for _, want := range []string{"method fill", "secure", "method main", "compiled", "barrier."} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestOpStringCoverage(t *testing.T) {
	for op := OpNop; op <= OpInRegion; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op") && op != Op(200) {
			// All defined opcodes must have names.
			if strings.HasPrefix(s, "op") {
				t.Errorf("opcode %d has no name", op)
			}
		}
	}
	if Op(200).String() != "op200" {
		t.Errorf("unknown opcode String = %q", Op(200).String())
	}
}
