package jvm

import (
	"testing"

	"laminar/internal/telemetry"
)

// TestPublishTelemetry: the snapshot-time fold exposes compile and run
// counters in the recorder's free-form series — and is a strict no-op
// when telemetry is off or absent, so it can never perturb a run.
func TestPublishTelemetry(t *testing.T) {
	code := NewAsm().
		Load(0).Load(1).Op(OpAdd).
		Op(OpReturnVal).MustBuild()
	p := NewProgram(0)
	p.Add(method("f", 2, 2, nil, code))
	mc, err := NewMachine(p, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Call(mc.NewThread(), "f", IntV(2), IntV(3)); err != nil {
		t.Fatal(err)
	}

	// Off (the default level) and nil both publish nothing.
	mc.PublishTelemetry(nil)
	off := telemetry.NewRecorder()
	mc.PublishTelemetry(off)
	if n := off.MetricsSnapshot().Extra["jvm.methods.compiled"]; n != 0 {
		t.Fatalf("LevelOff recorder got %d compiled methods, want 0", n)
	}

	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	mc.PublishTelemetry(rec)
	extra := rec.MetricsSnapshot().Extra
	if extra["jvm.methods.compiled"] == 0 {
		t.Error("compiled-method count not published")
	}
	// f touches no objects or regions, so its zero-valued series
	// (barriers, violations) must be omitted rather than published as 0.
	for _, name := range []string{"jvm.barriers.emitted", "jvm.violations"} {
		if _, ok := extra[name]; ok {
			t.Errorf("zero-valued series %s was published", name)
		}
	}
}
