// Package netlabel is the cross-kernel labeled transport: a wire
// protocol that lets two (or N) Kernel instances exchange labeled
// messages over real TCP, with every flow checked by the receiving
// kernel's LSM exactly as a local socket operation.
//
// The protocol (DESIGN.md §12):
//
//   - Every connection starts with a Hello/HelloAck handshake carrying
//     the protocol version and the peer's node id. A version mismatch is
//     rejected fail-closed with LayerNet telemetry provenance.
//   - A channel is opened with an Open frame carrying the channel's
//     secrecy/integrity labels in the canonical difc binary encoding
//     (sorted, deduplicated tags — the interned form). The accepting
//     kernel adopts the labels onto a fresh endpoint inode; whether any
//     local task may then use the channel is decided per operation by
//     the ordinary LSM hooks.
//   - Data frames carry payload bytes that already passed the sender's
//     Send check. Anything that goes wrong after that — full buffers,
//     dropped frames, killed links, denied receives — is silence, never
//     an error the sender can observe: the paper's unreliable-channel
//     rule (§5.2), extended to the network.
//
// Frames are length-prefixed and versioned; the codec is fuzzed
// (FuzzLabelWire, FuzzFrameDecode) and rejects oversized or malformed
// input without allocation proportional to attacker-controlled lengths.
package netlabel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/telemetry"
)

// Wire constants.
const (
	// Magic starts every frame: "LN" big-endian.
	Magic uint16 = 0x4C4E
	// Version is the protocol version this build speaks. Peers with a
	// different version are rejected during the handshake.
	Version byte = 1
	// HeaderSize is the fixed frame header length.
	HeaderSize = 12
	// MaxPayload bounds a frame payload; larger lengths are malformed
	// (fail closed before any allocation).
	MaxPayload = 1 << 20
)

// FrameType discriminates frames.
type FrameType byte

// Frame types. Hello/HelloAck are only legal during the handshake;
// Open/Data/Close/Ctrl/OpenRouted only after it.
//
// Ctrl frames carry opaque payloads for a layer above the transport (the
// cluster label plane, internal/cluster): membership heartbeats, join
// negotiation, epoch announcements. The transport moves them verbatim and
// never interprets them; a node with no Control handler drops them
// fail-closed.
//
// OpenRouted frames open a channel that an intermediate node forwards
// toward a final destination. The payload is the channel labels followed
// by a routing blob the upper layer interprets; a node with no Routed
// handler drops the open fail-closed, exactly as if the link had eaten
// it.
const (
	FrameHello FrameType = 1 + iota
	FrameHelloAck
	FrameOpen
	FrameData
	FrameClose
	FrameCtrl
	FrameOpenRouted
	frameTypeMax = FrameOpenRouted
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameOpen:
		return "open"
	case FrameData:
		return "data"
	case FrameClose:
		return "close"
	case FrameCtrl:
		return "ctrl"
	case FrameOpenRouted:
		return "open-routed"
	default:
		return "unknown"
	}
}

// Frame is one decoded wire frame.
//
// Header layout (big-endian): magic u16 | version u8 | type u8 |
// channel u32 | payload length u32, then the payload.
type Frame struct {
	Version byte
	Type    FrameType
	Channel uint32
	Payload []byte
}

// Codec errors.
var (
	// ErrShort reports an incomplete frame: the caller needs more bytes.
	ErrShort = errors.New("netlabel: short frame")
	// ErrMalformed reports an unparseable or out-of-bounds frame; the
	// connection carrying it is dead (fail closed).
	ErrMalformed = errors.New("netlabel: malformed frame")
)

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f Frame) []byte {
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:], Magic)
	hdr[2] = f.Version
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[4:], f.Channel)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// DecodeFrame parses one frame from the front of b, returning the frame
// and the bytes consumed. ErrShort means b holds a valid prefix of a
// frame; anything structurally wrong is ErrMalformed. The payload is
// copied, so the caller may reuse b. The version byte is NOT validated
// here: the handshake and the per-connection receive path reject
// mismatches with provenance, which a codec error could not carry.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrShort
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return Frame{}, 0, fmt.Errorf("%w: bad magic %#x", ErrMalformed, binary.BigEndian.Uint16(b))
	}
	typ := FrameType(b[3])
	if typ == 0 || typ > frameTypeMax {
		return Frame{}, 0, fmt.Errorf("%w: unknown frame type %d", ErrMalformed, b[3])
	}
	n := binary.BigEndian.Uint32(b[8:])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrMalformed, n, MaxPayload)
	}
	total := HeaderSize + int(n)
	if len(b) < total {
		return Frame{}, 0, ErrShort
	}
	f := Frame{
		Version: b[2],
		Type:    typ,
		Channel: binary.BigEndian.Uint32(b[4:]),
	}
	if n > 0 {
		f.Payload = append([]byte(nil), b[HeaderSize:total]...)
	}
	return f, total, nil
}

// AppendLabels encodes a label pair in the canonical difc binary form
// (each label length-prefixed, tags sorted big-endian — the layout the
// LSM persists in xattrs), secrecy first.
func AppendLabels(dst []byte, l difc.Labels) []byte {
	s, _ := l.S.MarshalBinary()
	i, _ := l.I.MarshalBinary()
	return append(append(dst, s...), i...)
}

// ParseLabels decodes a label pair from the front of b, returning the
// labels and bytes consumed. The decoded labels are canonicalized by
// construction (difc.NewLabel sorts and deduplicates), so a hostile
// non-canonical encoding cannot smuggle a second representation of the
// same lattice point past interning.
func ParseLabels(b []byte) (difc.Labels, int, error) {
	s, n, err := parseLabel(b)
	if err != nil {
		return difc.Labels{}, 0, err
	}
	i, m, err := parseLabel(b[n:])
	if err != nil {
		return difc.Labels{}, 0, err
	}
	return difc.Labels{S: s, I: i}, n + m, nil
}

func parseLabel(b []byte) (difc.Label, int, error) {
	if len(b) < 4 {
		return difc.Label{}, 0, fmt.Errorf("%w: truncated label header", ErrMalformed)
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxPayload/8 {
		return difc.Label{}, 0, fmt.Errorf("%w: label tag count %d", ErrMalformed, n)
	}
	total := 4 + 8*int(n)
	if len(b) < total {
		return difc.Label{}, 0, fmt.Errorf("%w: truncated label body", ErrMalformed)
	}
	l, err := difc.UnmarshalLabel(b[:total])
	if err != nil {
		return difc.Label{}, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return l, total, nil
}

// AppendRoutedOpen encodes an OpenRouted payload: the channel labels in
// the canonical form, then a length-prefixed opaque routing blob.
func AppendRoutedOpen(dst []byte, l difc.Labels, meta []byte) []byte {
	dst = AppendLabels(dst, l)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(meta)))
	dst = append(dst, n[:]...)
	return append(dst, meta...)
}

// ParseRoutedOpen decodes an OpenRouted payload. The meta blob is
// copied. Bytes after the meta blob are returned as ext — the region
// versioned extensions (the trace context) occupy; ParseTraceExt decides
// whether that region is acceptable, so an empty tail stays valid for
// peers that send none.
func ParseRoutedOpen(b []byte) (difc.Labels, []byte, []byte, error) {
	labels, n, err := ParseLabels(b)
	if err != nil {
		return difc.Labels{}, nil, nil, err
	}
	rest := b[n:]
	if len(rest) < 4 {
		return difc.Labels{}, nil, nil, fmt.Errorf("%w: truncated routed-open meta header", ErrMalformed)
	}
	m := binary.BigEndian.Uint32(rest)
	if int(m) > len(rest)-4 {
		return difc.Labels{}, nil, nil, fmt.Errorf("%w: routed-open meta length %d, have %d", ErrMalformed, m, len(rest)-4)
	}
	meta := append([]byte(nil), rest[4:4+m]...)
	return labels, meta, rest[4+m:], nil
}

// Trace extension: an optional, versioned trailing block on Open and
// OpenRouted payloads carrying the telemetry trace context (DESIGN.md
// §16). Layout: magic 'T' u8 | ext version u8 | trace id u64 | hop u8 |
// origin node u64 | origin epoch u64.
//
// Compatibility is deliberately asymmetric: an ABSENT extension is fine
// (old peers never send one), but a PRESENT extension must parse — a
// recognized magic with an unknown version fails with ErrTraceVersion so
// the receiver can refuse just that open (a future peer is not an
// attacker; the rest of the connection stands), while structurally
// broken bytes are ErrMalformed like any other hostile frame.
const (
	traceExtMagic byte = 'T'
	// TraceExtVersion is the trace extension version this build writes.
	TraceExtVersion byte = 1
	traceExtSize         = 27
)

// ErrTraceVersion reports a trace extension from a newer build: the
// carrying open is refused fail-closed, the connection survives.
var ErrTraceVersion = errors.New("netlabel: unsupported trace extension version")

// AppendTraceExt encodes the trace context as a trailing extension.
func AppendTraceExt(dst []byte, ctx telemetry.TraceCtx) []byte {
	var p [traceExtSize]byte
	p[0] = traceExtMagic
	p[1] = TraceExtVersion
	binary.BigEndian.PutUint64(p[2:], ctx.TraceID)
	p[10] = ctx.Hop
	binary.BigEndian.PutUint64(p[11:], ctx.Origin)
	binary.BigEndian.PutUint64(p[19:], ctx.OriginEpoch)
	return append(dst, p[:]...)
}

// ParseTraceExt decodes the extension region of an Open/OpenRouted
// payload. An empty region means no context (ok=false, no error); an
// unknown version is ErrTraceVersion; anything else that does not parse
// exactly is ErrMalformed.
func ParseTraceExt(b []byte) (telemetry.TraceCtx, bool, error) {
	if len(b) == 0 {
		return telemetry.TraceCtx{}, false, nil
	}
	if b[0] != traceExtMagic {
		return telemetry.TraceCtx{}, false, fmt.Errorf("%w: unknown open extension %#x", ErrMalformed, b[0])
	}
	if len(b) < 2 {
		return telemetry.TraceCtx{}, false, fmt.Errorf("%w: truncated trace extension", ErrMalformed)
	}
	if b[1] != TraceExtVersion {
		return telemetry.TraceCtx{}, false, fmt.Errorf("%w %d (speak %d)", ErrTraceVersion, b[1], TraceExtVersion)
	}
	if len(b) != traceExtSize {
		return telemetry.TraceCtx{}, false, fmt.Errorf("%w: trace extension %d bytes, want %d", ErrMalformed, len(b), traceExtSize)
	}
	ctx := telemetry.TraceCtx{
		TraceID:     binary.BigEndian.Uint64(b[2:]),
		Hop:         b[10],
		Origin:      binary.BigEndian.Uint64(b[11:]),
		OriginEpoch: binary.BigEndian.Uint64(b[19:]),
	}
	return ctx, ctx.TraceID != 0, nil
}

// helloPayload is the handshake body: the speaker's protocol version
// (echoed in the payload so the rejection path can name both versions
// even if header parsing becomes laxer) and its 8-byte node id.
const helloPayloadSize = 9

// AppendHello encodes a Hello/HelloAck payload.
func AppendHello(dst []byte, version byte, nodeID uint64) []byte {
	var p [helloPayloadSize]byte
	p[0] = version
	binary.BigEndian.PutUint64(p[1:], nodeID)
	return append(dst, p[:]...)
}

// ParseHello decodes a Hello/HelloAck payload.
func ParseHello(b []byte) (version byte, nodeID uint64, err error) {
	if len(b) != helloPayloadSize {
		return 0, 0, fmt.Errorf("%w: hello payload %d bytes", ErrMalformed, len(b))
	}
	return b[0], binary.BigEndian.Uint64(b[1:]), nil
}
