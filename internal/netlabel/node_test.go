package netlabel

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

// testNode is one kernel with its Laminar module, a user task, a private
// telemetry recorder, and a listening transport node.
type testNode struct {
	k    *kernel.Kernel
	mod  *lsm.Module
	user *kernel.Task
	rec  *telemetry.Recorder
	node *Node
}

// bootNode builds a full kernel+LSM stack with a listening Node. cfg's
// Kernel/Module/Recorder are filled in.
func bootNode(t *testing.T, cfg Config) *testNode {
	t.Helper()
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel, cfg.Module, cfg.Recorder = k, mod, rec
	n := NewNode(cfg)
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return &testNode{k: k, mod: mod, user: user, rec: rec, node: n}
}

// pumpUntil pumps the nodes until cond holds or a deadline passes.
func pumpUntil(t *testing.T, cond func() bool, nodes ...*testNode) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			n.node.Pump()
		}
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timed out pumping")
}

// acceptOne pumps until the accepting node hands out a channel.
func acceptOne(t *testing.T, accepter *testNode, nodes ...*testNode) (kernel.FD, difc.Labels) {
	t.Helper()
	var fd kernel.FD
	var labels difc.Labels
	pumpUntil(t, func() bool {
		var err error
		fd, labels, err = accepter.node.Accept(accepter.user)
		return err == nil
	}, nodes...)
	return fd, labels
}

func TestRemoteFlowAllowed(t *testing.T) {
	a := bootNode(t, Config{NodeID: 1})
	b := bootNode(t, Config{NodeID: 2})

	fdA, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	fdB, labels := acceptOne(t, b, a, b)
	if !labels.IsEmpty() {
		t.Fatalf("accepted labels = %v, want empty", labels)
	}

	if _, err := a.k.Send(a.user, fdA, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	var got string
	pumpUntil(t, func() bool {
		n, err := b.k.Recv(b.user, fdB, buf)
		if err == nil && n > 0 {
			got += string(buf[:n])
		}
		return got == "over the wire"
	}, a, b)

	// And the reverse direction on the same channel.
	if _, err := b.k.Send(b.user, fdB, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	got = ""
	pumpUntil(t, func() bool {
		n, err := a.k.Recv(a.user, fdA, buf)
		if err == nil && n > 0 {
			got += string(buf[:n])
		}
		return got == "ack"
	}, a, b)
}

func TestRemoteDeniedRecvCheckedByReceivingKernel(t *testing.T) {
	a := bootNode(t, Config{NodeID: 1})
	b := bootNode(t, Config{NodeID: 2})

	// Alice allocates a tag and opens a secret channel; her caps admit
	// the labeled create on HER kernel.
	tag, err := a.k.AllocTag(a.user)
	if err != nil {
		t.Fatal(err)
	}
	secret := difc.Labels{S: difc.NewLabel(tag)}
	fdA, err := a.node.Open(a.user, b.node.Addr(), secret)
	if err != nil {
		t.Fatal(err)
	}
	fdB, labels := acceptOne(t, b, a, b)
	if !labels.Equal(difc.Labels{S: difc.InternLabels(secret).S}) && !labels.Equal(secret) {
		t.Fatalf("accepted labels = %v, want %v", labels, secret)
	}

	if _, err := a.k.Send(a.user, fdA, []byte("classified")); err != nil {
		t.Fatal(err)
	}
	// Wait for the payload to arrive at B's endpoint, then show the
	// unlabeled reader is denied by B's OWN kernel — the fd-level check
	// fires before the buffer is inspected, so arrival is invisible.
	denials0 := b.rec.M.Denials.Load()
	var derr error
	pumpUntil(t, func() bool {
		_, derr = b.k.Recv(b.user, fdB, make([]byte, 32))
		return errors.Is(derr, kernel.ErrAccess)
	}, a, b)
	if b.rec.M.Denials.Load() == denials0 {
		t.Error("remote deny left no telemetry on the receiving kernel")
	}

	// Granted the tag and labeled up, the same task reads the data.
	b.mod.GrantCapability(b.user, tag, difc.CapPlus)
	if err := b.k.SetTaskLabel(b.user, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	var got string
	pumpUntil(t, func() bool {
		n, err := b.k.Recv(b.user, fdB, buf)
		if err == nil && n > 0 {
			got += string(buf[:n])
		}
		return got == "classified"
	}, a, b)
}

func TestRemoteSenderCannotDistinguishDrop(t *testing.T) {
	// The silent-drop regression at network scope: a secrecy-violating
	// send must return exactly what a delivered send returns, and nothing
	// may reach the peer.
	a := bootNode(t, Config{NodeID: 1})
	b := bootNode(t, Config{NodeID: 2})

	fdA, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	fdB, _ := acceptOne(t, b, a, b)

	// Delivered baseline.
	nOK, errOK := a.k.Send(a.user, fdA, []byte("public"))

	// Taint the sender: the unlabeled channel can no longer carry its
	// writes (secrecy would leak), so the send must silently drop.
	tag, _ := a.k.AllocTag(a.user)
	a.mod.GrantCapability(a.user, tag, difc.CapPlus)
	if err := a.k.SetTaskLabel(a.user, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	nDrop, errDrop := a.k.Send(a.user, fdA, []byte("secret"))
	if nDrop != 6 || errDrop != nil {
		t.Fatalf("dropped send = (%d, %v); delivered was (%d, %v) — distinguishable", nDrop, errDrop, nOK, errOK)
	}

	// Only the public bytes ever cross the wire.
	buf := make([]byte, 64)
	var got string
	pumpUntil(t, func() bool {
		n, err := b.k.Recv(b.user, fdB, buf)
		if err == nil && n > 0 {
			got += string(buf[:n])
		}
		return got == "public"
	}, a, b)
	for i := 0; i < 20; i++ {
		a.node.Pump()
		b.node.Pump()
	}
	if n, err := b.k.Recv(b.user, fdB, buf); err == nil {
		t.Fatalf("secret leaked to peer: %q", buf[:n])
	}
}

func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	b := bootNode(t, Config{NodeID: 2})
	var denies atomic.Int32
	unsub := b.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerNet && e.Site == "netd.handshake" {
			denies.Add(1)
		}
	})
	defer unsub()

	nc, err := net.Dial("tcp", b.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Speak protocol version 2 at a version-1 node.
	bad := Frame{Version: 2, Type: FrameHello, Payload: AppendHello(nil, 2, 77)}
	if _, err := nc.Write(AppendFrame(nil, bad)); err != nil {
		t.Fatal(err)
	}
	// The node must reject fail-closed: connection torn down, no ack.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := nc.Read(make([]byte, 64)); err == nil {
		t.Fatalf("got %d bytes back, want rejection", n)
	}
	if denies.Load() == 0 {
		t.Error("version rejection left no LayerNet provenance")
	}
}

func TestMalformedFrameKillsConnection(t *testing.T) {
	b := bootNode(t, Config{NodeID: 2})
	var denies atomic.Int32
	unsub := b.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerNet && e.Site == "netd.frame" {
			denies.Add(1)
		}
	})
	defer unsub()

	nc, err := net.Dial("tcp", b.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrameSync(nc, Frame{Version: Version, Type: FrameHello,
		Payload: AppendHello(nil, Version, 7)}); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrameSync(nc, 5*time.Second); err != nil || f.Type != FrameHelloAck {
		t.Fatalf("handshake: %v (type %v)", err, f.Type)
	}
	if _, err := nc.Write([]byte("this is not a frame.")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 16)); err == nil {
		t.Fatal("connection survived malformed frame")
	}
	if denies.Load() == 0 {
		t.Error("malformed frame left no LayerNet provenance")
	}
}

func TestConnectionPoolReuse(t *testing.T) {
	a := bootNode(t, Config{NodeID: 1})
	b := bootNode(t, Config{NodeID: 2})

	if _, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{}); err != nil {
		t.Fatal(err)
	}
	a.node.mu.Lock()
	conns, chans := len(a.node.conns), len(a.node.chans)
	ids := []uint32{a.node.chans[0].id, a.node.chans[1].id}
	a.node.mu.Unlock()
	if conns != 1 {
		t.Fatalf("two opens used %d connections, want pooled 1", conns)
	}
	if chans != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("channel ids = %v, want odd dialer ids 1,3", ids)
	}
	// Both channels are usable.
	acceptOne(t, b, a, b)
	acceptOne(t, b, a, b)
}

func TestBatchingDeliversAll(t *testing.T) {
	for _, batching := range []bool{false, true} {
		a := bootNode(t, Config{NodeID: 1, Batching: batching})
		b := bootNode(t, Config{NodeID: 2, Batching: batching})
		fdA, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{})
		if err != nil {
			t.Fatal(err)
		}
		fdB, _ := acceptOne(t, b, a, b)
		want := ""
		for i := 0; i < 10; i++ {
			msg := string(rune('a' + i))
			want += msg
			if _, err := a.k.Send(a.user, fdA, []byte(msg)); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, 64)
		got := ""
		pumpUntil(t, func() bool {
			n, err := b.k.Recv(b.user, fdB, buf)
			if err == nil && n > 0 {
				got += string(buf[:n])
			}
			return got == want
		}, a, b)
	}
}

func TestBackpressureDeliversInOrder(t *testing.T) {
	// A tiny outbound queue forces the drain loop to stop early every
	// pump; backpressure must stall, never drop or reorder, the stream.
	a := bootNode(t, Config{NodeID: 1, MaxQueue: HeaderSize + 64, DrainChunk: 16})
	b := bootNode(t, Config{NodeID: 2})
	fdA, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	fdB, _ := acceptOne(t, b, a, b)

	msg := make([]byte, 1024)
	for i := range msg {
		msg[i] = byte('a' + i%26)
	}
	if n, err := a.k.Send(a.user, fdA, msg); err != nil || n != len(msg) {
		t.Fatalf("send = %d, %v", n, err)
	}
	var got []byte
	buf := make([]byte, 256)
	pumpUntil(t, func() bool {
		n, err := b.k.Recv(b.user, fdB, buf)
		if err == nil && n > 0 {
			got = append(got, buf[:n]...)
		}
		return len(got) >= len(msg)
	}, a, b)
	if string(got) != string(msg) {
		t.Fatal("stream corrupted under backpressure")
	}
}

func TestAcceptWithoutOffers(t *testing.T) {
	b := bootNode(t, Config{NodeID: 2})
	if _, _, err := b.node.Accept(b.user); !errors.Is(err, kernel.ErrAgain) {
		t.Fatalf("accept with no offers = %v, want EAGAIN", err)
	}
}
