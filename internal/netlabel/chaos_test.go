package netlabel

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
)

// chaosNetRates is the link-fault mix for the transport chaos runs:
// frequent frame loss, occasional link kills.
var chaosNetRates = faultinject.Rates{Error: 0.05, Crash: 0.02}

// TestChaosLinkFaults storms the transport across seeds with faults on
// every net.* site — dials that fail, handshakes that die midway, flushed
// batches eaten by the wire, links killed under live channels. The
// invariants: no panic, no corruption (every byte that arrives is the
// byte the sender's channel carries), and Close always converges.
func TestChaosLinkFaults(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		planA := faultinject.NewPlan(seed)
		planA.SetRates("net.", chaosNetRates)
		planB := faultinject.NewPlan(seed + 1000)
		planB.SetRates("net.", chaosNetRates)

		a := bootNode(t, Config{NodeID: 1, Injector: planA})
		b := bootNode(t, Config{NodeID: 2, Injector: planB})

		// Open a few channels; under fault injection some dials are
		// allowed to fail closed — those channels simply don't exist.
		type ch struct {
			fd   kernel.FD
			fill byte
		}
		var opened []ch
		for i := 0; i < 4; i++ {
			fd, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{})
			if err != nil {
				if !errors.Is(err, ErrLinkDown) {
					t.Fatalf("seed %d: open = %v, want success or ErrLinkDown", seed, err)
				}
				continue
			}
			opened = append(opened, ch{fd: fd, fill: byte('A' + i)})
		}

		// Blast traffic while pumping both ends. Sends never error — the
		// channel is unreliable, not the syscall.
		for round := 0; round < 20; round++ {
			for _, c := range opened {
				payload := make([]byte, 100)
				for j := range payload {
					payload[j] = c.fill
				}
				if n, err := a.k.Send(a.user, c.fd, payload); err != nil || n != len(payload) {
					t.Fatalf("seed %d: send = %d, %v (sender observed the fault)", seed, n, err)
				}
			}
			a.node.Pump()
			b.node.Pump()
		}

		// Drain whatever survived the faulted links: bytes may be missing
		// (dropped batches, dead conns, lost Opens) but never altered.
		buf := make([]byte, 4096)
		for drained := false; !drained; {
			drained = true
			b.node.Pump()
			for {
				fd, labels, err := b.node.Accept(b.user)
				if err != nil {
					break
				}
				drained = false
				if !labels.IsEmpty() {
					t.Fatalf("seed %d: accepted labels %v, want empty", seed, labels)
				}
				for {
					n, rerr := b.k.Recv(b.user, fd, buf)
					if rerr != nil {
						break
					}
					first := buf[0]
					if first < 'A' || first > 'D' {
						t.Fatalf("seed %d: corrupt byte %q", seed, first)
					}
					for _, by := range buf[:n] {
						if by != first {
							t.Fatalf("seed %d: interleaved channel data", seed)
						}
					}
				}
			}
		}
		a.node.Close()
		b.node.Close()
	}
}

// TestChaosDialAlwaysFaulted pins the dial site at certain failure: Open
// must fail closed with ErrLinkDown after bounded retries, never hang.
func TestChaosDialAlwaysFaulted(t *testing.T) {
	plan := faultinject.NewPlan(7)
	plan.SetRates("net.dial", faultinject.Rates{Error: 1})
	a := bootNode(t, Config{NodeID: 1, Injector: plan})
	b := bootNode(t, Config{NodeID: 2})
	if _, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("open over dead wire = %v, want ErrLinkDown", err)
	}
	if a.rec.M.FaultTrips.Load() == 0 {
		t.Error("dial faults left no trip telemetry")
	}
}

// TestChaosHandshakeKilled kills the link mid-handshake on the accepting
// side: the dialer exhausts retries and fails closed; the acceptor
// records the aborted handshake with LayerNet provenance.
func TestChaosHandshakeKilled(t *testing.T) {
	plan := faultinject.NewPlan(11)
	plan.SetRates("net.handshake", faultinject.Rates{Crash: 1})
	a := bootNode(t, Config{NodeID: 1})
	b := bootNode(t, Config{NodeID: 2, Injector: plan})
	if _, err := a.node.Open(a.user, b.node.Addr(), difc.Labels{}); err == nil {
		t.Fatal("open succeeded across a link that dies mid-handshake")
	}
	if b.rec.M.Denials.Load() == 0 {
		t.Error("killed handshake left no provenance on the acceptor")
	}
}
