package netlabel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"laminar/internal/difc"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Version: Version, Type: FrameHello, Payload: AppendHello(nil, Version, 42)},
		{Version: Version, Type: FrameOpen, Channel: 7, Payload: []byte{0, 0, 0, 0, 0, 0, 0, 0}},
		{Version: Version, Type: FrameData, Channel: 3, Payload: []byte("payload")},
		{Version: Version, Type: FrameClose, Channel: 1 << 30},
		{Version: 9, Type: FrameData, Channel: 0, Payload: nil}, // foreign version still decodes
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	for i, want := range frames {
		got, n, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Version != want.Version || got.Type != want.Type ||
			got.Channel != want.Channel || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		wire = wire[n:]
	}
	if len(wire) != 0 {
		t.Fatalf("%d trailing bytes", len(wire))
	}
}

func TestDecodeFrameShort(t *testing.T) {
	full := AppendFrame(nil, Frame{Version: Version, Type: FrameData, Channel: 1, Payload: []byte("abcd")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); err != ErrShort {
			t.Fatalf("prefix %d: err = %v, want ErrShort", cut, err)
		}
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	good := AppendFrame(nil, Frame{Version: Version, Type: FrameData, Payload: []byte("x")})

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0xFF
	if _, _, err := DecodeFrame(badMagic); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad magic: %v", err)
	}

	badType := append([]byte(nil), good...)
	badType[3] = byte(frameTypeMax) + 1
	if _, _, err := DecodeFrame(badType); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad type: %v", err)
	}
	badType[3] = 0
	if _, _, err := DecodeFrame(badType); !errors.Is(err, ErrMalformed) {
		t.Errorf("zero type: %v", err)
	}

	// An attacker-controlled length beyond MaxPayload must be rejected
	// before any allocation, not treated as a short read forever.
	oversize := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(oversize[8:], MaxPayload+1)
	if _, _, err := DecodeFrame(oversize); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversize: %v", err)
	}
}

func TestDecodePayloadIsCopied(t *testing.T) {
	wire := AppendFrame(nil, Frame{Version: Version, Type: FrameData, Payload: []byte("abcd")})
	f, _, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire[HeaderSize] = 'Z'
	if string(f.Payload) != "abcd" {
		t.Fatalf("payload aliases input buffer: %q", f.Payload)
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	cases := []difc.Labels{
		{},
		{S: difc.NewLabel(1, 2, 3)},
		{I: difc.NewLabel(99)},
		{S: difc.NewLabel(7, 8), I: difc.NewLabel(1, 1<<62)},
	}
	for i, want := range cases {
		b := AppendLabels(nil, want)
		got, n, err := ParseLabels(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(b))
		}
		if !got.Equal(want) {
			t.Fatalf("case %d: got %v want %v", i, got, want)
		}
	}
}

func TestParseLabelsCanonicalizes(t *testing.T) {
	// Handcraft a non-canonical encoding: duplicated, unsorted tags. The
	// parser must produce the one canonical lattice point — a hostile
	// peer cannot smuggle two representations of the same label.
	var b []byte
	b = binary.BigEndian.AppendUint32(b, 3)
	for _, tag := range []uint64{5, 2, 5} {
		b = binary.BigEndian.AppendUint64(b, tag)
	}
	b = binary.BigEndian.AppendUint32(b, 0) // empty integrity label
	got, _, err := ParseLabels(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.S.Equal(difc.NewLabel(2, 5)) {
		t.Fatalf("parsed %v, want canonical {2,5}", got.S)
	}
}

func TestParseLabelsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0},                      // truncated header
		{0, 0, 0, 2, 0, 0},          // tag count 2, body truncated
		binary.BigEndian.AppendUint32(nil, MaxPayload), // absurd tag count
	}
	for i, b := range cases {
		if _, _, err := ParseLabels(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil, Version, 0xDEADBEEF)
	ver, id, err := ParseHello(b)
	if err != nil || ver != Version || id != 0xDEADBEEF {
		t.Fatalf("hello = %d, %#x, %v", ver, id, err)
	}
	if _, _, err := ParseHello(b[:4]); !errors.Is(err, ErrMalformed) {
		t.Errorf("short hello: %v", err)
	}
}
