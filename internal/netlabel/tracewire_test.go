package netlabel

import (
	"errors"
	"testing"

	"laminar/internal/telemetry"
)

func TestTraceExtRoundTrip(t *testing.T) {
	ctx := telemetry.TraceCtx{TraceID: 1<<32 | 7, Hop: 2, Origin: 1, OriginEpoch: 5}
	b := AppendTraceExt(nil, ctx)
	got, ok, err := ParseTraceExt(b)
	if err != nil || !ok {
		t.Fatalf("ParseTraceExt = %v, %v", ok, err)
	}
	if got != ctx {
		t.Fatalf("round trip = %+v, want %+v", got, ctx)
	}
}

func TestTraceExtAbsentTolerated(t *testing.T) {
	// Old peers send no extension at all: not an error, just no context.
	if _, ok, err := ParseTraceExt(nil); ok || err != nil {
		t.Fatalf("absent ext = %v, %v; want false, nil", ok, err)
	}
}

func TestTraceExtZeroIDMeansUnset(t *testing.T) {
	b := AppendTraceExt(nil, telemetry.TraceCtx{})
	if _, ok, err := ParseTraceExt(b); ok || err != nil {
		t.Fatalf("zero-id ext = %v, %v; want false, nil", ok, err)
	}
}

func TestTraceExtFutureVersionFailsClosed(t *testing.T) {
	// A future build's extension must be refused with ErrTraceVersion —
	// distinguishable from hostile bytes so only the open dies, not the
	// connection.
	b := AppendTraceExt(nil, telemetry.TraceCtx{TraceID: 9, Origin: 1})
	b[1] = TraceExtVersion + 1
	if _, _, err := ParseTraceExt(b); !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("future version error = %v, want ErrTraceVersion", err)
	}
	if _, _, err := ParseTraceExt(b); errors.Is(err, ErrMalformed) {
		t.Fatal("future version misclassified as malformed")
	}
}

func TestTraceExtMalformed(t *testing.T) {
	good := AppendTraceExt(nil, telemetry.TraceCtx{TraceID: 9, Origin: 1})
	cases := map[string][]byte{
		"unknown magic":   {0xFF, TraceExtVersion, 0, 0},
		"truncated magic": {traceExtMagic},
		"short body":      good[:10],
		"trailing bytes":  append(append([]byte(nil), good...), 0x00),
	}
	for name, b := range cases {
		if _, _, err := ParseTraceExt(b); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}
