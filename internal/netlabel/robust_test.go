package netlabel

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/telemetry"
)

// TestDialBackoffSequencePinned pins the exact deterministic backoff
// schedule: doubling from backoffBase, saturating at backoffMax forever.
// The shift is bounded BEFORE it is taken, so huge retry budgets (cluster
// mode re-dials suspects for whole epochs) can never overflow the
// duration into a negative or absurd sleep.
func TestDialBackoffSequencePinned(t *testing.T) {
	ms := time.Millisecond
	want := []time.Duration{
		0,        // attempt 0: the first dial never sleeps
		1 * ms, 2 * ms, 4 * ms, 8 * ms, 16 * ms, 32 * ms, 64 * ms,
		128 * ms, // attempt 8 reaches the ceiling...
		128 * ms, 128 * ms, 128 * ms, // ...and stays there
	}
	for attempt, w := range want {
		if got := dialBackoff(attempt); got != w {
			t.Errorf("dialBackoff(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Attempts far past any shift width stay pinned to the ceiling.
	for _, attempt := range []int{63, 64, 65, 1000, 1 << 20} {
		if got := dialBackoff(attempt); got != backoffMax {
			t.Errorf("dialBackoff(%d) = %v, want saturated %v", attempt, got, backoffMax)
		}
	}
	if got := dialBackoff(-5); got != 0 {
		t.Errorf("dialBackoff(-5) = %v, want 0", got)
	}
}

// TestHalfOpenPeerDroppedFailClosed connects to a node and never sends a
// Hello: the node must cut the connection off at the handshake deadline
// with LayerNet provenance, and no channel may ever materialize.
func TestHalfOpenPeerDroppedFailClosed(t *testing.T) {
	b := bootNode(t, Config{NodeID: 2, HandshakeTimeout: 100 * time.Millisecond})
	var denies atomic.Int32
	unsub := b.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerNet && e.Site == "netd.handshake" {
			denies.Add(1)
		}
	})
	defer unsub()

	nc, err := net.Dial("tcp", b.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Stonewall: connected, silent. The node must hang up on us.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, rerr := nc.Read(make([]byte, 16)); rerr == nil {
		t.Fatalf("half-open peer was sent %d bytes, want silent teardown", n)
	}
	if denies.Load() == 0 {
		t.Error("half-open timeout left no LayerNet provenance")
	}
	b.node.Pump()
	if _, _, err := b.node.Accept(b.user); err == nil {
		t.Error("half-open peer produced a deliverable channel")
	}
}

// TestHalfOpenDialIndistinguishable opens toward (a) a listener that
// accepts and stonewalls and (b) an address nothing listens on. Both must
// surface the BARE ErrLinkDown sentinel — byte-identical errors — so a
// sender cannot use dial failures to distinguish a stonewalling peer from
// an absent one (failure signals must not become a side channel).
func TestHalfOpenDialIndistinguishable(t *testing.T) {
	a := bootNode(t, Config{NodeID: 1, DialRetries: 1, HandshakeTimeout: 100 * time.Millisecond})

	// (a) accepts the TCP connection, never answers the Hello.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, aerr := ln.Accept()
			if aerr != nil {
				return
			}
			defer c.Close()
		}
	}()
	_, errStonewall := a.node.Open(a.user, ln.Addr().String(), difc.Labels{})

	// (b) nothing listening at all.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	_, errAbsent := a.node.Open(a.user, deadAddr, difc.Labels{})

	if !errors.Is(errStonewall, ErrLinkDown) || !errors.Is(errAbsent, ErrLinkDown) {
		t.Fatalf("want ErrLinkDown from both, got %v / %v", errStonewall, errAbsent)
	}
	if errStonewall.Error() != errAbsent.Error() {
		t.Fatalf("distinguishable dial failures: %q vs %q", errStonewall, errAbsent)
	}
}

// TestVersionMismatchProvenanceReplayable pins the provenance contract of
// a handshake version rejection: the LayerNet event must carry the peer
// (address and claimed node id) and both version pairs, and the record
// must survive the explain-denial pipeline (laminar-trace renders it via
// telemetry.Explain on a dumped event).
func TestVersionMismatchProvenanceReplayable(t *testing.T) {
	b := bootNode(t, Config{NodeID: 2})
	var got atomic.Pointer[telemetry.Event]
	unsub := b.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerNet && e.Site == "netd.handshake" && e.Op == "version" {
			got.Store(&e)
		}
	})
	defer unsub()

	nc, err := net.Dial("tcp", b.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	local := nc.LocalAddr().String()
	bad := Frame{Version: 2, Type: FrameHello, Payload: AppendHello(nil, 2, 77)}
	if _, err := nc.Write(AppendFrame(nil, bad)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, rerr := nc.Read(make([]byte, 64)); rerr == nil {
		t.Fatalf("got %d bytes back, want rejection", n)
	}

	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e := got.Load()
	if e == nil {
		t.Fatal("version rejection emitted no netd.handshake/version event")
	}
	for _, want := range []string{local, "node 77", "version 2/2", "want 1"} {
		if !strings.Contains(e.Detail, want) {
			t.Errorf("event detail %q missing %q", e.Detail, want)
		}
	}
	// The same record must explain after a dump/replay round-trip, which
	// is exactly what laminar-trace explain-denial runs.
	text := telemetry.Explain(*e)
	for _, want := range []string{"netd.handshake", "node 77", "version 2/2"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain-denial output %q missing %q", text, want)
		}
	}
}
