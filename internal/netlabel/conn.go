package netlabel

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport robustness constants, following the FreeCS transport's
// discipline: bounded retries, deterministic doubling backoff, deadlines
// on every blocking wire operation, and shed-at-the-door capacity caps.
const (
	dialTimeout      = 2 * time.Second
	handshakeTimeout = 2 * time.Second
	writeTimeout     = 5 * time.Second
	backoffBase      = time.Millisecond       // doubles per failed dial attempt
	backoffMax       = 128 * time.Millisecond // deterministic backoff ceiling

	defaultDialRetries = 3
	defaultMaxConns    = 64
	defaultMaxQueue    = 256 * 1024 // outbound bytes per conn before backpressure
	defaultDrainChunk  = 16 * 1024  // max payload per Data frame
)

// dialBackoff is the sleep before dial attempt n (the first retry is
// attempt 1): backoffBase doubling per attempt, saturating at backoffMax.
// The shift is bounded before it is taken, so arbitrarily large retry
// budgets (cluster mode re-dials suspects for a whole membership epoch)
// cannot overflow into a negative or absurd sleep.
func dialBackoff(attempt int) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := backoffBase
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= backoffMax {
			return backoffMax
		}
	}
	if d > backoffMax {
		return backoffMax
	}
	return d
}

// conn is one TCP connection to a peer node, after a successful
// handshake. A reader goroutine decodes inbound frames into an inbox the
// node's Pump applies; outbound frames queue under mu until Flush ships
// them (coalesced into one write when batching is on).
type conn struct {
	node   *Node
	nc     net.Conn
	addr   string // dial key; "" for accepted connections
	dialed bool
	peerID uint64

	mu       sync.Mutex
	out      [][]byte // encoded frames awaiting flush
	outBytes int
	dead     bool
	nextChan uint32 // parity-split id space: dialer odd, acceptor even

	inMu  sync.Mutex
	inbox []Frame
}

func newConn(n *Node, nc net.Conn, addr string, dialed bool, peerID uint64) *conn {
	c := &conn{node: n, nc: nc, addr: addr, dialed: dialed, peerID: peerID}
	// The channel id space is split by direction so both ends can open
	// channels on one pooled connection without coordination.
	if dialed {
		c.nextChan = 1
	} else {
		c.nextChan = 2
	}
	return c
}

// allocChan hands out the next channel id for this side of the conn.
func (c *conn) allocChan() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextChan
	c.nextChan += 2
	return id
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// kill tears the link down: everything queued or in flight is lost,
// which the unreliable-channel semantics already permit. Idempotent.
func (c *conn) kill() {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.out = nil
	c.outBytes = 0
	c.mu.Unlock()
	c.nc.Close()
}

// enqueue appends an encoded frame to the outbound queue. A full queue
// or a dead link drops the frame silently (backpressure: the caller
// stops draining channels once queueSpace hits zero, so drops here only
// happen for control frames racing a full queue).
func (c *conn) enqueue(frame []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead || c.outBytes+len(frame) > c.node.cfg.MaxQueue {
		return false
	}
	c.out = append(c.out, frame)
	c.outBytes += len(frame)
	return true
}

// queueSpace reports how many outbound bytes fit before backpressure.
func (c *conn) queueSpace() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0
	}
	return c.node.cfg.MaxQueue - c.outBytes
}

// flush ships the queued frames: one coalesced write with batching on,
// one write per frame with it off. A write error or an injected link
// fault kills the connection; the frames are gone either way, exactly
// like messages lost on the wire.
func (c *conn) flush() int {
	c.mu.Lock()
	frames := c.out
	c.out = nil
	c.outBytes = 0
	dead := c.dead
	c.mu.Unlock()
	if dead || len(frames) == 0 {
		return 0
	}
	switch c.node.injectAt("net.flush") {
	case faultError:
		// The link ate the batch: frames lost, connection survives.
		c.node.count("net.flush.dropped", len(frames))
		return 0
	case faultCrash:
		c.kill()
		return 0
	}
	c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	if c.node.cfg.Batching {
		var buf []byte
		for _, f := range frames {
			buf = append(buf, f...)
		}
		if _, err := c.nc.Write(buf); err != nil {
			c.kill()
			return 0
		}
	} else {
		for _, f := range frames {
			if _, err := c.nc.Write(f); err != nil {
				c.kill()
				return 0
			}
		}
	}
	c.node.count("net.tx.frames", len(frames))
	return len(frames)
}

// readLoop decodes inbound frames into the inbox until the link dies.
// Malformed input and version mismatches kill the connection fail-closed
// with LayerNet provenance; policy stays out of this goroutine entirely
// (Pump applies frames, so fault-injection and verdict order do not
// depend on network timing more than frame arrival itself does).
func (c *conn) readLoop() {
	defer c.node.wg.Done()
	defer c.kill()
	var acc []byte
	tmp := make([]byte, 32*1024)
	for {
		c.nc.SetReadDeadline(time.Time{})
		n, err := c.nc.Read(tmp)
		if n > 0 {
			acc = append(acc, tmp[:n]...)
			for {
				f, consumed, derr := DecodeFrame(acc)
				if derr == ErrShort {
					break
				}
				if derr != nil {
					c.node.deny("netd.frame", "decode", derr)
					return
				}
				acc = acc[consumed:]
				if f.Version != Version {
					c.node.deny("netd.frame", "version",
						fmt.Errorf("frame version %d, want %d", f.Version, Version))
					return
				}
				c.inMu.Lock()
				c.inbox = append(c.inbox, f)
				c.inMu.Unlock()
			}
		}
		if err != nil {
			return
		}
	}
}

// takeInbox removes and returns the frames received so far.
func (c *conn) takeInbox() []Frame {
	c.inMu.Lock()
	defer c.inMu.Unlock()
	frames := c.inbox
	c.inbox = nil
	return frames
}

// readFrameSync reads exactly one frame synchronously (handshake only).
func readFrameSync(nc net.Conn, deadline time.Duration) (Frame, error) {
	nc.SetReadDeadline(time.Now().Add(deadline))
	defer nc.SetReadDeadline(time.Time{})
	var acc []byte
	tmp := make([]byte, 4096)
	for {
		f, _, err := DecodeFrame(acc)
		if err == nil {
			return f, nil
		}
		if err != ErrShort {
			return Frame{}, err
		}
		n, rerr := nc.Read(tmp)
		acc = append(acc, tmp[:n]...)
		if rerr != nil {
			return Frame{}, rerr
		}
	}
}

// writeFrameSync writes one frame synchronously (handshake only).
func writeFrameSync(nc net.Conn, f Frame) error {
	nc.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	defer nc.SetWriteDeadline(time.Time{})
	_, err := nc.Write(AppendFrame(nil, f))
	return err
}
