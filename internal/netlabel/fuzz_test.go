package netlabel

import (
	"bytes"
	"testing"

	"laminar/internal/difc"
)

// FuzzLabelWire fuzzes the label codec: any input either fails cleanly
// or parses to labels whose canonical re-encoding round-trips to the
// same lattice point (parse∘encode is the identity on canonical forms,
// and parse canonicalizes everything else).
func FuzzLabelWire(f *testing.F) {
	f.Add(AppendLabels(nil, difc.Labels{}))
	f.Add(AppendLabels(nil, difc.Labels{S: difc.NewLabel(1, 2, 3), I: difc.NewLabel(9)}))
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, n, err := ParseLabels(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := AppendLabels(nil, l)
		l2, n2, err := ParseLabels(enc)
		if err != nil {
			t.Fatalf("re-parse of canonical encoding failed: %v", err)
		}
		if n2 != len(enc) || !l2.Equal(l) {
			t.Fatalf("round trip changed labels: %v -> %v", l, l2)
		}
		// Canonical encodings are a fixed point.
		if !bytes.Equal(AppendLabels(nil, l2), enc) {
			t.Fatal("canonical encoding is not stable")
		}
	})
}

// FuzzFrameDecode fuzzes the frame codec: no panic, no allocation
// proportional to attacker-claimed lengths, and decoded frames re-encode
// to the exact consumed bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Version: Version, Type: FrameData, Channel: 5, Payload: []byte("hi")}))
	f.Add(AppendFrame(nil, Frame{Version: Version, Type: FrameHello, Payload: AppendHello(nil, Version, 1)}))
	f.Add([]byte{0x4C, 0x4E, 1, 4, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !bytes.Equal(AppendFrame(nil, fr), data[:n]) {
			t.Fatal("re-encode differs from consumed bytes")
		}
	})
}
