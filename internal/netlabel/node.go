package netlabel

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"laminar/internal/budget"
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

// Local aliases keep the fault-kind switches readable.
const (
	faultNone  = faultinject.None
	faultError = faultinject.Error
	faultCrash = faultinject.Crash
)

// ErrLinkDown reports that every dial attempt to a peer failed (bounded
// retries with doubling backoff exhausted).
var ErrLinkDown = errors.New("netlabel: link down")

// Config wires a Node to its kernel.
type Config struct {
	// Kernel is the local kernel whose tasks use the channels.
	Kernel *kernel.Kernel
	// Module adopts wire labels onto accepted channel inodes. With a nil
	// module (bare kernel) accepted endpoints are unlabeled.
	Module *lsm.Module
	// Injector is the optional deterministic fault injector; it is
	// consulted at the "net.*" sites (dial, accept, handshake, flush,
	// frame receive) so the chaos harness can kill links mid-handshake.
	Injector faultinject.Injector
	// Recorder overrides the kernel's telemetry recorder for the
	// transport's own provenance (LayerNet).
	Recorder *telemetry.Recorder
	// NodeID identifies this node in handshakes (diagnostic only).
	NodeID uint64
	// Tracing mints a telemetry.TraceCtx for every channel this node
	// opens and carries it in a versioned trailing extension on the
	// Open/OpenRouted frame, so every hop's verdict events share one
	// trace id. Purely observational: the context is derived only from
	// transport metadata the peer already sees (node id, epoch, an open
	// counter) and enforcement never reads it — the traced-vs-untraced
	// differential oracle holds the verdict streams byte-identical.
	Tracing bool

	// Batching coalesces each flush into a single TCP write.
	Batching bool
	// MaxQueue bounds outbound bytes per connection; a full queue stops
	// channel draining (backpressure) rather than growing without bound.
	MaxQueue int
	// DrainChunk is the largest Data-frame payload.
	DrainChunk int
	// DialRetries bounds dial attempts beyond the first.
	DialRetries int
	// HandshakeTimeout bounds each synchronous handshake read: a peer
	// that connects and then stonewalls (half-open) is cut off after this
	// long, fail-closed. Zero takes the 2s default; tests shrink it.
	HandshakeTimeout time.Duration
	// MaxConns caps accepted connections (shed at the door).
	MaxConns int

	// Control receives the payload of every Ctrl frame, in Pump order.
	// The transport never interprets control payloads; with a nil handler
	// they are dropped fail-closed. The cluster label plane
	// (internal/cluster) carries membership, join negotiation and epoch
	// announcements here.
	Control func(peerID uint64, payload []byte)
	// Routed decides the fate of an OpenRouted frame. The endpoint file
	// has already been created and label-adopted (per-hop adoption: every
	// node on a route attaches the wire labels to its own inode before
	// any verdict). A nil handler drops routed opens fail-closed.
	Routed func(o RoutedOffer) RoutedAction
}

// RoutedOffer is one received routed-channel open, handed to the Routed
// handler with the adopted local endpoint.
type RoutedOffer struct {
	PeerID  uint64
	Channel uint32
	Labels  difc.Labels
	Meta    []byte
	File    *kernel.File
	// Trace is the context the open carried (Traced false when the
	// origin sent none); a relay hands it onward so the whole route
	// shares one trace id.
	Trace  telemetry.TraceCtx
	Traced bool
}

// RoutedAction is the Routed handler's verdict on an offer.
type RoutedAction int

const (
	// RoutedDrop discards the open fail-closed: the endpoint is forgotten
	// and the opener cannot tell a refused route from a lossy link.
	RoutedDrop RoutedAction = iota
	// RoutedDeliver queues the channel as an ordinary local offer for
	// Accept — this node is the route's final destination.
	RoutedDeliver
	// RoutedClaim registers the channel for Data delivery but keeps it
	// out of the Accept queue: the handler owns the File and forwards its
	// bytes onward (the relay hop).
	RoutedClaim
)

// channel is one labeled cross-kernel channel: a local endpoint File
// plus the (conn, id) pair that addresses its remote half.
type channel struct {
	conn     *conn
	id       uint32
	file     *kernel.File
	labels   difc.Labels
	accepted bool // created by a remote Open
}

// Node is one kernel's attachment to the labeled network: a listener,
// a pool of per-peer connections, and the channel table. All policy
// lives in the kernels at the ends; the Node is trusted transport.
type Node struct {
	cfg Config
	rec *telemetry.Recorder
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	dialed map[string]*conn // connection pool, keyed by peer address
	conns  []*conn
	chans  []*channel
	offers []*channel // accepted channels awaiting Accept
	closed bool

	// pumpMu serializes Pump so frame application order is well defined
	// even when tests and a Run loop overlap.
	pumpMu sync.Mutex

	// traceSeq numbers the channels this node opens; with the node id it
	// forms the trace id, so tracing never reads labels or payloads.
	traceSeq atomic.Uint64
}

// NewNode builds a node around the kernel; Listen/Open activate it.
func NewNode(cfg Config) *Node {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = defaultMaxQueue
	}
	if cfg.DrainChunk <= 0 {
		cfg.DrainChunk = defaultDrainChunk
	}
	if cfg.DialRetries <= 0 {
		cfg.DialRetries = defaultDialRetries
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = defaultMaxConns
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = handshakeTimeout
	}
	rec := cfg.Recorder
	if rec == nil && cfg.Kernel != nil {
		rec = cfg.Kernel.Telemetry()
	}
	if rec != nil && cfg.NodeID != 0 {
		// Stamp the recorder with this node's identity so every event it
		// records is mergeable across nodes. The cluster layer overwrites
		// this with the persisted incarnation epoch once it is loaded.
		rec.SetNodeIdentity(cfg.NodeID, 0)
	}
	return &Node{cfg: cfg, rec: rec, dialed: make(map[string]*conn)}
}

// mintTrace builds a fresh trace context. Covert-channel invariant:
// every field is derivable from data the receiver may already see — the
// node id travels in each handshake, the incarnation epoch on the
// control plane, and the counter is as observable as the channel ids the
// transport assigns. Labels and payloads never influence it.
func (n *Node) mintTrace() telemetry.TraceCtx {
	var epoch uint64
	if n.rec != nil {
		_, epoch = n.rec.NodeIdentity()
	}
	return telemetry.TraceCtx{
		TraceID:     n.cfg.NodeID<<32 | (n.traceSeq.Add(1) & 0xffffffff),
		Origin:      n.cfg.NodeID,
		OriginEpoch: epoch,
	}
}

// bindTrace attaches a context to a local endpoint's inode in the
// recorder's registry — telemetry-only state, never read by enforcement.
func (n *Node) bindTrace(file *kernel.File, ctx telemetry.TraceCtx) {
	if n.rec != nil && file != nil {
		n.rec.BindTrace(uint64(file.Inode.Ino), ctx)
	}
}

// Listen starts accepting peer connections on addr (":0" for tests).
func (n *Node) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return nil
}

// Addr reports the listener address, for peers to dial.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		// An injected fault at the door is a link killed before the
		// handshake; the dialer sees a reset and retries.
		if n.injectAt("net.accept") != faultNone {
			nc.Close()
			continue
		}
		n.mu.Lock()
		closed, total := n.closed, len(n.conns)
		n.mu.Unlock()
		if closed {
			nc.Close()
			return
		}
		if total >= n.cfg.MaxConns {
			n.count("net.accept.shed", 1)
			nc.Close()
			continue
		}
		n.wg.Add(1)
		go n.handshakeServer(nc)
	}
}

// handshakeServer runs the accepting half of the version handshake.
// Anything unexpected — wrong frame, wrong version, a faulted link —
// closes the connection fail-closed with LayerNet provenance.
func (n *Node) handshakeServer(nc net.Conn) {
	defer n.wg.Done()
	if n.injectAt("net.handshake") != faultNone {
		n.deny("netd.handshake", "hello", errors.New("link fault mid-handshake"))
		nc.Close()
		return
	}
	f, err := readFrameSync(nc, n.cfg.HandshakeTimeout)
	if err != nil {
		n.deny("netd.handshake", "hello", err)
		nc.Close()
		return
	}
	if f.Type != FrameHello {
		n.deny("netd.handshake", "hello", fmt.Errorf("first frame is %s, want hello", f.Type))
		nc.Close()
		return
	}
	ver, peerID, perr := ParseHello(f.Payload)
	if perr != nil || f.Version != Version || ver != Version {
		// Full provenance for the rejection: who dialed (address and, when
		// the payload parsed, the claimed node id) and both version pairs.
		// laminar-trace explain-denial reconstructs the rejection from
		// this record alone.
		if perr == nil {
			perr = fmt.Errorf("peer %s (node %d) speaks protocol version %d/%d, want %d",
				nc.RemoteAddr(), peerID, f.Version, ver, Version)
		} else {
			perr = fmt.Errorf("peer %s: %w", nc.RemoteAddr(), perr)
		}
		n.deny("netd.handshake", "version", perr)
		nc.Close()
		return
	}
	if err := writeFrameSync(nc, Frame{Version: Version, Type: FrameHelloAck,
		Payload: AppendHello(nil, Version, n.cfg.NodeID)}); err != nil {
		nc.Close()
		return
	}
	c := newConn(n, nc, "", false, peerID)
	if !n.register(c) {
		return
	}
	n.wg.Add(1)
	go c.readLoop()
}

// handshakeClient runs the dialing half.
func (n *Node) handshakeClient(nc net.Conn, addr string) (*conn, error) {
	if n.injectAt("net.handshake") != faultNone {
		nc.Close()
		return nil, errors.New("netlabel: link fault mid-handshake")
	}
	if err := writeFrameSync(nc, Frame{Version: Version, Type: FrameHello,
		Payload: AppendHello(nil, Version, n.cfg.NodeID)}); err != nil {
		nc.Close()
		return nil, err
	}
	f, err := readFrameSync(nc, n.cfg.HandshakeTimeout)
	if err != nil {
		nc.Close()
		return nil, err
	}
	ver, peerID, perr := ParseHello(f.Payload)
	if f.Type != FrameHelloAck || perr != nil || f.Version != Version || ver != Version {
		n.deny("netd.handshake", "version", fmt.Errorf("bad hello-ack (type %s)", f.Type))
		nc.Close()
		return nil, fmt.Errorf("%w: handshake rejected", ErrLinkDown)
	}
	c := newConn(n, nc, addr, true, peerID)
	if !n.register(c) {
		return nil, errors.New("netlabel: node closed")
	}
	n.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// register publishes a handshaken connection; false when the node is
// already closed (the conn is killed).
func (n *Node) register(c *conn) bool {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.kill()
		return false
	}
	n.conns = append(n.conns, c)
	if c.addr != "" {
		n.dialed[c.addr] = c
	}
	n.mu.Unlock()
	return true
}

// dial returns the pooled connection to addr, establishing one with
// bounded retries and deterministic doubling backoff when none is live.
func (n *Node) dial(addr string) (*conn, error) {
	n.mu.Lock()
	if c, ok := n.dialed[addr]; ok && !c.isDead() {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	lastErr := error(ErrLinkDown)
	for attempt := 0; attempt <= n.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(dialBackoff(attempt))
		}
		if k := n.injectAt("net.dial"); k != faultNone {
			lastErr = fmt.Errorf("%w: injected %s at net.dial", ErrLinkDown, k)
			continue
		}
		nc, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		c, err := n.handshakeClient(nc, addr)
		if err != nil {
			lastErr = err
			continue
		}
		return c, nil
	}
	// The cause — refused, timed out half-open, version-rejected, link
	// fault — goes to telemetry only. The caller sees the bare sentinel,
	// so a peer that connects and stonewalls is indistinguishable from
	// one that refuses: failure signals must not become a side channel.
	n.deny("netd.dial", "connect", lastErr)
	return nil, ErrLinkDown
}

// Open opens a labeled channel to the peer at addr on behalf of t and
// returns the local descriptor. Creating the endpoint is a labeled
// create on the LOCAL kernel — the caller needs the capabilities for the
// channel labels, checked by InodeInitSecurity — and the labels travel
// to the peer in the Open frame. Whether anything ever arrives is the
// channel's business, not the opener's: after this returns, denials and
// losses are silent.
func (n *Node) Open(t *kernel.Task, addr string, labels difc.Labels) (kernel.FD, error) {
	labels = difc.InternLabels(labels)
	c, err := n.dial(addr)
	if err != nil {
		return -1, err
	}
	fd, file, err := n.cfg.Kernel.NetSocket(t, labels)
	if err != nil {
		return -1, err
	}
	id := c.allocChan()
	ch := &channel{conn: c, id: id, file: file, labels: labels}
	n.mu.Lock()
	n.chans = append(n.chans, ch)
	n.mu.Unlock()
	payload := AppendLabels(nil, labels)
	if n.cfg.Tracing {
		ctx := n.mintTrace()
		n.bindTrace(file, ctx)
		payload = AppendTraceExt(payload, ctx.NextHop())
	}
	if !c.enqueue(AppendFrame(nil, Frame{Version: Version, Type: FrameOpen,
		Channel: id, Payload: payload})) {
		// Queue full or link already dead: the Open is lost in flight.
		// The descriptor still exists; its sends just never arrive —
		// indistinguishable, by design, from a flaky network.
		n.count("net.open.dropped", 1)
	}
	c.flush()
	return fd, nil
}

// SendControl ships one opaque control payload to the peer at addr,
// dialing if no pooled connection is live. Delivery is as reliable as
// the link: a dead link or full queue loses the payload silently, which
// the cluster layer's retry discipline (heartbeats re-carry membership)
// already tolerates.
func (n *Node) SendControl(addr string, payload []byte) error {
	c, err := n.dial(addr)
	if err != nil {
		return err
	}
	if !c.enqueue(AppendFrame(nil, Frame{Version: Version, Type: FrameCtrl, Payload: payload})) {
		n.count("net.ctrl.dropped", 1)
		return nil
	}
	c.flush()
	return nil
}

// OpenRouted opens a labeled channel whose Open travels with a routing
// blob for the next hop's Routed handler. The local endpoint is created
// by t under the full labeled-create checks, exactly as Open — the
// origin of a route is an ordinary principal.
func (n *Node) OpenRouted(t *kernel.Task, addr string, labels difc.Labels, meta []byte) (kernel.FD, error) {
	labels = difc.InternLabels(labels)
	c, err := n.dial(addr)
	if err != nil {
		return -1, err
	}
	fd, file, err := n.cfg.Kernel.NetSocket(t, labels)
	if err != nil {
		return -1, err
	}
	var tr *telemetry.TraceCtx
	if n.cfg.Tracing {
		ctx := n.mintTrace()
		n.bindTrace(file, ctx)
		tr = &ctx
	}
	n.sendRoutedOpen(c, file, labels, meta, tr)
	return fd, nil
}

// OpenRoutedAdopted opens the onward leg of a route from a relay hop. No
// local principal creates this endpoint — its labels were adopted on the
// inbound leg and travel onward verbatim — so the trusted transport
// attaches them itself, mirroring NetSocketAdopted on the accept side.
// Per-hop policy is enforced where it belongs: on the relay task's
// checked Recv/Send between the two adopted endpoints.
//
// trace, when non-nil, is the context the inbound leg carried: it is
// bound to the outbound endpoint (so this hop's Send verdicts share the
// trace id) and travels onward bumped by one hop.
func (n *Node) OpenRoutedAdopted(addr string, labels difc.Labels, meta []byte, trace *telemetry.TraceCtx) (*kernel.File, error) {
	labels = difc.InternLabels(labels)
	c, err := n.dial(addr)
	if err != nil {
		return nil, err
	}
	file := n.cfg.Kernel.NetSocketAdopted(func(ino *kernel.Inode) {
		if n.cfg.Module != nil {
			n.cfg.Module.AdoptInodeLabels(ino, labels)
		}
	})
	if trace != nil {
		n.bindTrace(file, *trace)
	}
	n.sendRoutedOpen(c, file, labels, meta, trace)
	return file, nil
}

func (n *Node) sendRoutedOpen(c *conn, file *kernel.File, labels difc.Labels, meta []byte, trace *telemetry.TraceCtx) {
	id := c.allocChan()
	ch := &channel{conn: c, id: id, file: file, labels: labels}
	n.mu.Lock()
	n.chans = append(n.chans, ch)
	n.mu.Unlock()
	payload := AppendRoutedOpen(nil, labels, meta)
	if trace != nil {
		payload = AppendTraceExt(payload, trace.NextHop())
	}
	if !c.enqueue(AppendFrame(nil, Frame{Version: Version, Type: FrameOpenRouted,
		Channel: id, Payload: payload})) {
		n.count("net.open.dropped", 1)
	}
	c.flush()
}

// Accept claims the oldest channel a peer has opened toward this node,
// installing its endpoint in t. kernel.ErrAgain when none is pending.
// The channel's labels came from the wire; t's ability to actually read
// or write the endpoint is checked per operation by the LSM, exactly as
// for a local socket.
func (n *Node) Accept(t *kernel.Task) (kernel.FD, difc.Labels, error) {
	n.mu.Lock()
	if len(n.offers) == 0 {
		n.mu.Unlock()
		return -1, difc.Labels{}, kernel.ErrAgain
	}
	ch := n.offers[0]
	n.offers = n.offers[1:]
	n.mu.Unlock()
	return n.cfg.Kernel.InstallFile(t, ch.file), ch.labels, nil
}

// Pump applies received frames and ships approved outbound bytes: the
// transport's event loop, driven explicitly so tests control ordering
// (Run wraps it for daemons). Returns the number of frames moved in
// either direction; zero means quiescent.
func (n *Node) Pump() int {
	n.pumpMu.Lock()
	defer n.pumpMu.Unlock()
	n.mu.Lock()
	conns := append([]*conn(nil), n.conns...)
	n.mu.Unlock()
	work := 0
	observe := n.rec != nil && n.rec.Active()
	for _, c := range conns {
		for _, f := range c.takeInbox() {
			work++
			if observe {
				t0 := time.Now()
				n.apply(c, f)
				n.rec.M.ObserveLayer(telemetry.LayerNet, time.Since(t0))
			} else {
				n.apply(c, f)
			}
		}
	}
	n.mu.Lock()
	chans := append([]*channel(nil), n.chans...)
	n.mu.Unlock()
	for _, ch := range chans {
		// Drain bytes the sender's Send check already approved into Data
		// frames, stopping at the connection's queue bound: backpressure
		// leaves the rest in the endpoint buffer, where a full buffer
		// makes further sends drop silently — the same unreliable-channel
		// behaviour a slow local reader causes.
		for {
			space := ch.conn.queueSpace() - HeaderSize
			if space <= 0 {
				break
			}
			chunk := n.cfg.DrainChunk
			if chunk > space {
				chunk = space
			}
			data := n.cfg.Kernel.NetDrain(ch.file, chunk)
			if len(data) == 0 {
				break
			}
			// Budget charge (ISSUE 10): every secrecy tag on the channel
			// spends against this peer BEFORE the frame is queued — the
			// charge strictly precedes the transport effect, so a denied
			// or crash-torn charge leaves no frame to leak. Exhaustion
			// drops the chunk silently: the bytes were already drained
			// from the endpoint, which is exactly what a full queue or a
			// lossy link does to them (§5.2) — the sender, who observed
			// success at Send, learns nothing new.
			if err := n.chargeSend(ch, len(data)); err != nil {
				n.count("net.budget.dropped", 1)
				continue
			}
			ch.conn.enqueue(AppendFrame(nil, Frame{Version: Version, Type: FrameData,
				Channel: ch.id, Payload: data}))
			work++
		}
	}
	for _, c := range conns {
		c.flush()
	}
	return work
}

// apply processes one received frame.
func (n *Node) apply(c *conn, f Frame) {
	switch f.Type {
	case FrameOpen:
		// A faulted receive loses the Open: the channel never
		// materializes on this side, and the opener cannot tell.
		if n.injectAt("net.open.recv") != faultNone {
			n.count("net.open.lost", 1)
			return
		}
		labels, consumed, err := ParseLabels(f.Payload)
		if err != nil {
			n.deny("netd.open", "labels", err)
			c.kill()
			return
		}
		tctx, traced, ok := n.parseOpenExt(c, f.Payload[consumed:])
		if !ok {
			return
		}
		labels = difc.InternLabels(labels)
		file := n.cfg.Kernel.NetSocketAdopted(func(ino *kernel.Inode) {
			if n.cfg.Module != nil {
				n.cfg.Module.AdoptInodeLabels(ino, labels)
			}
		})
		if traced {
			n.bindTrace(file, tctx)
		}
		ch := &channel{conn: c, id: f.Channel, file: file, labels: labels, accepted: true}
		n.mu.Lock()
		n.chans = append(n.chans, ch)
		n.offers = append(n.offers, ch)
		n.mu.Unlock()
		n.count("net.open.accepted", 1)
	case FrameData:
		switch n.injectAt("net.frame.recv") {
		case faultError:
			n.count("net.rx.dropped", 1)
			return
		case faultCrash:
			c.kill()
			return
		}
		ch := n.findChan(c, f.Channel)
		if ch == nil {
			// Data for a channel this side never saw (lost Open, or one
			// closed underneath): dropped, silently.
			n.count("net.rx.unknown-channel", 1)
			return
		}
		if n.cfg.Kernel.NetFeed(ch.file, f.Payload) {
			n.count("net.rx.frames", 1)
		} else {
			n.count("net.rx.overflow", 1)
		}
	case FrameClose:
		n.removeChan(c, f.Channel)
	case FrameCtrl:
		// Control payloads belong to the layer above; no handler means no
		// layer, and the payload is dropped fail-closed.
		if n.cfg.Control == nil {
			n.count("net.ctrl.unhandled", 1)
			return
		}
		n.cfg.Control(c.peerID, f.Payload)
	case FrameOpenRouted:
		if n.injectAt("net.open.recv") != faultNone {
			n.count("net.open.lost", 1)
			return
		}
		labels, meta, ext, err := ParseRoutedOpen(f.Payload)
		if err != nil {
			n.deny("netd.open", "labels", err)
			c.kill()
			return
		}
		tctx, traced, ok := n.parseOpenExt(c, ext)
		if !ok {
			return
		}
		if n.cfg.Routed == nil {
			n.count("net.open.unrouted", 1)
			return
		}
		labels = difc.InternLabels(labels)
		file := n.cfg.Kernel.NetSocketAdopted(func(ino *kernel.Inode) {
			if n.cfg.Module != nil {
				n.cfg.Module.AdoptInodeLabels(ino, labels)
			}
		})
		if traced {
			n.bindTrace(file, tctx)
		}
		ch := &channel{conn: c, id: f.Channel, file: file, labels: labels, accepted: true}
		switch n.cfg.Routed(RoutedOffer{PeerID: c.peerID, Channel: f.Channel,
			Labels: labels, Meta: meta, File: file, Trace: tctx, Traced: traced}) {
		case RoutedDeliver:
			n.mu.Lock()
			n.chans = append(n.chans, ch)
			n.offers = append(n.offers, ch)
			n.mu.Unlock()
			n.count("net.open.accepted", 1)
		case RoutedClaim:
			n.mu.Lock()
			n.chans = append(n.chans, ch)
			n.mu.Unlock()
			n.count("net.open.relayed", 1)
		default:
			// Dropped fail-closed: the endpoint is never published and the
			// opener cannot distinguish the refusal from a lossy link.
			n.count("net.open.refused", 1)
		}
	default:
		// Hello frames after the handshake are a protocol violation.
		n.deny("netd.frame", "unexpected", fmt.Errorf("%s frame outside handshake", f.Type))
		c.kill()
	}
}

// parseOpenExt decodes the trailing extension region of an Open or
// OpenRouted payload. An unknown extension VERSION refuses just this
// open fail-closed — a future peer is not an attacker, the connection
// stands — while structurally broken bytes kill the link like any other
// malformed frame. ok=false means the caller must drop the open.
func (n *Node) parseOpenExt(c *conn, ext []byte) (telemetry.TraceCtx, bool, bool) {
	tctx, traced, err := ParseTraceExt(ext)
	if err == nil {
		return tctx, traced, true
	}
	n.deny("netd.open", "trace-ext", err)
	if errors.Is(err, ErrTraceVersion) {
		n.count("net.open.ext-refused", 1)
		return telemetry.TraceCtx{}, false, false
	}
	c.kill()
	return telemetry.TraceCtx{}, false, false
}

func (n *Node) findChan(c *conn, id uint32) *channel {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ch := range n.chans {
		if ch.conn == c && ch.id == id {
			return ch
		}
	}
	return nil
}

func (n *Node) removeChan(c *conn, id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, ch := range n.chans {
		if ch.conn == c && ch.id == id {
			n.chans = append(n.chans[:i], n.chans[i+1:]...)
			return
		}
	}
}

// Run pumps on a fixed cadence until Close; daemon mode.
func (n *Node) Run(interval time.Duration) {
	for {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		n.Pump()
		time.Sleep(interval)
	}
}

// Close tears the node down: listener closed, every link killed, all
// goroutines joined. In-flight frames are lost, which the semantics
// already permit.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := append([]*conn(nil), n.conns...)
	ln := n.ln
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.kill()
	}
	n.wg.Wait()
}

// --- telemetry and fault plumbing ---

// deny records transport-layer provenance (LayerNet): handshake
// rejections, malformed frames, dead links. Policy denials never come
// through here — they are emitted by the kernels' own hook wrappers.
// chargeSend meters one drained chunk against the flow budget: each
// secrecy tag on the channel spends ceil(len/1KiB) units (min 1) keyed
// to the receiving peer's node id. A nil ledger or an unlabeled channel
// charges nothing. The denial carries LayerBudget provenance; the caller
// implements the silent drop.
func (n *Node) chargeSend(ch *channel, size int) error {
	led := n.cfg.Kernel.Budget()
	if led == nil || ch.labels.S.IsEmpty() {
		return nil
	}
	cost := budget.CostBytes(size)
	if err := led.ChargeLabel("send", ch.labels.S, ch.conn.peerID, cost); err != nil {
		if n.rec != nil && n.rec.Active() {
			n.rec.EmitDeny(telemetry.LayerBudget, "netd.send.budget", "send", 0, 0, err)
		}
		return err
	}
	return nil
}

func (n *Node) deny(site, op string, err error) {
	if n.rec == nil || !n.rec.Active() {
		return
	}
	n.rec.EmitDeny(telemetry.LayerNet, site, op, 0, 0, err)
}

// count bumps a free-form transport metric.
func (n *Node) count(name string, delta int) {
	if n.rec == nil || !n.rec.Active() {
		return
	}
	n.rec.M.Extra.Get(name).Add(0, uint64(delta))
}

// injectAt consults the fault injector at a transport site, recording
// the trip. Delay faults yield inside the injector; Error and Crash are
// interpreted by the call site (drop vs link kill).
func (n *Node) injectAt(site string) faultinject.Kind {
	if n.cfg.Injector == nil {
		return faultNone
	}
	k := n.cfg.Injector.At(site)
	if k == faultError || k == faultCrash {
		if n.rec != nil && n.rec.Active() {
			n.rec.EmitFaultTrip(telemetry.LayerNet, site, 0, k.String())
		}
	}
	return k
}
