package eval

import (
	"fmt"
	"strings"

	"laminar"
	"laminar/internal/difc"
	"laminar/internal/flume"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/pagelabel"
)

// Table1Report reproduces the design-taxonomy table with executable
// probes: instead of quoting the papers, it demonstrates each claimed
// capability or gap on the implementations in this repository.
type Table1Report struct {
	// LaminarHeterogeneous: two differently-labeled objects accessed by
	// two threads in one address space under Laminar.
	LaminarHeterogeneous bool
	// FlumeHeterogeneous: the same configuration under a
	// process-granularity monitor (must be false).
	FlumeHeterogeneous bool
	// PageGranularityPages / ObjectCount: space cost of page-granularity
	// labeling for a heap of small heterogeneously labeled objects.
	ObjectCount           int
	PageGranularityPages  int
	PageGranularityWasted int
	// LaminarFilesEnforced: OS resources covered by the same labels
	// (language-only systems leave files unchecked).
	LaminarFilesEnforced bool
}

// Table1 runs the probes.
func Table1() (*Table1Report, error) {
	rep := &Table1Report{}

	// Probe 1: heterogeneous labels in one address space under Laminar.
	sys := laminar.NewSystem()
	shell, err := sys.Login("probe")
	if err != nil {
		return nil, err
	}
	_, th, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	t1, _ := th.CreateTag()
	t2, _ := th.CreateTag()
	ok1, ok2 := false, false
	th.Secure(laminar.Labels{S: laminar.NewLabel(t1)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
		ok1 = r.Get(o, "x") == 1
	}, nil)
	th.Secure(laminar.Labels{S: laminar.NewLabel(t2)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 2)
		ok2 = r.Get(o, "x") == 2
	}, nil)
	rep.LaminarHeterogeneous = ok1 && ok2

	// Probe 2: the same two labels under the Flume-style monitor.
	mon := flume.NewMonitor()
	p := mon.Spawn()
	f1, f2 := mon.CreateTag(p), mon.CreateTag(p)
	rep.FlumeHeterogeneous = mon.CanHoldBoth(
		difc.Labels{S: difc.NewLabel(f1)},
		difc.Labels{S: difc.NewLabel(f2)},
	)

	// Probe 3: page-granularity space cost for a GradeSheet-shaped heap —
	// 16 students × 8 projects of 64-byte cells, each with a distinct
	// label pair.
	heap := pagelabel.NewHeap()
	count := 0
	for i := 0; i < 16; i++ {
		for j := 0; j < 8; j++ {
			l := difc.Labels{
				S: difc.NewLabel(difc.Tag(100 + i)),
				I: difc.NewLabel(difc.Tag(200 + j)),
			}
			if _, err := heap.Alloc(64, l); err != nil {
				return nil, err
			}
			count++
		}
	}
	st := heap.Stats()
	rep.ObjectCount = count
	rep.PageGranularityPages = st.Pages
	rep.PageGranularityWasted = st.BytesWasted

	// Probe 4: the same label namespace covers files (PL-only systems
	// cannot check this). A tainted thread's write to an unlabeled file
	// must fail at the kernel.
	k := sys.Kernel()
	task := th.Task()
	if err := k.Chdir(task, "/tmp"); err != nil {
		return nil, err
	}
	fd, err := k.Open(task, "t1probe", laminar.OCreate|laminar.OWrite)
	if err != nil {
		return nil, err
	}
	var denied bool
	th.Secure(laminar.Labels{S: laminar.NewLabel(t1)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		_, werr := r.WriteFile(fd, []byte("leak"))
		denied = werr != nil
	}, nil)
	rep.LaminarFilesEnforced = denied
	return rep, nil
}

// Format renders the taxonomy.
func (r *Table1Report) Format() string {
	var b strings.Builder
	b.WriteString(header("Table 1 (probes): DIFC design-space claims, demonstrated"))
	yes := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(&b, "heterogeneously labeled objects in one address space:\n")
	fmt.Fprintf(&b, "  Laminar (object granularity):            %s\n", yes(r.LaminarHeterogeneous))
	fmt.Fprintf(&b, "  process-granularity monitor (Flume-like): %s\n", yes(r.FlumeHeterogeneous))
	fmt.Fprintf(&b, "page-granularity labeling (HiStar-like) on %d small objects:\n", r.ObjectCount)
	fmt.Fprintf(&b, "  pages pinned: %d, bytes wasted: %d (object granularity: 0 pages pinned)\n",
		r.PageGranularityPages, r.PageGranularityWasted)
	fmt.Fprintf(&b, "OS resources under the same labels (files checked in-kernel): %s\n",
		yes(r.LaminarFilesEnforced))
	return b.String()
}

// FlumeCompareReport reproduces the §6.2 framing: Flume adds 4–35× to
// syscall latency because every operation crosses a user-level monitor,
// while Laminar's in-kernel hooks add a few percent. We time one
// send/recv round trip through each.
type FlumeCompareReport struct {
	LaminarPipeNs float64
	FlumeIPCNs    float64
	Ratio         float64
}

// FlumeCompare measures both IPC paths.
func FlumeCompare(iters int) (*FlumeCompareReport, error) {
	// Laminar: kernel pipe with the LSM installed.
	mod := lsm.New()
	k := kernel.New(kernel.WithSecurityModule(mod))
	mod.InstallSystemIntegrity(k)
	task, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		return nil, err
	}
	rfd, wfd, err := k.Pipe(task)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	lam := timeIt(func() {
		for i := 0; i < iters; i++ {
			if _, err := k.Write(task, wfd, buf); err != nil {
				panic(err)
			}
			if _, err := k.Read(task, rfd, buf); err != nil {
				panic(err)
			}
		}
	})

	// Flume: endpoint pair through the user-level monitor. The monitor
	// adds queueing, copying and bookkeeping per crossing — the
	// structural source of its latency multiple.
	mon := flume.NewMonitor()
	a, b := mon.Spawn(), mon.Spawn()
	ea, eb, err := mon.CreateEndpointPair(a, b, difc.Labels{})
	if err != nil {
		return nil, err
	}
	fl := timeIt(func() {
		for i := 0; i < iters; i++ {
			if err := mon.Send(a, ea, buf); err != nil {
				panic(err)
			}
			if _, err := mon.Recv(b, eb); err != nil {
				panic(err)
			}
		}
	})

	rep := &FlumeCompareReport{
		LaminarPipeNs: float64(lam.Nanoseconds()) / float64(iters),
		FlumeIPCNs:    float64(fl.Nanoseconds()) / float64(iters),
	}
	if rep.LaminarPipeNs > 0 {
		rep.Ratio = rep.FlumeIPCNs / rep.LaminarPipeNs
	}
	return rep, nil
}

// Format renders the comparison.
func (r *FlumeCompareReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Flume-style monitor vs Laminar LSM: IPC round trip (§6.2 framing)"))
	fmt.Fprintf(&b, "Laminar kernel pipe: %8.0f ns/op\n", r.LaminarPipeNs)
	fmt.Fprintf(&b, "monitor endpoints:   %8.0f ns/op\n", r.FlumeIPCNs)
	fmt.Fprintf(&b, "ratio:               %8.2fx\n", r.Ratio)
	b.WriteString("\npaper: Flume adds 4–35× to syscall latency vs unmodified Linux;\n" +
		"Laminar's in-kernel hooks stay within a few percent (Table 2).\n")
	return b.String()
}

// Table4Report prints the GradeSheet security sets (Table 4) as
// constructed by the running policy.
type Table4Report struct {
	Students int
	Projects int
}

// Table4 builds the report (the policy itself is exercised by the
// gradesheet package's tests; this renders the sets).
func Table4(students, projects int) *Table4Report {
	return &Table4Report{Students: students, Projects: projects}
}

// Format renders Table 4 in the paper's notation.
func (r *Table4Report) Format() string {
	var b strings.Builder
	b.WriteString(header("Table 4: GradeSheet security sets"))
	fmt.Fprintf(&b, "%-16s %s\n", "name", "security set")
	fmt.Fprintf(&b, "%-16s S={s_i}, I={p_j}\n", "GradeCell(i,j)")
	fmt.Fprintf(&b, "%-16s C={s_i+, s_i-}\n", "Student(i)")
	fmt.Fprintf(&b, "%-16s C={s_1+..s_%d+, p_j+, p_j-}\n", "TA(j)", r.Students)
	fmt.Fprintf(&b, "%-16s C={(s_i+, s_i-, p_j+, p_j-) for all i<=%d, j<=%d}\n",
		"Professor", r.Students, r.Projects)
	return b.String()
}
