package eval

// Cluster benchmark: labeled-message throughput across the cluster label
// plane (msgs/sec vs node count, routed vs direct). For each node count a
// full cluster is formed — membership bootstrap, join changes, heartbeats
// all live — and one labeled channel is driven from node 1 to node N,
// either directly or routed through the relay at node 2, where the hop's
// own LSM re-checks every forwarded byte. The routed-vs-direct ratio is
// the price of a fully checked intermediate hop.
//
// Methodology mirrors eval/netd.go: burst into the endpoint up to the
// buffer budget, tick every node (pump + relays), drain at the receiver,
// so no byte ever hits the silent-drop path. Telemetry stays at the
// production default (recorder absent): the bench measures the plane, not
// the recorder.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"laminar/internal/cluster"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
)

// ClusterRow is one (node count, routing mode) measurement.
type ClusterRow struct {
	Nodes      int     `json:"nodes"`
	Routed     bool    `json:"routed"`
	Msgs       int     `json:"messages"`
	WallNs     int64   `json:"wall_ns"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	// RouteOverhead on routed rows: direct rate at the same node count
	// divided by this row's rate (≥1 means the checked hop costs that much).
	RouteOverhead float64 `json:"route_overhead,omitempty"`
}

// ClusterReport is the laminar-bench -cluster result (BENCH_cluster.json).
type ClusterReport struct {
	Msgs    int          `json:"messages_per_cell"`
	Payload int          `json:"payload_bytes"`
	Trials  int          `json:"trials"`
	Rows    []ClusterRow `json:"rows"`
}

// clusterPayload fixes the message size: one axis (node count × routing)
// is enough; the payload sweep already lives in the netd bench.
const clusterPayload = 1024

// clusterNodeCounts is the membership axis.
var clusterNodeCounts = []int{2, 3, 4}

// benchMember is one cluster member booted for the bench: kernel, LSM,
// user task and label-plane node, no recorder.
type benchMember struct {
	k    *kernel.Kernel
	user *kernel.Task
	cl   *cluster.Cluster
}

// bootBenchCluster forms an n-node cluster and ticks it to convergence.
func bootBenchCluster(n int) ([]*benchMember, error) {
	members := make([]*benchMember, 0, n)
	var seeds []string
	for id := 1; id <= n; id++ {
		mod := lsm.New()
		k := kernel.New(kernel.WithSecurityModule(mod))
		mod.InstallSystemIntegrity(k)
		user, err := k.Spawn(k.InitTask(), nil)
		if err != nil {
			return members, err
		}
		cl := cluster.New(cluster.Config{
			ID: uint64(id), Kernel: k, Module: mod, Seeds: seeds, Batching: true,
		})
		if err := cl.Listen("127.0.0.1:0"); err != nil {
			return members, err
		}
		if _, err := cl.Join(); err != nil {
			return members, err
		}
		if id == 1 {
			seeds = []string{cl.Addr()}
		}
		members = append(members, &benchMember{k: k, user: user, cl: cl})
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, m := range members {
			m.cl.Tick()
			if !m.cl.Joined() || !m.cl.Converged(ids...) {
				done = false
			}
		}
		if done {
			return members, nil
		}
		// Pace the ticks so a TCP round-trip spans about one of them:
		// busy-ticking outruns heartbeat delivery and flaps the detector.
		time.Sleep(200 * time.Microsecond)
		if time.Now().After(deadline) {
			return members, fmt.Errorf("cluster: %d nodes never converged", n)
		}
	}
}

// runCluster forms an n-node cluster and streams msgs labeled messages
// from node 1 to node n — directly, or routed through the checked relay
// at node 2 — returning the wall time from first send to last byte.
func runCluster(nodes, msgs int, routed bool) (time.Duration, error) {
	members, err := bootBenchCluster(nodes)
	defer func() {
		for _, m := range members {
			m.cl.Close()
		}
	}()
	if err != nil {
		return 0, err
	}
	src, dst := members[0], members[nodes-1]
	tickAll := func() {
		for _, m := range members {
			m.cl.Tick()
		}
	}

	// Establish with probe verification: a routed open landing in a
	// suspect window at the relay degrades to silence, so each attempt
	// sends a uniquely numbered probe and counts only when that probe
	// arrives on an accepted channel (no mispairing with a stale
	// duplicate from an earlier lost attempt).
	var (
		fdA, fdB    kernel.FD
		accepted    []kernel.FD
		established bool
		attempt     byte
	)
	rbuf := make([]byte, 64*1024)
	deadline := time.Now().Add(30 * time.Second)
	for !established {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("cluster: channel never established (routed=%v)", routed)
		}
		attempt++
		var fd kernel.FD
		if routed {
			fd, err = src.cl.OpenVia(src.user, 2, uint64(nodes), difc.Labels{})
		} else {
			fd, err = src.cl.Open(src.user, uint64(nodes), difc.Labels{})
		}
		if err != nil {
			tickAll()
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if _, serr := src.k.Send(src.user, fd, []byte{0xA5, attempt}); serr != nil {
			return 0, fmt.Errorf("cluster probe send: %w", serr)
		}
		for i := 0; i < 400 && !established; i++ {
			tickAll()
			time.Sleep(200 * time.Microsecond)
			for {
				afd, _, aerr := dst.cl.Node().Accept(dst.user)
				if aerr != nil {
					break
				}
				accepted = append(accepted, afd)
			}
			for _, afd := range accepted {
				if n, rerr := dst.k.Recv(dst.user, afd, rbuf); rerr == nil && n >= 2 &&
					rbuf[n-2] == 0xA5 && rbuf[n-1] == attempt {
					fdA, fdB, established = fd, afd, true
					break
				}
			}
		}
	}

	burst := netdEndpointBudget / clusterPayload
	msg := make([]byte, clusterPayload)
	for i := range msg {
		msg[i] = byte(i)
	}
	total := msgs * clusterPayload
	sent, received := 0, 0
	start := time.Now()
	for received < total {
		for sent < msgs && sent*clusterPayload-received < burst*clusterPayload {
			n, serr := src.k.Send(src.user, fdA, msg)
			if serr != nil || n != clusterPayload {
				return 0, fmt.Errorf("cluster send = %d, %v", n, serr)
			}
			sent++
		}
		tickAll()
		before := received
		for {
			n, rerr := dst.k.Recv(dst.user, fdB, rbuf)
			if rerr != nil {
				break
			}
			received += n
		}
		if received == before {
			time.Sleep(20 * time.Microsecond)
		}
		if time.Since(start) > 2*time.Minute {
			return 0, fmt.Errorf("cluster: stalled at %d/%d bytes (routed=%v)", received, total, routed)
		}
	}
	return time.Since(start), nil
}

// Cluster runs the throughput matrix: node count {2, 3, 4} × routing
// {direct, routed}, best of trials. Routed rows need at least 3 nodes
// (there is no intermediate hop in a pair).
func Cluster(msgs, trials int) (*ClusterReport, error) {
	rep := &ClusterReport{Msgs: msgs, Payload: clusterPayload, Trials: trials}
	direct := make(map[int]float64)
	for _, routed := range []bool{false, true} {
		for _, nodes := range clusterNodeCounts {
			if routed && nodes < 3 {
				continue
			}
			best := time.Duration(0)
			for tr := 0; tr < trials; tr++ {
				wall, err := runCluster(nodes, msgs, routed)
				if err != nil {
					return nil, fmt.Errorf("nodes %d routed %v: %w", nodes, routed, err)
				}
				if best == 0 || wall < best {
					best = wall
				}
			}
			row := ClusterRow{
				Nodes:      nodes,
				Routed:     routed,
				Msgs:       msgs,
				WallNs:     best.Nanoseconds(),
				MsgsPerSec: float64(msgs) / best.Seconds(),
				MBPerSec:   float64(msgs*clusterPayload) / (1 << 20) / best.Seconds(),
			}
			if !routed {
				direct[nodes] = row.MsgsPerSec
			} else if base := direct[nodes]; base > 0 && row.MsgsPerSec > 0 {
				row.RouteOverhead = base / row.MsgsPerSec
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// JSON renders the report for BENCH_cluster.json.
func (r *ClusterReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the text table for EXPERIMENTS.md.
func (r *ClusterReport) Format() string {
	var b strings.Builder
	b.WriteString(header("cluster: labeled throughput across the label plane (direct vs checked relay)"))
	fmt.Fprintf(&b, "%d messages of %d bytes per cell, best of %d trial(s); full membership + change engine live\n\n",
		r.Msgs, r.Payload, r.Trials)
	fmt.Fprintf(&b, "%-7s %8s %14s %12s %14s\n", "nodes", "path", "msgs/sec", "MB/sec", "hop overhead")
	for _, row := range r.Rows {
		path := "direct"
		ov := ""
		if row.Routed {
			path = "routed"
			ov = fmt.Sprintf("%12.2fx", row.RouteOverhead)
		}
		fmt.Fprintf(&b, "%-7d %8s %14.0f %12.2f %14s\n",
			row.Nodes, path, row.MsgsPerSec, row.MBPerSec, ov)
	}
	return b.String()
}
