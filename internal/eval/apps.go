package eval

import (
	"fmt"
	"strings"
	"time"

	"laminar"
	"laminar/internal/apps/battleship"
	"laminar/internal/apps/calendar"
	"laminar/internal/apps/freecs"
	"laminar/internal/apps/gradesheet"
	"laminar/internal/rt"
)

// AppRow is one case study's result: Table 3's %-time-in-SR column plus
// Figure 9's overhead and its attribution.
type AppRow struct {
	Name        string
	Unsecured   time.Duration
	Secured     time.Duration
	OverheadPct float64
	PctInSR     float64

	// Dynamic-check counts behind the Figure 9 breakdown.
	Regions    uint64
	Allocs     uint64
	RWBarriers uint64
	DynChecks  uint64

	// Attributed overhead shares (nanoseconds), from unit costs ×
	// counts: start/end SR, allocation barriers, read/write barriers.
	StartEndNs int64
	AllocNs    int64
	BarrierNs  int64
}

// AppsReport reproduces Table 3 (measured column) and Figure 9.
type AppsReport struct {
	Rows  []AppRow
	Units UnitCosts
}

// UnitCosts are microbenchmarked costs of the runtime's security
// primitives, used to attribute overhead to Figure 9's categories.
type UnitCosts struct {
	RegionNs  float64 // one empty security region enter+exit
	BarrierNs float64 // one read barrier on a labeled object
	AllocNs   float64 // one labeled allocation barrier (minus base alloc)
}

// MeasureUnitCosts microbenchmarks the primitives.
func MeasureUnitCosts() (UnitCosts, error) {
	sys := laminar.NewSystem()
	shell, err := sys.Login("unitbench")
	if err != nil {
		return UnitCosts{}, err
	}
	_, th, err := sys.LaunchVM(shell)
	if err != nil {
		return UnitCosts{}, err
	}
	tag, err := th.CreateTag()
	if err != nil {
		return UnitCosts{}, err
	}
	labels := laminar.Labels{S: laminar.NewLabel(tag)}
	const n = 20000

	u := UnitCosts{}
	d := medianTime(3, func() {
		for i := 0; i < n; i++ {
			th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {}, nil)
		}
	})
	u.RegionNs = float64(d.Nanoseconds()) / n

	var obj *laminar.Object
	th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		obj = r.Alloc(nil)
		r.Set(obj, "f", 1)
		d := medianTime(3, func() {
			for i := 0; i < n; i++ {
				r.Get(obj, "f")
			}
		})
		raw := medianTime(3, func() {
			for i := 0; i < n; i++ {
				obj.RawGet("f")
			}
		})
		u.BarrierNs = float64(d.Nanoseconds()-raw.Nanoseconds()) / n

		da := medianTime(3, func() {
			for i := 0; i < n; i++ {
				r.Alloc(nil)
			}
		})
		rawAlloc := medianTime(3, func() {
			for i := 0; i < n; i++ {
				laminar.NewObject()
			}
		})
		u.AllocNs = float64(da.Nanoseconds()-rawAlloc.Nanoseconds()) / n
	}, nil)
	if u.BarrierNs < 0 {
		u.BarrierNs = 0
	}
	if u.AllocNs < 0 {
		u.AllocNs = 0
	}
	return u, nil
}

// appDriver runs one case study's secured and unsecured variants.
type appDriver struct {
	name      string
	secured   func() (*rt.Stats, time.Duration, error)
	unsecured func() (time.Duration, error)
}

// Apps runs all four case studies at the given scale factor (1 = a quick
// run, larger = closer to the paper's workloads: 15×15 full games, 1,000
// meetings, thousands of chat commands).
func Apps(scale int) (*AppsReport, error) {
	units, err := MeasureUnitCosts()
	if err != nil {
		return nil, err
	}
	drivers := []appDriver{
		gradesheetDriver(200 * scale),
		battleshipDriver(scale),
		calendarDriver(100 * scale),
		freecsDriver(200 * scale),
	}
	rep := &AppsReport{Units: units}
	for _, d := range drivers {
		un, err := d.unsecured()
		if err != nil {
			return nil, fmt.Errorf("%s unsecured: %w", d.name, err)
		}
		stats, sec, err := d.secured()
		if err != nil {
			return nil, fmt.Errorf("%s secured: %w", d.name, err)
		}
		row := AppRow{
			Name:        d.name,
			Unsecured:   un,
			Secured:     sec,
			OverheadPct: pct(sec, un),
			Regions:     stats.RegionsEntered.Load(),
			Allocs:      stats.AllocBarriers.Load(),
			RWBarriers:  stats.ReadBarriers.Load() + stats.WriteBarriers.Load(),
			DynChecks:   stats.DynamicChecks.Load(),
		}
		if sec > 0 {
			row.PctInSR = float64(stats.RegionNanos.Load()) / float64(sec.Nanoseconds()) * 100
			if row.PctInSR > 100 {
				row.PctInSR = 100
			}
		}
		row.StartEndNs = int64(float64(row.Regions) * units.RegionNs)
		row.AllocNs = int64(float64(row.Allocs) * units.AllocNs)
		row.BarrierNs = int64(float64(row.RWBarriers) * units.BarrierNs)
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func gradesheetDriver(queries int) appDriver {
	return appDriver{
		name: "GradeSheet",
		secured: func() (*rt.Stats, time.Duration, error) {
			s, err := gradesheet.New(laminar.NewSystem(), 16, 8)
			if err != nil {
				return nil, 0, err
			}
			w := gradesheet.NewWorkload(1)
			w.RunSecured(s, 16) // warm-up
			s.VM().Stats().Reset()
			d := timeIt(func() { w.RunSecured(s, queries) })
			return s.VM().Stats(), d, nil
		},
		unsecured: func() (time.Duration, error) {
			u := gradesheet.NewUnsecured(16, 8)
			w := gradesheet.NewWorkload(1)
			w.RunUnsecured(u, 16)
			return timeIt(func() { w.RunUnsecured(u, queries) }), nil
		},
	}
}

func battleshipDriver(games int) appDriver {
	return appDriver{
		name: "Battleship",
		secured: func() (*rt.Stats, time.Duration, error) {
			agg := &rt.Stats{}
			var total time.Duration
			for g := 0; g < games; g++ {
				game, err := battleship.NewGame(laminar.NewSystem(), int64(g+1))
				if err != nil {
					return nil, 0, err
				}
				stats := game.A.VMStats()
				stats.Reset()
				var perr error
				total += timeIt(func() { _, perr = game.Play() })
				if perr != nil {
					return nil, 0, perr
				}
				agg.RegionsEntered.Add(stats.RegionsEntered.Load())
				agg.ReadBarriers.Add(stats.ReadBarriers.Load())
				agg.WriteBarriers.Add(stats.WriteBarriers.Load())
				agg.AllocBarriers.Add(stats.AllocBarriers.Load())
				agg.DynamicChecks.Add(stats.DynamicChecks.Load())
				agg.RegionNanos.Add(stats.RegionNanos.Load())
			}
			return agg, total, nil
		},
		unsecured: func() (time.Duration, error) {
			var total time.Duration
			for g := 0; g < games; g++ {
				game := battleship.NewUnsecuredGame(int64(g + 1))
				total += timeIt(func() { game.Play() })
			}
			return total, nil
		},
	}
}

func calendarDriver(meetings int) appDriver {
	return appDriver{
		name: "Calendar",
		secured: func() (*rt.Stats, time.Duration, error) {
			s, err := calendar.New(laminar.NewSystem())
			if err != nil {
				return nil, 0, err
			}
			s.VM().Stats().Reset()
			var serr error
			d := timeIt(func() {
				for i := 0; i < meetings; i++ {
					if _, err := s.ScheduleMeeting(); err != nil {
						if err == calendar.ErrNoSlot {
							if err := s.ResetAlice(); err != nil {
								serr = err
								return
							}
							continue
						}
						serr = err
						return
					}
				}
			})
			return s.VM().Stats(), d, serr
		},
		unsecured: func() (time.Duration, error) {
			u, err := calendar.NewUnsecured(laminar.NewSystem())
			if err != nil {
				return 0, err
			}
			var serr error
			d := timeIt(func() {
				for i := 0; i < meetings; i++ {
					if _, err := u.ScheduleMeeting(); err != nil {
						if err == calendar.ErrNoSlot {
							u.ResetAlice()
							continue
						}
						serr = err
						return
					}
				}
			})
			return d, serr
		},
	}
}

func freecsDriver(users int) appDriver {
	return appDriver{
		name: "FreeCS",
		secured: func() (*rt.Stats, time.Duration, error) {
			s, err := freecs.NewServer(laminar.NewSystem())
			if err != nil {
				return nil, 0, err
			}
			s.VM().Stats().Reset()
			var serr error
			d := timeIt(func() { _, serr = freecs.RunWorkload(s, users) })
			return s.VM().Stats(), d, serr
		},
		unsecured: func() (time.Duration, error) {
			s := freecs.NewUnsecuredServer()
			var serr error
			d := timeIt(func() { _, serr = freecs.RunUnsecuredWorkload(s, users) })
			return d, serr
		},
	}
}

// Format renders Table 3's measured columns and Figure 9.
func (r *AppsReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Table 3 (measured): fraction of time in security regions"))
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "app", "%in SR", "paper")
	paper := map[string]string{"GradeSheet": "6%", "Battleship": "54%", "Calendar": "1%", "FreeCS": "<1%"}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %9.1f%% %12s\n", row.Name, row.PctInSR, paper[row.Name])
	}
	b.WriteString("\n")
	b.WriteString(header("Figure 9: overhead of the Laminar-secured applications"))
	fmt.Fprintf(&b, "%-12s %12s %12s %9s | %11s %11s %11s\n",
		"app", "unsecured", "secured", "overhead", "start/endSR", "alloc barr", "rw barriers")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %12s %8.1f%% | %11s %11s %11s\n",
			row.Name, fmtDur(row.Unsecured), fmtDur(row.Secured), row.OverheadPct,
			fmtDur(time.Duration(row.StartEndNs)),
			fmtDur(time.Duration(row.AllocNs)),
			fmtDur(time.Duration(row.BarrierNs)))
	}
	fmt.Fprintf(&b, "\nunit costs: region %0.0fns, rw barrier %0.1fns, alloc barrier %0.1fns\n",
		r.Units.RegionNs, r.Units.BarrierNs, r.Units.AllocNs)
	b.WriteString("\npaper: GradeSheet ≈7%, Battleship ≈56%, Calendar ≈14%, FreeCS <1%;\n" +
		"overhead tracks time spent inside security regions.\n")
	return b.String()
}
