package eval

// Netd benchmark: cross-kernel labeled-message throughput over real
// localhost TCP. Two full kernel+LSM stacks are booted, connected with
// netlabel nodes, and a labeled channel is driven as hard as the pump
// loop allows for a matrix of payload sizes × write batching on/off.
//
// Methodology: the sender bursts messages into the channel endpoint up
// to the endpoint buffer's capacity, pumps its node (drain + flush),
// and the receiver pumps and drains its endpoint in the same loop, so
// neither side's buffer ever overflows — every sent byte is delivered
// and the measured rate is sustained end-to-end throughput, not a
// buffer-fill artifact. Telemetry stays at the production default
// (LevelOff): the bench measures the transport, not the recorder.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
)

// NetdRow is one (payload size, batching) measurement.
type NetdRow struct {
	PayloadBytes int     `json:"payload_bytes"`
	Batching     bool    `json:"batching"`
	Msgs         int     `json:"messages"`
	WallNs       int64   `json:"wall_ns"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
	// BatchSpeedup on batching rows: this row / matching unbatched row.
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
}

// NetdReport is the laminar-bench -netd result (BENCH_netd.json).
type NetdReport struct {
	Msgs   int       `json:"messages_per_cell"`
	Trials int       `json:"trials"`
	Rows   []NetdRow `json:"rows"`
}

// netdPayloads is the payload-size axis.
var netdPayloads = []int{64, 1024, 16384}

// netdEndpointBudget bounds a send burst: the channel endpoint buffer is
// the kernel pipe capacity (64 KiB); bursting half of it leaves room for
// the drain loop's chunking without ever hitting the silent-drop path,
// which would turn lost messages into an infinitely patient benchmark.
const netdEndpointBudget = 32 * 1024

// runNetd boots two kernels joined by TCP and streams msgs messages of
// payload bytes through one labeled channel, returning the wall time
// from first send to last byte received.
func runNetd(payload, msgs int, batching bool) (time.Duration, error) {
	mkNode := func(id uint64) (*kernel.Kernel, *kernel.Task, *netlabel.Node, error) {
		mod := lsm.New()
		k := kernel.New(kernel.WithSecurityModule(mod))
		mod.InstallSystemIntegrity(k)
		task, err := k.Spawn(k.InitTask(), nil)
		if err != nil {
			return nil, nil, nil, err
		}
		n := netlabel.NewNode(netlabel.Config{Kernel: k, Module: mod, NodeID: id, Batching: batching})
		if err := n.Listen("127.0.0.1:0"); err != nil {
			return nil, nil, nil, err
		}
		return k, task, n, nil
	}
	kA, alice, nodeA, err := mkNode(1)
	if err != nil {
		return 0, err
	}
	defer nodeA.Close()
	kB, bob, nodeB, err := mkNode(2)
	if err != nil {
		return 0, err
	}
	defer nodeB.Close()

	fdA, err := nodeA.Open(alice, nodeB.Addr(), difc.Labels{})
	if err != nil {
		return 0, err
	}
	var fdB kernel.FD
	deadline := time.Now().Add(5 * time.Second)
	for {
		nodeA.Pump()
		nodeB.Pump()
		var aerr error
		if fdB, _, aerr = nodeB.Accept(bob); aerr == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("netd: channel never arrived")
		}
	}

	burst := netdEndpointBudget / payload
	if burst < 1 {
		burst = 1
	}
	msg := make([]byte, payload)
	for i := range msg {
		msg[i] = byte(i)
	}
	rbuf := make([]byte, 64*1024)
	total := msgs * payload
	sent, received := 0, 0
	start := time.Now()
	for received < total {
		// Keep at most one burst in flight: more would overflow the
		// receiving endpoint and the transport would (correctly, silently)
		// drop it, turning the bench into a wait for bytes that died.
		for sent < msgs && sent*payload-received < burst*payload {
			n, serr := kA.Send(alice, fdA, msg)
			if serr != nil || n != payload {
				return 0, fmt.Errorf("netd send = %d, %v", n, serr)
			}
			sent++
		}
		nodeA.Pump()
		nodeB.Pump()
		before := received
		for {
			n, rerr := kB.Recv(bob, fdB, rbuf)
			if rerr != nil {
				break
			}
			received += n
		}
		if received == before {
			// Nothing arrived this iteration: the bytes are in the TCP
			// stack or the reader goroutine. Busy-pumping would starve
			// that goroutine of CPU; yield instead of spinning.
			time.Sleep(20 * time.Microsecond)
		}
		if time.Since(start) > 2*time.Minute {
			return 0, fmt.Errorf("netd: stalled at %d/%d bytes", received, total)
		}
	}
	return time.Since(start), nil
}

// Netd runs the throughput matrix: payload {64, 1K, 16K} × batching
// {off, on}, best of trials.
func Netd(msgs, trials int) (*NetdReport, error) {
	rep := &NetdReport{Msgs: msgs, Trials: trials}
	unbatched := make(map[int]float64)
	for _, batching := range []bool{false, true} {
		for _, payload := range netdPayloads {
			best := time.Duration(0)
			for tr := 0; tr < trials; tr++ {
				wall, err := runNetd(payload, msgs, batching)
				if err != nil {
					return nil, fmt.Errorf("payload %d batching %v: %w", payload, batching, err)
				}
				if best == 0 || wall < best {
					best = wall
				}
			}
			row := NetdRow{
				PayloadBytes: payload,
				Batching:     batching,
				Msgs:         msgs,
				WallNs:       best.Nanoseconds(),
				MsgsPerSec:   float64(msgs) / best.Seconds(),
				MBPerSec:     float64(msgs*payload) / (1 << 20) / best.Seconds(),
			}
			if !batching {
				unbatched[payload] = row.MsgsPerSec
			} else if base := unbatched[payload]; base > 0 {
				row.BatchSpeedup = row.MsgsPerSec / base
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// JSON renders the report for BENCH_netd.json.
func (r *NetdReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the text table for EXPERIMENTS.md.
func (r *NetdReport) Format() string {
	var b strings.Builder
	b.WriteString(header("netd: cross-kernel labeled throughput over localhost TCP"))
	fmt.Fprintf(&b, "%d messages per cell, best of %d trial(s); two full kernel+LSM stacks, one labeled channel\n\n",
		r.Msgs, r.Trials)
	fmt.Fprintf(&b, "%-9s %9s %14s %12s %10s\n", "payload", "batching", "msgs/sec", "MB/sec", "speedup")
	for _, row := range r.Rows {
		mode := "off"
		sp := ""
		if row.Batching {
			mode = "on"
			sp = fmt.Sprintf("%8.2fx", row.BatchSpeedup)
		}
		fmt.Fprintf(&b, "%-9d %9s %14.0f %12.2f %10s\n",
			row.PayloadBytes, mode, row.MsgsPerSec, row.MBPerSec, sp)
	}
	return b.String()
}
