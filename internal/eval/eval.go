// Package eval is the evaluation harness: one entry point per table and
// figure of the Laminar paper (§6–§7), each returning structured results
// plus a paper-style text rendering. cmd/laminar-bench prints them;
// bench_test.go wraps them in testing.B; EXPERIMENTS.md records a run.
//
// Absolute numbers come from a simulated kernel and an interpreted
// MiniJVM, so they are not comparable to the paper's wall-clock values;
// the reproduced quantity is the *shape*: which configuration wins, by
// roughly what factor, and where the costs sit.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// timeIt runs f once and returns its duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// median of several trials of f.
func medianTime(trials int, f func()) time.Duration {
	ds := make([]time.Duration, trials)
	for i := range ds {
		ds[i] = timeIt(f)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[trials/2]
}

// minTime takes the fastest of several trials — lmbench's strategy, and
// the right estimator when the quantity of interest is the code's cost
// floor rather than system noise.
func minTime(trials int, f func()) time.Duration {
	best := timeIt(f)
	for i := 1; i < trials; i++ {
		if d := timeIt(f); d < best {
			best = d
		}
	}
	return best
}

// pct returns (a-b)/b in percent.
func pct(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a) - float64(b)) / float64(b) * 100
}

// header renders a table title with a rule.
func header(title string) string {
	return title + "\n" + strings.Repeat("-", len(title)) + "\n"
}

// fmtDur renders a duration in milliseconds.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%8.2fms", float64(d.Microseconds())/1000)
}
