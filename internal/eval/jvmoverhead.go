package eval

import (
	"fmt"
	"strings"
	"time"

	"laminar/internal/dacapo"
	"laminar/internal/jvm"
)

// JVMRow is one benchmark's result in the JVM-overhead experiment (§6.1's
// figure: DaCapo + pseudojbb under no/static/dynamic barriers).
type JVMRow struct {
	Name       string
	Base       time.Duration
	Static     time.Duration
	Dynamic    time.Duration
	StaticPct  float64
	DynamicPct float64
}

// JVMOverheadReport reproduces the §6.1 barrier-overhead figure.
type JVMOverheadReport struct {
	Rows       []JVMRow
	GeoStatic  float64 // average static overhead (%)
	GeoDynamic float64 // average dynamic overhead (%)
	Optimized  bool
}

// JVMOverhead measures every workload for iters loop iterations, taking
// the median of trials runs per configuration — the paper's methodology
// (second iteration, compilation excluded: our measurement calls run once
// to force JIT compilation before timing).
func JVMOverhead(iters, trials int, optimize bool) (*JVMOverheadReport, error) {
	rep := &JVMOverheadReport{Optimized: optimize}
	modes := []jvm.BarrierMode{jvm.BarrierNone, jvm.BarrierStatic, jvm.BarrierDynamic}
	sumS, sumD := 0.0, 0.0
	for _, m := range dacapo.Workloads {
		// Build all three machines up front and interleave the timing
		// trials across configurations, so slow drift (frequency scaling,
		// background load) hits every mode equally; keep the per-mode
		// minimum, lmbench-style.
		machines := make([]*jvm.Machine, len(modes))
		threads := make([]*jvm.Thread, len(modes))
		for mi, mode := range modes {
			prog, err := dacapo.Build(m)
			if err != nil {
				return nil, err
			}
			mc, err := jvm.NewMachine(prog, jvm.CompileOptions{Mode: mode, Optimize: optimize})
			if err != nil {
				return nil, err
			}
			th := mc.NewThread()
			// Warm-up run compiles the method (first iteration in the
			// paper's methodology).
			if _, err := mc.Call(th, "run", jvm.IntV(8)); err != nil {
				return nil, err
			}
			machines[mi] = mc
			threads[mi] = th
		}
		var times [3]time.Duration
		for trial := 0; trial < trials; trial++ {
			for mi := range modes {
				d := timeIt(func() {
					if _, err := machines[mi].Call(threads[mi], "run", jvm.IntV(int64(iters))); err != nil {
						panic(err)
					}
				})
				if trial == 0 || d < times[mi] {
					times[mi] = d
				}
			}
		}
		row := JVMRow{
			Name: m.Name, Base: times[0], Static: times[1], Dynamic: times[2],
			StaticPct:  pct(times[1], times[0]),
			DynamicPct: pct(times[2], times[0]),
		}
		sumS += row.StaticPct
		sumD += row.DynamicPct
		rep.Rows = append(rep.Rows, row)
	}
	rep.GeoStatic = sumS / float64(len(rep.Rows))
	rep.GeoDynamic = sumD / float64(len(rep.Rows))
	return rep, nil
}

// Format renders the figure as text.
func (r *JVMOverheadReport) Format() string {
	var b strings.Builder
	title := "JVM overhead on programs without security regions (§6.1 figure)"
	if r.Optimized {
		title += " [redundant-barrier elimination ON]"
	}
	b.WriteString(header(title))
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %9s %9s\n",
		"benchmark", "base", "static", "dynamic", "static%", "dynamic%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %12s %12s %8.1f%% %8.1f%%\n",
			row.Name, fmtDur(row.Base), fmtDur(row.Static), fmtDur(row.Dynamic),
			row.StaticPct, row.DynamicPct)
	}
	fmt.Fprintf(&b, "%-12s %38s %8.1f%% %8.1f%%\n", "average", "", r.GeoStatic, r.GeoDynamic)
	fmt.Fprintf(&b, "\npaper: static ≈ 6%% avg, dynamic ≈ 17%% avg — dynamic ≈ 3× static.\n")
	return b.String()
}
