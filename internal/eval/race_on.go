//go:build race

package eval

// raceEnabled reports whether the race detector is compiled in. Timing-
// shape assertions relax under instrumentation: the detector prices every
// mutex operation at hundreds of nanoseconds, which taxes the kernel's
// fine-grained locks (several per syscall) far more than the Flume
// monitor's single coarse lock, compressing the measured ratio.
const raceEnabled = true
