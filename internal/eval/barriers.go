package eval

import (
	"encoding/json"
	"fmt"
	"strings"

	"laminar/internal/jvm"
	"laminar/internal/jvm/analysis"
	"laminar/internal/jvm/corpus"
)

// BarrierRow is one corpus program's barrier accounting under the three
// optimization tiers, in both static (compile-time barrier instructions
// emitted) and dynamic (runtime checks executed) terms.
type BarrierRow struct {
	Program      string `json:"program"`
	Sites        int    `json:"sites"`          // access+static barrier sites before elimination
	EmittedBase  int    `json:"emitted_base"`   // barriers emitted, no elimination
	EmittedIntra int    `json:"emitted_intra"`  // after intraprocedural elimination (§5.1)
	EmittedInter int    `json:"emitted_inter"`  // after interprocedural summary-based elimination
	ChecksBase   uint64 `json:"checks_base"`    // runtime checks, no elimination
	ChecksIntra  uint64 `json:"checks_intra"`   // runtime checks, intraprocedural
	ChecksInter  uint64 `json:"checks_inter"`   // runtime checks, interprocedural
	BarrierFree  int    `json:"barrier_free"`   // methods proven barrier-free
}

// BarrierReport is the barrier-reduction experiment: how much of the
// barrier-inserting JIT's work each elimination tier removes over the
// call-heavy corpus. The differential oracle (internal/jvm/corpus)
// guarantees all three tiers are observationally equivalent; this report
// quantifies what the equivalence buys.
type BarrierReport struct {
	Rows []BarrierRow `json:"rows"`
}

// barrierTier compiles and runs src's main under one tier and returns
// (barriers emitted over all compiled variants, runtime checks).
func barrierTier(src string, opts jvm.CompileOptions) (sites, emitted, free int, checks uint64, err error) {
	p, perr := jvm.Parse(src)
	if perr != nil {
		return 0, 0, 0, 0, perr
	}
	if opts.Interproc {
		if _, aerr := analysis.Attach(p); aerr != nil {
			return 0, 0, 0, 0, aerr
		}
	}
	mc, merr := jvm.NewMachine(p, opts)
	if merr != nil {
		return 0, 0, 0, 0, merr
	}
	if _, cerr := p.CompileAll(opts); cerr != nil {
		return 0, 0, 0, 0, cerr
	}
	if _, rerr := mc.Call(mc.NewThread(), "main"); rerr != nil {
		return 0, 0, 0, 0, fmt.Errorf("corpus program must run clean: %w", rerr)
	}
	seen := map[string]bool{}
	for _, st := range p.BarrierStats() {
		emitted += st.Emitted
		if !seen[st.Method] {
			seen[st.Method] = true
			sites += st.Sites
			if st.BarrierFree {
				free++
			}
		}
	}
	return sites, emitted, free, mc.Stats().BarrierChecks, nil
}

// Barriers measures the corpus under base / intraprocedural /
// interprocedural static-mode compilation.
func Barriers() (*BarrierReport, error) {
	rep := &BarrierReport{}
	all := corpus.Programs()
	for _, name := range corpus.Names(all) {
		src := all[name]
		row := BarrierRow{Program: strings.TrimSuffix(name, ".mjvm")}
		var err error
		if row.Sites, row.EmittedBase, _, row.ChecksBase, err = barrierTier(src, jvm.CompileOptions{Mode: jvm.BarrierStatic}); err != nil {
			return nil, fmt.Errorf("%s/base: %w", name, err)
		}
		if _, row.EmittedIntra, _, row.ChecksIntra, err = barrierTier(src, jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true}); err != nil {
			return nil, fmt.Errorf("%s/intra: %w", name, err)
		}
		if _, row.EmittedInter, row.BarrierFree, row.ChecksInter, err = barrierTier(src, jvm.CompileOptions{Mode: jvm.BarrierStatic, Interproc: true}); err != nil {
			return nil, fmt.Errorf("%s/inter: %w", name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// JSON renders the machine-readable result for BENCH_barriers.json.
func (r *BarrierReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func cutPct(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(whole-part)/float64(whole))
}

// Format renders the paper-style text table.
func (r *BarrierReport) Format() string {
	var b strings.Builder
	b.WriteString("Barrier reduction over the corpus (static mode; checks = runtime, emitted = compile-time)\n")
	fmt.Fprintf(&b, "%-16s %5s | %7s %7s %7s | %7s %7s %7s | %9s %9s\n",
		"program", "sites", "em.base", "em.intra", "em.inter",
		"ck.base", "ck.intra", "ck.inter", "intra-cut", "inter-cut")
	var tb, ti, tn uint64
	for _, row := range r.Rows {
		tb += row.ChecksBase
		ti += row.ChecksIntra
		tn += row.ChecksInter
		fmt.Fprintf(&b, "%-16s %5d | %7d %7s %7s | %7d %7d %7d | %9s %9s\n",
			row.Program, row.Sites,
			row.EmittedBase, fmt.Sprint(row.EmittedIntra), fmt.Sprint(row.EmittedInter),
			row.ChecksBase, row.ChecksIntra, row.ChecksInter,
			cutPct(row.ChecksIntra, row.ChecksBase), cutPct(row.ChecksInter, row.ChecksBase))
	}
	fmt.Fprintf(&b, "%-16s %5s | %7s %7s %7s | %7d %7d %7d | %9s %9s\n",
		"total", "", "", "", "", tb, ti, tn, cutPct(ti, tb), cutPct(tn, tb))
	return b.String()
}
