package eval

import (
	"fmt"
	"strings"

	"laminar/internal/lmbench"
)

// Table2Report reproduces Table 2: lmbench OS microbenchmark latencies,
// unmodified kernel vs Laminar LSM.
type Table2Report struct {
	Rows []lmbench.Result
}

// Table2 runs the lmbench suite.
func Table2(iters, trials int) (*Table2Report, error) {
	rows, err := lmbench.Run(iters, trials)
	if err != nil {
		return nil, err
	}
	return &Table2Report{Rows: rows}, nil
}

// Format renders the table in the paper's layout.
func (r *Table2Report) Format() string {
	var b strings.Builder
	b.WriteString(header("Table 2: lmbench microbenchmarks (µs per op), Linux vs Laminar"))
	fmt.Fprintf(&b, "%-16s %10s %10s %9s\n", "benchmark", "base", "laminar", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintln(&b, row.String())
	}
	b.WriteString("\npaper: ≤8% for everything except null I/O at 31% (nothing to amortize\n" +
		"the label check against); stat 2%, fork 0.6%, exec 0.6%, create 4%,\n" +
		"delete 6%, mmap 2%, prot fault 7%.\n")
	return b.String()
}
