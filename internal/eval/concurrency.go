package eval

// Concurrency benchmark for the sharded-lock kernel: multi-goroutine
// syscall storms replayed against both locking disciplines at several
// GOMAXPROCS settings. Two storm profiles are measured:
//
//   - cpu: pure in-memory syscalls (create/write/read/stat/unlink plus a
//     pipe round trip). On a single hardware thread this measures locking
//     overhead only — the sharded kernel cannot beat the serial one when
//     there is no concurrency to exploit, it just must not lose badly.
//   - io: the same storm with WithIOLatency modeling device time for
//     regular-file data transfers. The big kernel lock holds the lock
//     across the device wait, so I/O from different tasks serializes;
//     the sharded kernel overlaps the waits. This is the profile where
//     fine-grained locking must win ≥2× at GOMAXPROCS=8.
//
// Determinism: each task works in its own directory on its own files, so
// the op mix is identical across modes; only the interleaving differs.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"laminar"
	"laminar/internal/kernel"
)

// ConcRow is one (workload, GOMAXPROCS, lock mode) measurement.
type ConcRow struct {
	Workload   string  `json:"workload"`    // "cpu" or "io"
	Procs      int     `json:"gomaxprocs"`
	Mode       string  `json:"lock_mode"`   // "biglock" or "sharded"
	Tasks      int     `json:"tasks"`
	Ops        int     `json:"total_ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	SpeedupVsB float64 `json:"speedup_vs_biglock"` // sharded rows: this row / matching biglock row
}

// ConcurrencyReport holds the full matrix plus the headline ratio.
type ConcurrencyReport struct {
	Tasks      int       `json:"tasks"`
	OpsPerTask int       `json:"ops_per_task"`
	IOLatencyU int64     `json:"io_latency_us"`
	HWThreads  int       `json:"hw_threads"`
	Rows       []ConcRow `json:"rows"`
	// HeadlineIO is the io-storm sharded/biglock throughput ratio at the
	// highest GOMAXPROCS measured — the PR's acceptance number.
	HeadlineIO float64 `json:"headline_io_speedup"`
}

// stormOps is the number of syscalls one loop iteration of stormTask
// issues (create+3 writes+open+read+stat+unlink+pipe+pipe write+pipe
// read+2 closes is not the unit — we count kernel entries explicitly).
const stormIterSyscalls = 12

// stormTask runs iters iterations of the storm loop as task t inside its
// private directory. Every iteration issues exactly stormIterSyscalls
// kernel entries, so throughput is comparable across modes.
func stormTask(k *kernel.Kernel, t *kernel.Task, dir string, iters int) error {
	buf := make([]byte, 64)
	for i := 0; i < iters; i++ {
		path := fmt.Sprintf("%s/f%d", dir, i%8)
		fd, err := k.Open(t, path, kernel.OWrite|kernel.OCreate) // 1
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		for j := 0; j < 3; j++ {
			if _, err := k.Write(t, fd, []byte("storm-payload-64-bytes.........................................")); err != nil { // 2,3,4
				return fmt.Errorf("write: %w", err)
			}
		}
		k.Close(t, fd) // 5
		rfd, err := k.Open(t, path, kernel.ORead) // 6
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		if _, err := k.Read(t, rfd, buf); err != nil { // 7
			return fmt.Errorf("read: %w", err)
		}
		k.Close(t, rfd) // 8
		if _, err := k.Stat(t, path); err != nil { // 9
			return fmt.Errorf("stat: %w", err)
		}
		pr, pw, err := k.Pipe(t) // 10
		if err != nil {
			return fmt.Errorf("pipe: %w", err)
		}
		if _, err := k.Write(t, pw, buf[:16]); err != nil { // 11
			return fmt.Errorf("pipe write: %w", err)
		}
		if _, err := k.Read(t, pr, buf[:16]); err != nil { // 12
			return fmt.Errorf("pipe read: %w", err)
		}
		k.Close(t, pr)
		k.Close(t, pw)
	}
	return nil
}

// runStorm builds a fresh system under opts, spawns nTasks tasks with
// private directories, and runs the storm concurrently. Returns wall time
// for the storm phase only (setup excluded).
func runStorm(nTasks, opsPerTask int, opts ...kernel.Option) (time.Duration, error) {
	sys := laminar.NewSystem(opts...)
	k := sys.Kernel()
	init := k.InitTask()
	tasks := make([]*kernel.Task, nTasks)
	dirs := make([]string, nTasks)
	for i := range tasks {
		t, err := k.Spawn(init, nil)
		if err != nil {
			return 0, err
		}
		dirs[i] = fmt.Sprintf("/tmp/storm%d", i)
		if err := k.Mkdir(t, dirs[i], 0o755); err != nil {
			return 0, err
		}
		tasks[i] = t
	}
	iters := opsPerTask / stormIterSyscalls
	errs := make([]error, nTasks)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = stormTask(k, tasks[i], dirs[i], iters)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// Concurrency runs the full matrix: {cpu, io} × GOMAXPROCS {1,4,8} ×
// {biglock, sharded}. ioLatency is the modeled device time per data
// transfer for the io profile.
func Concurrency(nTasks, opsPerTask, trials int, ioLatency time.Duration) (*ConcurrencyReport, error) {
	rep := &ConcurrencyReport{
		Tasks:      nTasks,
		OpsPerTask: opsPerTask,
		IOLatencyU: ioLatency.Microseconds(),
		HWThreads:  runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	totalOps := nTasks * (opsPerTask / stormIterSyscalls) * stormIterSyscalls
	for _, wl := range []struct {
		name string
		opts []kernel.Option
	}{
		{"cpu", nil},
		{"io", []kernel.Option{kernel.WithIOLatency(ioLatency)}},
	} {
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			var bigOps float64
			for _, mode := range []string{"biglock", "sharded"} {
				opts := append([]kernel.Option{}, wl.opts...)
				if mode == "biglock" {
					opts = append(opts, kernel.WithBigLock())
				}
				best := time.Duration(0)
				for tr := 0; tr < trials; tr++ {
					wall, err := runStorm(nTasks, opsPerTask, opts...)
					if err != nil {
						runtime.GOMAXPROCS(prev)
						return nil, fmt.Errorf("%s/%s p=%d: %w", wl.name, mode, procs, err)
					}
					if best == 0 || wall < best {
						best = wall
					}
				}
				row := ConcRow{
					Workload:  wl.name,
					Procs:     procs,
					Mode:      mode,
					Tasks:     nTasks,
					Ops:       totalOps,
					NsPerOp:   float64(best.Nanoseconds()) / float64(totalOps),
					OpsPerSec: float64(totalOps) / best.Seconds(),
				}
				if mode == "biglock" {
					bigOps = row.OpsPerSec
				} else if bigOps > 0 {
					row.SpeedupVsB = row.OpsPerSec / bigOps
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	for _, r := range rep.Rows {
		if r.Workload == "io" && r.Mode == "sharded" && r.Procs == 8 {
			rep.HeadlineIO = r.SpeedupVsB
		}
	}
	return rep, nil
}

// JSON renders the report for BENCH_concurrency.json.
func (r *ConcurrencyReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the paper-style text table.
func (r *ConcurrencyReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Concurrency: syscall-storm throughput, big lock vs sharded locking"))
	fmt.Fprintf(&b, "%d tasks × %d syscalls each; io profile models %dµs device time per transfer; %d hardware thread(s)\n\n",
		r.Tasks, r.OpsPerTask, r.IOLatencyU, r.HWThreads)
	fmt.Fprintf(&b, "%-5s %6s %9s %12s %14s %10s\n", "storm", "procs", "mode", "ns/op", "ops/sec", "speedup")
	for _, row := range r.Rows {
		sp := ""
		if row.Mode == "sharded" {
			sp = fmt.Sprintf("%8.2fx", row.SpeedupVsB)
		}
		fmt.Fprintf(&b, "%-5s %6d %9s %12.0f %14.0f %10s\n",
			row.Workload, row.Procs, row.Mode, row.NsPerOp, row.OpsPerSec, sp)
	}
	fmt.Fprintf(&b, "\nheadline: io-storm sharded/biglock throughput at GOMAXPROCS=8: %.2fx\n", r.HeadlineIO)
	b.WriteString("the big kernel lock holds the lock across modeled device waits, so\n" +
		"I/O from different tasks serializes; sharded locking overlaps the\n" +
		"waits. The cpu storm isolates pure locking overhead on one core.\n")
	return b.String()
}
