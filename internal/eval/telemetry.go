package eval

// Telemetry-overhead benchmark: the PR 2 syscall storms replayed under the
// four telemetry configurations —
//
//   - baseline: kernel booted WithoutTelemetry(), no wrapper installed at
//     all. The true uninstrumented reference.
//   - off:      wrapper installed, recorder at LevelOff. The disabled path
//     every production system runs: one atomic load per hook.
//   - deny:     LevelDeny. Metrics always on, events only for denials
//     (the storm has none, so this prices counters + timing).
//   - all:      LevelAll. Every allow becomes an event in the flight ring.
//
// The acceptance gate is the off/baseline ratio on the io storm at
// GOMAXPROCS=8: ≤1.02× (the "≤2% disabled-path overhead" criterion).

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

// TelRow is one (workload, telemetry config) measurement at GOMAXPROCS=8.
type TelRow struct {
	Workload  string  `json:"workload"` // "cpu" or "io"
	Config    string  `json:"config"`   // "baseline", "off", "deny", "all"
	Ops       int     `json:"total_ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Overhead is this row's ns/op divided by the same workload's
	// baseline ns/op (1.00 = free).
	Overhead float64 `json:"overhead_vs_baseline"`
}

// TelemetryReport holds the matrix plus the gate verdict.
type TelemetryReport struct {
	Tasks      int      `json:"tasks"`
	OpsPerTask int      `json:"ops_per_task"`
	IOLatencyU int64    `json:"io_latency_us"`
	Procs      int      `json:"gomaxprocs"`
	HWThreads  int      `json:"hw_threads"`
	Rows       []TelRow `json:"rows"`
	// HeadlineOff is the io-storm off/baseline overhead ratio — the
	// number the ≤1.02 CI gate checks.
	HeadlineOff float64 `json:"headline_io_off_overhead"`
	// GateMax is the threshold the run was evaluated against.
	GateMax float64 `json:"gate_max"`
	Pass    bool    `json:"pass"`
}

// TelemetryGateMax is the acceptance threshold: disabled-path overhead on
// the io storm must be ≤2%.
const TelemetryGateMax = 1.02

// Telemetry measures the four configurations on both storm profiles at
// GOMAXPROCS=8, best-of-trials per cell.
func Telemetry(nTasks, opsPerTask, trials int, ioLatency time.Duration) (*TelemetryReport, error) {
	rep := &TelemetryReport{
		Tasks:      nTasks,
		OpsPerTask: opsPerTask,
		IOLatencyU: ioLatency.Microseconds(),
		Procs:      8,
		HWThreads:  runtime.NumCPU(),
		GateMax:    TelemetryGateMax,
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	// Each cell gets a private recorder so rings and counters never cross
	// configurations; "baseline" gets no wrapper at all.
	configs := []struct {
		name string
		opts func() []kernel.Option
	}{
		{"baseline", func() []kernel.Option { return []kernel.Option{kernel.WithoutTelemetry()} }},
		{"off", func() []kernel.Option { return []kernel.Option{kernel.WithTelemetry(telemetry.NewRecorder())} }},
		{"deny", func() []kernel.Option {
			rec := telemetry.NewRecorder()
			rec.SetLevel(telemetry.LevelDeny)
			return []kernel.Option{kernel.WithTelemetry(rec)}
		}},
		{"all", func() []kernel.Option {
			rec := telemetry.NewRecorder()
			rec.SetLevel(telemetry.LevelAll)
			return []kernel.Option{kernel.WithTelemetry(rec)}
		}},
	}

	totalOps := nTasks * (opsPerTask / stormIterSyscalls) * stormIterSyscalls
	for _, wl := range []struct {
		name string
		opts []kernel.Option
	}{
		{"cpu", nil},
		{"io", []kernel.Option{kernel.WithIOLatency(ioLatency)}},
	} {
		var baseNs float64
		for _, cfg := range configs {
			best := time.Duration(0)
			for tr := 0; tr < trials; tr++ {
				opts := append(append([]kernel.Option{}, wl.opts...), cfg.opts()...)
				wall, err := runStorm(nTasks, opsPerTask, opts...)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", wl.name, cfg.name, err)
				}
				if best == 0 || wall < best {
					best = wall
				}
			}
			row := TelRow{
				Workload:  wl.name,
				Config:    cfg.name,
				Ops:       totalOps,
				NsPerOp:   float64(best.Nanoseconds()) / float64(totalOps),
				OpsPerSec: float64(totalOps) / best.Seconds(),
			}
			if cfg.name == "baseline" {
				baseNs = row.NsPerOp
				row.Overhead = 1.0
			} else if baseNs > 0 {
				row.Overhead = row.NsPerOp / baseNs
			}
			rep.Rows = append(rep.Rows, row)
			if wl.name == "io" && cfg.name == "off" {
				rep.HeadlineOff = row.Overhead
			}
		}
	}
	rep.Pass = rep.HeadlineOff <= rep.GateMax
	return rep, nil
}

// JSON renders the report for BENCH_telemetry.json.
func (r *TelemetryReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the paper-style text table.
func (r *TelemetryReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Telemetry: storm throughput under provenance recording levels"))
	fmt.Fprintf(&b, "%d tasks × %d syscalls each at GOMAXPROCS=%d; io profile models %dµs device time; %d hardware thread(s)\n\n",
		r.Tasks, r.OpsPerTask, r.Procs, r.IOLatencyU, r.HWThreads)
	fmt.Fprintf(&b, "%-5s %10s %12s %14s %10s\n", "storm", "config", "ns/op", "ops/sec", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5s %10s %12.0f %14.0f %9.3fx\n",
			row.Workload, row.Config, row.NsPerOp, row.OpsPerSec, row.Overhead)
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "\ngate: io-storm disabled-path (off/baseline) overhead %.3fx, limit %.2fx: %s\n",
		r.HeadlineOff, r.GateMax, verdict)
	b.WriteString("\"off\" is the production default — the telemetry wrapper installed but\n" +
		"gated by one atomic level load per hook; \"deny\" adds always-on counters\n" +
		"and latency timing; \"all\" records every allow into the flight ring.\n")
	return b.String()
}
