package eval

import (
	"fmt"
	"strings"
	"time"

	"laminar/internal/dacapo"
	"laminar/internal/jvm"
)

// RegionDensityRow is one point of the overhead-vs-density curve.
type RegionDensityRow struct {
	Name      string
	PctInside int
	Base      time.Duration // BarrierNone
	Secured   time.Duration // BarrierStatic
	Overhead  float64
}

// RegionDensityReport measures how the cost of DIFC enforcement scales
// with the fraction of work executed inside security regions — the §4.3
// claim that regions keep overhead proportional to the security-relevant
// share of the program.
type RegionDensityReport struct {
	Rows []RegionDensityRow
}

// RegionDensity runs the sweep.
func RegionDensity(iters, trials int) (*RegionDensityReport, error) {
	rep := &RegionDensityReport{}
	for _, pt := range dacapo.RegionSweep() {
		var times [2]time.Duration
		machines := make([]*jvm.Machine, 2)
		threads := make([]*jvm.Thread, 2)
		for mi, mode := range []jvm.BarrierMode{jvm.BarrierNone, jvm.BarrierStatic} {
			prog, err := dacapo.BuildRegionSweep(pt)
			if err != nil {
				return nil, err
			}
			mc, err := jvm.NewMachine(prog, jvm.CompileOptions{Mode: mode})
			if err != nil {
				return nil, err
			}
			th := mc.NewThread()
			if _, err := mc.Call(th, "run", jvm.IntV(4)); err != nil {
				return nil, err
			}
			machines[mi] = mc
			threads[mi] = th
		}
		for trial := 0; trial < trials; trial++ {
			for mi := range machines {
				d := timeIt(func() {
					if _, err := machines[mi].Call(threads[mi], "run", jvm.IntV(int64(iters))); err != nil {
						panic(err)
					}
				})
				if trial == 0 || d < times[mi] {
					times[mi] = d
				}
			}
		}
		rep.Rows = append(rep.Rows, RegionDensityRow{
			Name:      pt.Name,
			PctInside: pt.PctInside,
			Base:      times[0],
			Secured:   times[1],
			Overhead:  pct(times[1], times[0]),
		})
	}
	return rep, nil
}

// Format renders the curve.
func (r *RegionDensityReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Overhead vs fraction of work inside security regions (§4.3 claim)"))
	fmt.Fprintf(&b, "%-12s %12s %12s %10s\n", "density", "base", "secured", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %12s %9.1f%%\n",
			row.Name, fmtDur(row.Base), fmtDur(row.Secured), row.Overhead)
	}
	b.WriteString("\noverhead should grow with the in-region share: DIFC enforcement\n" +
		"costs are confined to the code that touches labeled data.\n")
	return b.String()
}
