package eval

// Flow-budget overhead + contention benchmark (ISSUE 10, DESIGN.md §17).
//
// Three sections:
//
//   - The GATED hot-path comparison: an in-process declassify-request
//     storm. Each cycle is a calibrated slice of application work (the
//     request that produced the labeled data — simwork, the same
//     methodology the §12 case studies use to isolate DIFC machinery
//     from app work), a taint, and an untaint through the full kernel
//     SetTaskLabel path; bare (no ledger) vs budgeted (a ledger with a
//     generous, never-exhausted limit on the dropped tag, so every
//     untaint really charges). The unexhausted charge is lock-free —
//     one table load, a map hit and a compare-and-swap, ~40ns and zero
//     allocations in isolation — so the request loop holds a tight
//     gate: ≤ 1.05x over bare. Measurement is paired: batches
//     alternate between the two prebuilt kernels so both sides of a
//     round share the host's clock state, and the overhead is the
//     median of per-round ratios — robust against the ±5-10% drift
//     that makes wall-clock totals on a shared host useless at this
//     resolution. The absolute per-charge cost is reported too, so the
//     ratio can't hide behind the app-work denominator.
//
//   - The INFORMATIONAL netd rows: the §12 message storm over a
//     labeled TCP channel bare vs budgeted, where every drain charges
//     against the receiving peer. Loopback TCP jitter is ±5% on this
//     harness — bigger than the cost being measured — so the rows show
//     the shape without gating on it.
//
//   - The INFORMATIONAL tenant-contention table: a zipfian request mix
//     over N tenant tags drawn with a fixed seed, each tenant holding
//     the same limit. The skew concentrates spend on the head tenants,
//     which exhaust and start denying while the tail never notices —
//     the quantitative-budget behavior the ledger exists to produce.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"laminar/internal/budget"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/simwork"
)

// budgetGate is the unexhausted hot-path ceiling: budgeted vs bare on
// the relabel storm.
const budgetGate = 1.05

// BudgetRow is one configuration's measurement.
type BudgetRow struct {
	Mode      string  `json:"mode"` // bare | budgeted
	Ops       int     `json:"ops"`
	WallNs    int64   `json:"wall_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// BudgetTenantRow is one tenant's slice of the contention table.
type BudgetTenantRow struct {
	Tenant   int    `json:"tenant"`
	Requests int    `json:"requests"`
	Charged  int    `json:"charged"`
	Denied   int    `json:"denied"`
	Spent    uint64 `json:"spent"`
	Limit    uint64 `json:"limit"`
}

// BudgetReport is the laminar-bench -budget result (BENCH_budget.json).
type BudgetReport struct {
	Cycles  int `json:"relabel_cycles"`
	Msgs    int `json:"netd_messages"`
	Payload int `json:"payload_bytes"`
	Trials  int `json:"trials"`

	RelabelRows []BudgetRow `json:"relabel_rows"`
	NetdRows    []BudgetRow `json:"netd_rows"`

	Overhead     float64 `json:"overhead"`       // gated: request-loop bare rate / budgeted rate
	ChargeNs     float64 `json:"charge_ns"`      // informational: absolute per-cycle cost delta
	AppWork      int     `json:"app_work_units"` // simwork units per request cycle
	NetdOverhead float64 `json:"netd_overhead"`  // informational: same ratio on the TCP path
	Gate         float64 `json:"gate"`
	Pass         bool    `json:"pass"`

	Tenants    int               `json:"tenants"`
	ZipfS      float64           `json:"zipf_s"`
	TenantReqs int               `json:"tenant_requests"`
	Contention []BudgetTenantRow `json:"contention"`
}

// budgetAppWork is the calibrated app-work slice (~2µs) each
// declassify-request cycle performs before its taint/untaint pair. A
// declassification never happens in a vacuum — some request produced
// the data being released — and simwork is how this repo models that
// surrounding work (see internal/simwork).
const budgetAppWork = 2000

// relabelBatch is the paired-measurement granularity: batches short
// enough (~300µs) that many land between scheduler interruptions, long
// enough that timer overhead vanishes.
const relabelBatch = 100

// relabelRig is one prebuilt kernel for the declassify-request storm.
type relabelRig struct {
	k    *kernel.Kernel
	task *kernel.Task
	lab  difc.Label
}

// newRelabelRig boots a kernel+LSM stack; with budgeted set it carries
// a ledger holding an inexhaustible limit on the test tag, so every
// untaint pays one real charge.
func newRelabelRig(budgeted bool) (*relabelRig, error) {
	mod := lsm.New()
	opts := []kernel.Option{kernel.WithSecurityModule(mod), kernel.WithoutTelemetry()}
	var led *budget.Ledger
	if budgeted {
		led = budget.New()
		opts = append(opts, kernel.WithBudget(led))
	}
	k := kernel.New(opts...)
	mod.InstallSystemIntegrity(k)
	task, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		return nil, err
	}
	tag, err := k.AllocTag(task)
	if err != nil {
		return nil, err
	}
	if led != nil {
		if err := led.SetLimit(tag, 0, 1<<62); err != nil {
			return nil, err
		}
	}
	return &relabelRig{k: k, task: task, lab: difc.NewLabel(tag)}, nil
}

// batch times n declassify requests: app work, taint, untaint.
func (r *relabelRig) batch(n int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		simwork.Do(budgetAppWork)
		if err := r.k.SetTaskLabel(r.task, kernel.Secrecy, r.lab); err != nil {
			return 0, fmt.Errorf("budget bench taint: %w", err)
		}
		if err := r.k.SetTaskLabel(r.task, kernel.Secrecy, difc.EmptyLabel); err != nil {
			return 0, fmt.Errorf("budget bench untaint: %w", err)
		}
	}
	return time.Since(start), nil
}

// runBudgetRelabel runs the paired storm for cycles requests per mode
// and returns per-mode total wall time, the median per-round
// budgeted/bare ratio, and the median per-cycle cost delta. Batches
// alternate bare/budgeted (order flipping each round) so each ratio is
// taken between batches that shared the host's clock state.
func runBudgetRelabel(cycles int) (wall map[string]time.Duration, overhead, chargeNs float64, err error) {
	bare, err := newRelabelRig(false)
	if err != nil {
		return nil, 0, 0, err
	}
	bud, err := newRelabelRig(true)
	if err != nil {
		return nil, 0, 0, err
	}
	rigs := map[bool]*relabelRig{false: bare, true: bud}
	// Warm both paths (interning, verdict cache, branch predictors).
	for _, rig := range rigs {
		if _, err := rig.batch(relabelBatch); err != nil {
			return nil, 0, 0, err
		}
	}
	rounds := cycles / relabelBatch
	if rounds < 8 {
		rounds = 8
	}
	ratios := make([]float64, 0, rounds)
	batches := map[bool][]float64{}
	total := map[bool]time.Duration{}
	for r := 0; r < rounds; r++ {
		order := []bool{false, true}
		if r%2 == 1 {
			order = []bool{true, false}
		}
		times := map[bool]time.Duration{}
		for _, budgeted := range order {
			d, berr := rigs[budgeted].batch(relabelBatch)
			if berr != nil {
				return nil, 0, 0, berr
			}
			times[budgeted] = d
			total[budgeted] += d
			batches[budgeted] = append(batches[budgeted], float64(d))
		}
		ratios = append(ratios, float64(times[true])/float64(times[false]))
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	overhead = median(ratios)
	chargeNs = (median(batches[true]) - median(batches[false])) / relabelBatch
	return map[string]time.Duration{"bare": total[false], "budgeted": total[true]}, overhead, chargeNs, nil
}

// runBudgetNetd is the netd hot path over a channel labeled {t1}: two
// bare kernel+LSM stacks over TCP, the receiver's reader endorsed with
// t1 by its TCB. With budgeted set, the sender carries a ledger whose
// (t1, receiver) fact has a limit the run can never exhaust — every
// drain pays the charge, no drain is denied.
func runBudgetNetd(payload, msgs int, budgeted bool) (time.Duration, error) {
	var led *budget.Ledger
	if budgeted {
		led = budget.New()
	}
	mkNode := func(id uint64, withLedger bool) (*kernel.Kernel, *lsm.Module, *kernel.Task, *netlabel.Node, error) {
		mod := lsm.New()
		opts := []kernel.Option{kernel.WithSecurityModule(mod), kernel.WithoutTelemetry()}
		if withLedger && led != nil {
			opts = append(opts, kernel.WithBudget(led))
		}
		k := kernel.New(opts...)
		mod.InstallSystemIntegrity(k)
		task, err := k.Spawn(k.InitTask(), nil)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		n := netlabel.NewNode(netlabel.Config{Kernel: k, Module: mod, NodeID: id, Batching: true})
		if err := n.Listen("127.0.0.1:0"); err != nil {
			return nil, nil, nil, nil, err
		}
		return k, mod, task, n, nil
	}
	kA, _, alice, nodeA, err := mkNode(1, true)
	if err != nil {
		return 0, err
	}
	defer nodeA.Close()
	kB, modB, bob, nodeB, err := mkNode(2, false)
	if err != nil {
		return 0, err
	}
	defer nodeB.Close()

	t1, err := kA.AllocTag(alice)
	if err != nil {
		return 0, err
	}
	labels := difc.Labels{S: difc.NewLabel(t1)}
	if led != nil {
		if err := led.SetLimit(t1, 2, 1<<62); err != nil {
			return 0, err
		}
	}

	fdA, err := nodeA.Open(alice, nodeB.Addr(), labels)
	if err != nil {
		return 0, err
	}
	var fdB kernel.FD
	deadline := time.Now().Add(5 * time.Second)
	for {
		nodeA.Pump()
		nodeB.Pump()
		var aerr error
		if fdB, _, aerr = nodeB.Accept(bob); aerr == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("budget bench: channel never arrived")
		}
	}
	// The receiver legitimately holds t1 (endorsed by its TCB), so the
	// labeled reads are allowed and the hot path measures transport +
	// charging, not denials.
	modB.AdoptTaskLabels(bob, labels)

	burst := netdEndpointBudget / payload
	if burst < 1 {
		burst = 1
	}
	msg := make([]byte, payload)
	for i := range msg {
		msg[i] = byte(i)
	}
	rbuf := make([]byte, 64*1024)
	total := msgs * payload
	sent, received := 0, 0
	start := time.Now()
	for received < total {
		for sent < msgs && sent*payload-received < burst*payload {
			n, serr := kA.Send(alice, fdA, msg)
			if serr != nil || n != payload {
				return 0, fmt.Errorf("budget bench send = %d, %v", n, serr)
			}
			sent++
		}
		nodeA.Pump()
		nodeB.Pump()
		before := received
		for {
			n, rerr := kB.Recv(bob, fdB, rbuf)
			if rerr != nil {
				break
			}
			received += n
		}
		if received == before {
			time.Sleep(20 * time.Microsecond)
		}
		if time.Since(start) > 2*time.Minute {
			return 0, fmt.Errorf("budget bench: stalled at %d/%d bytes (budgeted=%v)", received, total, budgeted)
		}
	}
	return time.Since(start), nil
}

// budgetContention runs the zipfian tenant mix against a memory-only
// ledger: reqs draws over tenants tags, each request doing a sliver of
// simulated app work and then charging one unit. Fixed seed, so the
// table is reproducible.
func budgetContention(tenants, reqs int, zipfS float64) []BudgetTenantRow {
	led := budget.New()
	limit := uint64(reqs / (2 * tenants)) // head tenants exhaust, the tail never does
	if limit == 0 {
		limit = 1
	}
	for i := 0; i < tenants; i++ {
		led.SetLimit(difc.Tag(i+1), 1, limit)
	}
	rows := make([]BudgetTenantRow, tenants)
	for i := range rows {
		rows[i] = BudgetTenantRow{Tenant: i + 1, Limit: limit}
	}
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(tenants-1))
	for r := 0; r < reqs; r++ {
		tenant := int(zipf.Uint64())
		simwork.Do(16)
		rows[tenant].Requests++
		if err := led.Charge("send", difc.Tag(tenant+1), 1, 1); err != nil {
			rows[tenant].Denied++
		} else {
			rows[tenant].Charged++
		}
	}
	for i := range rows {
		if f, ok := led.Fact(difc.Tag(i+1), 1); ok {
			rows[i].Spent = f.Spent
		}
	}
	return rows
}

// Budget runs the gated relabel comparison and the informational netd
// and contention sections (best of trials per cell, modes interleaved).
func Budget(msgs, trials int) (*BudgetReport, error) {
	const payload = 1024
	const cycles = 100000
	const tenants, tenantReqs = 8, 20000
	const zipfS = 1.2
	rep := &BudgetReport{Cycles: cycles, Msgs: msgs, Payload: payload, Trials: trials,
		Gate: budgetGate, AppWork: budgetAppWork,
		Tenants: tenants, ZipfS: zipfS, TenantReqs: tenantReqs}

	modes := []bool{false, true}
	name := func(budgeted bool) string {
		if budgeted {
			return "budgeted"
		}
		return "bare"
	}

	// Gated section: the paired declassify-request storm.
	relabelWall, overhead, chargeNs, err := runBudgetRelabel(cycles)
	if err != nil {
		return nil, err
	}
	for _, budgeted := range modes {
		wall := relabelWall[name(budgeted)]
		rep.RelabelRows = append(rep.RelabelRows, BudgetRow{Mode: name(budgeted), Ops: cycles,
			WallNs: wall.Nanoseconds(), OpsPerSec: float64(cycles) / wall.Seconds()})
	}
	rep.Overhead = overhead
	rep.ChargeNs = chargeNs
	rep.Pass = rep.Overhead <= rep.Gate

	// Informational section: the labeled netd storm over loopback TCP.
	if _, err := runBudgetNetd(payload, msgs/4+1, false); err != nil {
		return nil, fmt.Errorf("netd warm-up: %w", err)
	}
	bestNetd := map[bool]time.Duration{}
	for tr := 0; tr < trials; tr++ {
		for i := range modes {
			budgeted := modes[(i+tr)%len(modes)]
			wall, err := runBudgetNetd(payload, msgs, budgeted)
			if err != nil {
				return nil, err
			}
			if bestNetd[budgeted] == 0 || wall < bestNetd[budgeted] {
				bestNetd[budgeted] = wall
			}
		}
	}
	netdRate := map[bool]float64{}
	for _, budgeted := range modes {
		rate := float64(msgs) / bestNetd[budgeted].Seconds()
		netdRate[budgeted] = rate
		rep.NetdRows = append(rep.NetdRows, BudgetRow{Mode: name(budgeted), Ops: msgs,
			WallNs: bestNetd[budgeted].Nanoseconds(), OpsPerSec: rate})
	}
	rep.NetdOverhead = netdRate[false] / netdRate[true]

	rep.Contention = budgetContention(tenants, tenantReqs, zipfS)
	return rep, nil
}

// JSON renders the report for BENCH_budget.json.
func (r *BudgetReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the text tables for EXPERIMENTS.md.
func (r *BudgetReport) Format() string {
	var b strings.Builder
	b.WriteString(header("budget: flow-budget charging on the declassification hot paths"))
	fmt.Fprintf(&b, "declassify-request storm: %d cycles (%d simwork units + taint + charged untaint), paired batches — GATED\n\n",
		r.Cycles, r.AppWork)
	fmt.Fprintf(&b, "%-9s %14s %12s\n", "mode", "cycles/sec", "wall")
	for _, row := range r.RelabelRows {
		fmt.Fprintf(&b, "%-9s %14.0f %12s\n", row.Mode, row.OpsPerSec, time.Duration(row.WallNs))
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "\nunexhausted-charge overhead vs bare: %.3fx median of paired-batch ratios (gate ≤ %.2fx), ≈%.0fns per cycle\ngate: %s\n",
		r.Overhead, r.Gate, r.ChargeNs, verdict)

	fmt.Fprintf(&b, "\nnetd storm: %d messages of %d bytes over a {t1} channel, batching on (informational)\n\n",
		r.Msgs, r.Payload)
	fmt.Fprintf(&b, "%-9s %14s %12s\n", "mode", "msgs/sec", "wall")
	for _, row := range r.NetdRows {
		fmt.Fprintf(&b, "%-9s %14.0f %12s\n", row.Mode, row.OpsPerSec, time.Duration(row.WallNs))
	}
	fmt.Fprintf(&b, "\nper-drain charge overhead vs bare: %.3fx (loopback jitter ±5%%; not gated)\n", r.NetdOverhead)

	fmt.Fprintf(&b, "\ntenant contention: %d requests over %d tenants, zipf s=%.1f, per-tenant limit %d (informational)\n\n",
		r.TenantReqs, r.Tenants, r.ZipfS, r.Contention[0].Limit)
	fmt.Fprintf(&b, "%-7s %9s %9s %9s %12s\n", "tenant", "requests", "charged", "denied", "spent/limit")
	for _, row := range r.Contention {
		fmt.Fprintf(&b, "%-7d %9d %9d %9d %6d/%d\n",
			row.Tenant, row.Requests, row.Charged, row.Denied, row.Spent, row.Limit)
	}
	return b.String()
}
