package eval

import (
	"fmt"
	"strings"
	"time"

	"laminar"
	"laminar/internal/apps/wiki"
)

// WikiCompareReport reproduces the §6.2 application-level framing: the
// same wiki served under region-based enforcement (one process, labeled
// threads) and under a process-granularity monitor (whole-process
// relabeling around every private request, as Flume must).
type WikiCompareReport struct {
	Requests       int
	LaminarTime    time.Duration
	FlumeTime      time.Duration
	FlumeSyscalls  uint64
	SyscallsPerReq float64
	LaminarRegions uint64
}

// WikiCompare serves the same request mix through both implementations.
func WikiCompare(requests int) (*WikiCompareReport, error) {
	users := []string{"alice", "bob", "carol"}

	lw, err := wiki.NewLaminar(laminar.NewSystem())
	if err != nil {
		return nil, err
	}
	fw := wiki.NewFlume()
	for _, u := range users {
		if err := lw.Register(u); err != nil {
			return nil, err
		}
		fw.Register(u)
	}
	if err := lw.Put("", "Home", "welcome"); err != nil {
		return nil, err
	}
	fw.Put("", "Home", "welcome")
	for _, u := range users {
		if err := lw.Put(u, u+"-notes", "private notes of "+u); err != nil {
			return nil, err
		}
		fw.Put(u, u+"-notes", "private notes of "+u)
	}

	serve := func(get func(user, title string) (string, error)) error {
		for i := 0; i < requests; i++ {
			u := users[i%len(users)]
			title := u + "-notes"
			if i%4 == 3 {
				title = "Home"
			}
			if _, err := get(u, title); err != nil {
				return err
			}
		}
		return nil
	}

	rep := &WikiCompareReport{Requests: requests}
	lw.VM().Stats().Reset()
	var serr error
	rep.LaminarTime = timeIt(func() { serr = serve(lw.Get) })
	if serr != nil {
		return nil, serr
	}
	rep.LaminarRegions = lw.VM().Stats().RegionsEntered.Load()
	before := fw.Syscalls()
	rep.FlumeTime = timeIt(func() { serr = serve(fw.Get) })
	if serr != nil {
		return nil, serr
	}
	rep.FlumeSyscalls = fw.Syscalls() - before
	rep.SyscallsPerReq = float64(rep.FlumeSyscalls) / float64(requests)
	return rep, nil
}

// Format renders the comparison.
func (r *WikiCompareReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Wiki under region-based vs process-granularity enforcement (§6.2 framing)"))
	fmt.Fprintf(&b, "requests served:             %d (3 users, 3 private pages + 1 public)\n", r.Requests)
	fmt.Fprintf(&b, "Laminar (one process):       %s, %d security regions\n", fmtDur(r.LaminarTime), r.LaminarRegions)
	fmt.Fprintf(&b, "monitor (process labels):    %s, %d monitor round trips (%.1f/request)\n",
		fmtDur(r.FlumeTime), r.FlumeSyscalls, r.SyscallsPerReq)
	b.WriteString("\nthe monitor must relabel the whole worker around every private\n" +
		"request and cannot serve two users' pages concurrently in one\n" +
		"process; Laminar's regions make both problems disappear (§7.5).\n")
	return b.String()
}
