package eval

import (
	"fmt"
	"strings"
	"time"

	"laminar/internal/dacapo"
	"laminar/internal/jvm"
)

// CompileRow is one configuration's compilation cost over the whole
// workload suite.
type CompileRow struct {
	Config   string
	Time     time.Duration
	Ratio    float64 // vs the barrier-free baseline compiler
	Instrs   int
	Barriers int
	Elided   int
}

// CompileTimeReport reproduces the §6.1 compilation-time result: static
// barriers roughly double compile time, dynamic barriers roughly triple
// it (barrier sequences are inlined aggressively, bloating the code the
// downstream passes must process).
type CompileTimeReport struct {
	Rows []CompileRow
}

// CompileTime measures eager compilation of every dacapo workload under
// each configuration, median of trials.
func CompileTime(trials int) (*CompileTimeReport, error) {
	configs := []struct {
		name string
		opts jvm.CompileOptions
	}{
		{"none", jvm.CompileOptions{Mode: jvm.BarrierNone}},
		{"static", jvm.CompileOptions{Mode: jvm.BarrierStatic}},
		{"static+opt", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true}},
		{"dynamic", jvm.CompileOptions{Mode: jvm.BarrierDynamic}},
		{"dynamic+opt", jvm.CompileOptions{Mode: jvm.BarrierDynamic, Optimize: true}},
		{"static+opt+inline", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true, Inline: true}},
	}
	// Pre-build source programs once; compilation is what's timed.
	progs := make([]*jvm.Program, len(dacapo.Workloads))
	for i, m := range dacapo.Workloads {
		p, err := dacapo.Build(m)
		if err != nil {
			return nil, err
		}
		progs[i] = p
	}
	rep := &CompileTimeReport{}
	var baseline time.Duration
	for _, cfg := range configs {
		var rpt jvm.CompileReport
		const reps = 8 // compile the suite several times per timing sample
		d := minTime(trials, func() {
			rpt = jvm.CompileReport{}
			for rep := 0; rep < reps; rep++ {
				for _, p := range progs {
					p.ResetCompilation()
					r, err := p.CompileAll(cfg.opts)
					if err != nil {
						panic(err)
					}
					if rep > 0 {
						continue
					}
					rpt.Methods += r.Methods
					rpt.InstrsOut += r.InstrsOut
					rpt.BarriersEmitted += r.BarriersEmitted
					rpt.BarriersElided += r.BarriersElided
				}
			}
		})
		row := CompileRow{
			Config: cfg.name, Time: d,
			Instrs: rpt.InstrsOut, Barriers: rpt.BarriersEmitted, Elided: rpt.BarriersElided,
		}
		if cfg.name == "none" {
			baseline = d
			row.Ratio = 1
		} else if baseline > 0 {
			row.Ratio = float64(d) / float64(baseline)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Format renders the result.
func (r *CompileTimeReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Compilation time by barrier configuration (§6.1)"))
	fmt.Fprintf(&b, "%-12s %12s %8s %10s %10s %8s\n", "config", "time", "ratio", "instrs", "barriers", "elided")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %7.2fx %10d %10d %8d\n",
			row.Config, fmtDur(row.Time), row.Ratio, row.Instrs, row.Barriers, row.Elided)
	}
	fmt.Fprintf(&b, "\npaper: static barriers ≈ 2× compile time, dynamic ≈ 3×.\n")
	return b.String()
}
