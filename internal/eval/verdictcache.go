package eval

// Million-principal hot-path benchmark: the verdict cache, inline labels
// and batched checks against the old per-op protocol. A write-dominated
// storm runs under four protocol configurations:
//
//   - biglock / scalar / cache off — the old kernel end to end (baseline)
//   - sharded / scalar / cache off — locking refactor only
//   - sharded / scalar / cache on  — plus memoized verdicts
//   - sharded / vec    / cache on  — plus WriteVec batching
//
// Every task writes through labels big enough to be heap-represented
// (seven interned tags), so the uncached slow path pays real label work:
// two CheckFlow subset checks through the flow-cache mutex per write.
// The cached path skips all of it — one epoch-guarded array probe — and
// the vectored path additionally amortizes the fixed per-syscall
// dispatch work (entry lock, descriptor lookup, hook, verdict) across
// the batch. Throughput counts LOGICAL writes: one vector element is one
// op, so scalar and vec rows are directly comparable.
//
// The headline — and the PR gate — is new protocol (sharded+vec+cache)
// vs old protocol (biglock+scalar+uncached) at GOMAXPROCS=8.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"laminar"
	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// VCRow is one (GOMAXPROCS, lock mode, write path, cache state) cell.
type VCRow struct {
	Procs      int     `json:"gomaxprocs"`
	Mode       string  `json:"lock_mode"`  // "biglock" or "sharded"
	Path       string  `json:"write_path"` // "scalar" or "vec"
	Cache      bool    `json:"verdict_cache"`
	Ops        int     `json:"logical_writes"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	SpeedupVsB float64 `json:"speedup_vs_old_protocol"` // this row / biglock+scalar+off at same procs
	HitRate    float64 `json:"cache_hit_rate"`          // cache-on rows: hits/(hits+misses) during the storm
}

// VerdictCacheReport is the full matrix plus the gated headline.
type VerdictCacheReport struct {
	Tasks         int     `json:"tasks"`
	WritesPerTask int     `json:"writes_per_task"`
	Batch         int     `json:"vec_batch"`
	HWThreads     int     `json:"hw_threads"`
	Rows          []VCRow `json:"rows"`
	// Headline is new-protocol (sharded, vec, cache) throughput over
	// old-protocol (biglock, scalar, uncached) at GOMAXPROCS=8.
	Headline float64 `json:"headline_speedup"`
	GateMin  float64 `json:"gate_min"`
	Pass     bool    `json:"pass"`
}

// vcWriteSize is the payload per logical write.
const vcWriteSize = 64

// vcStormSetup holds one booted system's tasks and open descriptors.
type vcStormSetup struct {
	k     *kernel.Kernel
	tasks []*kernel.Task
	fds   []kernel.FD
}

// vcSetup boots a system and prepares nTasks writers. Each task taints
// itself with six fresh tags and writes to a private file labeled with a
// strict superset (a seventh tag), so every write verdict is a real
// subset decision between distinct heap-represented interned labels —
// the shape a million-principal deployment's hot path has.
func vcSetup(nTasks int, opts ...kernel.Option) (*vcStormSetup, error) {
	sys := laminar.NewSystem(opts...)
	k := sys.Kernel()
	init := k.InitTask()
	if err := k.Mkdir(init, "/tmp/vc", 0o755); err != nil {
		return nil, err
	}
	s := &vcStormSetup{k: k}
	for i := 0; i < nTasks; i++ {
		t, err := k.Spawn(init, nil)
		if err != nil {
			return nil, err
		}
		var tags []difc.Tag
		for j := 0; j < 7; j++ {
			tag, err := k.AllocTag(t)
			if err != nil {
				return nil, err
			}
			tags = append(tags, tag)
		}
		taskS := difc.NewLabel(tags[:6]...)
		fileS := difc.NewLabel(tags...)
		// Create while still unlabeled (the unlabeled parent directory
		// must accept the dirent write), then raise the task's label; the
		// held capabilities authorize both steps.
		path := fmt.Sprintf("/tmp/vc/f%d", i)
		fd, err := k.CreateFileLabeled(t, path, 0o600, difc.Labels{S: fileS})
		if err != nil {
			return nil, err
		}
		if err := k.SetTaskLabel(t, kernel.Secrecy, taskS); err != nil {
			return nil, err
		}
		s.tasks = append(s.tasks, t)
		s.fds = append(s.fds, fd)
	}
	return s, nil
}

// vcStorm issues writesPerTask logical writes from every task and returns
// the wall time of the storm phase. batch == 1 uses scalar Write; batch >
// 1 uses WriteVec in batch-sized vectors. Files are rewound periodically
// so data volume stays constant across configurations.
func (s *vcStormSetup) vcStorm(writesPerTask, batch int) (time.Duration, error) {
	payload := make([]byte, vcWriteSize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	const rewindEvery = 32 // logical writes between Seek(0)
	errs := make([]error, len(s.tasks))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range s.tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, t, fd := s.k, s.tasks[i], s.fds[i]
			if batch <= 1 {
				for w := 0; w < writesPerTask; w++ {
					if _, err := k.Write(t, fd, payload); err != nil {
						errs[i] = err
						return
					}
					if (w+1)%rewindEvery == 0 {
						if err := k.Seek(t, fd, 0); err != nil {
							errs[i] = err
							return
						}
					}
				}
				return
			}
			chunks := make([][]byte, batch)
			for c := range chunks {
				chunks[c] = payload
			}
			for w := 0; w < writesPerTask; w += batch {
				if _, err := k.WriteVec(t, fd, chunks); err != nil {
					errs[i] = err
					return
				}
				if (w+batch)%rewindEvery == 0 {
					if err := k.Seek(t, fd, 0); err != nil {
						errs[i] = err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// VerdictCache runs the protocol matrix. batch is the WriteVec vector
// length for the vec rows; writesPerTask should be a multiple of it.
func VerdictCache(nTasks, writesPerTask, batch, trials int) (*VerdictCacheReport, error) {
	rep := &VerdictCacheReport{
		Tasks:         nTasks,
		WritesPerTask: writesPerTask,
		Batch:         batch,
		HWThreads:     runtime.NumCPU(),
		GateMin:       1.5,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type cfg struct {
		mode  string
		path  string
		cache bool
	}
	cfgs := []cfg{
		{"biglock", "scalar", false}, // old protocol, baseline
		{"sharded", "scalar", false},
		{"sharded", "scalar", true},
		{"sharded", "vec", true}, // new protocol, headline
	}
	totalOps := nTasks * writesPerTask
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		var baseOps float64
		for _, c := range cfgs {
			var opts []kernel.Option
			if c.mode == "biglock" {
				opts = append(opts, kernel.WithBigLock())
			}
			if c.cache {
				opts = append(opts, kernel.WithVerdictCache())
			}
			b := 1
			if c.path == "vec" {
				b = batch
			}
			best := time.Duration(0)
			var hitRate float64
			for tr := 0; tr < trials; tr++ {
				s, err := vcSetup(nTasks, opts...)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return nil, fmt.Errorf("%s/%s/cache=%v p=%d setup: %w", c.mode, c.path, c.cache, procs, err)
				}
				h0, m0, _ := difc.VerdictCacheStats()
				wall, err := s.vcStorm(writesPerTask, b)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return nil, fmt.Errorf("%s/%s/cache=%v p=%d: %w", c.mode, c.path, c.cache, procs, err)
				}
				h1, m1, _ := difc.VerdictCacheStats()
				if best == 0 || wall < best {
					best = wall
					if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
						hitRate = float64(dh) / float64(dh+dm)
					}
				}
			}
			row := VCRow{
				Procs:     procs,
				Mode:      c.mode,
				Path:      c.path,
				Cache:     c.cache,
				Ops:       totalOps,
				NsPerOp:   float64(best.Nanoseconds()) / float64(totalOps),
				OpsPerSec: float64(totalOps) / best.Seconds(),
				HitRate:   hitRate,
			}
			if c.mode == "biglock" && c.path == "scalar" && !c.cache {
				baseOps = row.OpsPerSec
			} else if baseOps > 0 {
				row.SpeedupVsB = row.OpsPerSec / baseOps
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	runtime.GOMAXPROCS(prev)

	for _, r := range rep.Rows {
		if r.Procs == 8 && r.Mode == "sharded" && r.Path == "vec" && r.Cache {
			rep.Headline = r.SpeedupVsB
		}
	}
	rep.Pass = rep.Headline >= rep.GateMin
	return rep, nil
}

// JSON renders the report for BENCH_verdictcache.json.
func (r *VerdictCacheReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the paper-style text table.
func (r *VerdictCacheReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Verdict cache: old protocol vs memoized + batched hot path"))
	fmt.Fprintf(&b, "%d tasks × %d labeled writes each (7-tag heap labels); vec batch %d; %d hardware thread(s)\n\n",
		r.Tasks, r.WritesPerTask, r.Batch, r.HWThreads)
	fmt.Fprintf(&b, "%6s %9s %7s %6s %12s %14s %9s %8s\n",
		"procs", "mode", "path", "cache", "ns/write", "writes/sec", "speedup", "hit%")
	for _, row := range r.Rows {
		cache := "off"
		if row.Cache {
			cache = "on"
		}
		sp := ""
		if row.SpeedupVsB > 0 {
			sp = fmt.Sprintf("%7.2fx", row.SpeedupVsB)
		}
		hit := ""
		if row.Cache {
			hit = fmt.Sprintf("%7.1f%%", row.HitRate*100)
		}
		fmt.Fprintf(&b, "%6d %9s %7s %6s %12.0f %14.0f %9s %8s\n",
			row.Procs, row.Mode, row.Path, cache, row.NsPerOp, row.OpsPerSec, sp, hit)
	}
	fmt.Fprintf(&b, "\nheadline: sharded+vec+cache vs biglock+scalar+uncached at GOMAXPROCS=8: %.2fx (gate ≥%.2fx: %s)\n",
		r.Headline, r.GateMin, map[bool]string{true: "pass", false: "FAIL"}[r.Pass])
	b.WriteString("the cached path replaces two flow-cache-locked subset checks with one\n" +
		"epoch-guarded array probe per verdict; batching amortizes the fixed\n" +
		"syscall dispatch (entry lock, fd lookup, hook, verdict) across the\n" +
		"vector. Throughput counts logical writes: a vector element is one op.\n")
	return b.String()
}
