package eval

// Trace-overhead benchmark: the netd hot path (cross-kernel labeled
// messages over localhost TCP) under a traced-vs-untraced matrix —
// bare (no telemetry recorder at all), off (recorder at LevelOff,
// tracing disabled: the production default), on (same level, trace
// propagation enabled), and deny (LevelDeny recording plus tracing, the
// full observability configuration, informational). The gates compare
// like with like: the disabled path must stay within 2% of bare, and
// turning tracing on must cost at most 10% over tracing off at the
// same recording level — tracing only touches opens (mint + bind + a
// 27-byte wire extension), never the per-message path, so both hold
// with margin. The cost of active recording itself is a different
// knob, gated by laminar-bench -telgate; the deny row shows it here
// for context without gating on it.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// Trace-gate thresholds.
const (
	traceGateOff = 1.02 // telemetry on, tracing off: vs bare
	traceGateOn  = 1.10 // tracing on: vs tracing off
)

// TraceRow is one configuration's measurement.
type TraceRow struct {
	Mode       string  `json:"mode"` // bare | off | on | deny
	Msgs       int     `json:"messages"`
	WallNs     int64   `json:"wall_ns"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
}

// TraceReport is the laminar-bench -trace result (BENCH_trace.json).
type TraceReport struct {
	Msgs    int        `json:"messages"`
	Payload int        `json:"payload_bytes"`
	Trials  int        `json:"trials"`
	Rows    []TraceRow `json:"rows"`

	OverheadOff float64 `json:"overhead_off"` // bare rate / off rate
	OverheadOn  float64 `json:"overhead_on"`  // off rate / on rate
	GateOff     float64 `json:"gate_off"`
	GateOn      float64 `json:"gate_on"`
	Pass        bool    `json:"pass"`
}

// runTraceNetd is the netd hot path with a configurable recorder: two
// kernel+LSM stacks over TCP, one channel, msgs messages of payload
// bytes, batching on (the production transport default).
func runTraceNetd(payload, msgs int, mode string) (time.Duration, error) {
	mkNode := func(id uint64) (*kernel.Kernel, *kernel.Task, *netlabel.Node, error) {
		mod := lsm.New()
		var opts []kernel.Option
		opts = append(opts, kernel.WithSecurityModule(mod))
		var rec *telemetry.Recorder
		if mode == "bare" {
			opts = append(opts, kernel.WithoutTelemetry())
		} else {
			rec = telemetry.NewRecorder()
			if mode == "deny" {
				rec.SetLevel(telemetry.LevelDeny)
			} else {
				rec.SetLevel(telemetry.LevelOff)
			}
			opts = append(opts, kernel.WithTelemetry(rec))
		}
		k := kernel.New(opts...)
		mod.InstallSystemIntegrity(k)
		if rec != nil {
			mod.SetTelemetry(rec)
		}
		task, err := k.Spawn(k.InitTask(), nil)
		if err != nil {
			return nil, nil, nil, err
		}
		n := netlabel.NewNode(netlabel.Config{
			Kernel: k, Module: mod, Recorder: rec, NodeID: id,
			Batching: true, Tracing: mode == "on" || mode == "deny",
		})
		if err := n.Listen("127.0.0.1:0"); err != nil {
			return nil, nil, nil, err
		}
		return k, task, n, nil
	}
	kA, alice, nodeA, err := mkNode(1)
	if err != nil {
		return 0, err
	}
	defer nodeA.Close()
	kB, bob, nodeB, err := mkNode(2)
	if err != nil {
		return 0, err
	}
	defer nodeB.Close()

	fdA, err := nodeA.Open(alice, nodeB.Addr(), difc.Labels{})
	if err != nil {
		return 0, err
	}
	var fdB kernel.FD
	deadline := time.Now().Add(5 * time.Second)
	for {
		nodeA.Pump()
		nodeB.Pump()
		var aerr error
		if fdB, _, aerr = nodeB.Accept(bob); aerr == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("trace bench: channel never arrived")
		}
	}

	burst := netdEndpointBudget / payload
	if burst < 1 {
		burst = 1
	}
	msg := make([]byte, payload)
	for i := range msg {
		msg[i] = byte(i)
	}
	rbuf := make([]byte, 64*1024)
	total := msgs * payload
	sent, received := 0, 0
	start := time.Now()
	for received < total {
		for sent < msgs && sent*payload-received < burst*payload {
			n, serr := kA.Send(alice, fdA, msg)
			if serr != nil || n != payload {
				return 0, fmt.Errorf("trace bench send = %d, %v", n, serr)
			}
			sent++
		}
		nodeA.Pump()
		nodeB.Pump()
		before := received
		for {
			n, rerr := kB.Recv(bob, fdB, rbuf)
			if rerr != nil {
				break
			}
			received += n
		}
		if received == before {
			time.Sleep(20 * time.Microsecond)
		}
		if time.Since(start) > 2*time.Minute {
			return 0, fmt.Errorf("trace bench: stalled at %d/%d bytes", received, total)
		}
	}
	return time.Since(start), nil
}

// Trace runs the three-configuration matrix, best of trials per cell.
func Trace(msgs, trials int) (*TraceReport, error) {
	const payload = 1024
	rep := &TraceReport{Msgs: msgs, Payload: payload, Trials: trials,
		GateOff: traceGateOff, GateOn: traceGateOn}
	modes := []string{"bare", "off", "on", "deny"}
	// One untimed run first, then trials interleaved across modes:
	// best-of per mode then samples comparable machine states instead of
	// charging warm-up (frequency ramp, page cache) to whichever mode
	// happens to run first.
	if _, err := runTraceNetd(payload, msgs/4+1, "bare"); err != nil {
		return nil, fmt.Errorf("warm-up: %w", err)
	}
	best := map[string]time.Duration{}
	for tr := 0; tr < trials; tr++ {
		for i := range modes {
			mode := modes[(i+tr)%len(modes)] // rotate so no mode always runs first in a round
			wall, err := runTraceNetd(payload, msgs, mode)
			if err != nil {
				return nil, fmt.Errorf("mode %s: %w", mode, err)
			}
			if best[mode] == 0 || wall < best[mode] {
				best[mode] = wall
			}
		}
	}
	rates := map[string]float64{}
	for _, mode := range modes {
		rate := float64(msgs) / best[mode].Seconds()
		rates[mode] = rate
		rep.Rows = append(rep.Rows, TraceRow{Mode: mode, Msgs: msgs,
			WallNs: best[mode].Nanoseconds(), MsgsPerSec: rate})
	}
	rep.OverheadOff = rates["bare"] / rates["off"]
	rep.OverheadOn = rates["off"] / rates["on"]
	rep.Pass = rep.OverheadOff <= rep.GateOff && rep.OverheadOn <= rep.GateOn
	return rep, nil
}

// JSON renders the report for BENCH_trace.json.
func (r *TraceReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the text table for EXPERIMENTS.md.
func (r *TraceReport) Format() string {
	var b strings.Builder
	b.WriteString(header("trace: flow-tracing overhead on the netd hot path"))
	fmt.Fprintf(&b, "%d messages of %d bytes, best of %d trial(s); batching on\n\n",
		r.Msgs, r.Payload, r.Trials)
	fmt.Fprintf(&b, "%-6s %14s %12s\n", "mode", "msgs/sec", "wall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %14.0f %12s\n", row.Mode, row.MsgsPerSec, time.Duration(row.WallNs))
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "\ntelemetry-off overhead vs bare: %.3fx (gate ≤ %.2fx)\n", r.OverheadOff, r.GateOff)
	fmt.Fprintf(&b, "tracing-on overhead vs off:     %.3fx (gate ≤ %.2fx)\n", r.OverheadOn, r.GateOn)
	fmt.Fprintf(&b, "gate: %s\n", verdict)
	return b.String()
}
