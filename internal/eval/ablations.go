package eval

import (
	"fmt"
	"strings"
	"time"

	"laminar"
	"laminar/internal/dacapo"
	"laminar/internal/jvm"
)

// AblationReport measures the design decisions DESIGN.md calls out:
// lazy vs eager kernel-label synchronization (§4.4's optimization) and
// redundant-barrier elimination on/off (§5.1's optimization).
type AblationReport struct {
	// Lazy-sync ablation: time for n syscall-free regions, plus the
	// set_task_label syscall counts that explain the difference.
	LazyRegionNs  float64
	EagerRegionNs float64
	LazySyncs     uint64
	EagerSyncs    uint64

	// Redundant-barrier-elimination ablation, averaged over the dacapo
	// suite under static barriers.
	UnoptimizedChecks uint64
	OptimizedChecks   uint64
	UnoptimizedTime   time.Duration
	OptimizedTime     time.Duration
}

// Ablations runs both studies.
func Ablations(regions, jvmIters int) (*AblationReport, error) {
	rep := &AblationReport{}

	// --- lazy vs eager kernel label sync ---
	sys := laminar.NewSystem()
	shell, err := sys.Login("ablate")
	if err != nil {
		return nil, err
	}
	vm, th, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	tag, err := th.CreateTag()
	if err != nil {
		return nil, err
	}
	labels := laminar.Labels{S: laminar.NewLabel(tag)}
	body := func(r *laminar.Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
		r.Get(o, "x")
	}
	// Interleave lazy and eager trials and keep each mode's minimum, so
	// drift hits both configurations equally. The deterministic quantity
	// — how many set_task_label syscalls each policy issues — is recorded
	// alongside the (noisier) wall time.
	var lazyBest, eagerBest time.Duration
	for trial := 0; trial < 7; trial++ {
		vm.EagerSync = false
		vm.Stats().LabelSyncs.Store(0)
		d := timeIt(func() {
			for i := 0; i < regions; i++ {
				th.Secure(labels, laminar.EmptyCapSet, body, nil)
			}
		})
		rep.LazySyncs = vm.Stats().LabelSyncs.Load()
		if trial == 0 || d < lazyBest {
			lazyBest = d
		}
		vm.EagerSync = true
		vm.Stats().LabelSyncs.Store(0)
		d = timeIt(func() {
			for i := 0; i < regions; i++ {
				th.Secure(labels, laminar.EmptyCapSet, body, nil)
			}
		})
		rep.EagerSyncs = vm.Stats().LabelSyncs.Load()
		if trial == 0 || d < eagerBest {
			eagerBest = d
		}
	}
	vm.EagerSync = false
	rep.LazyRegionNs = float64(lazyBest.Nanoseconds()) / float64(regions)
	rep.EagerRegionNs = float64(eagerBest.Nanoseconds()) / float64(regions)

	// --- redundant-barrier elimination ---
	for _, m := range dacapo.Workloads {
		_, plain, err := dacapo.Run(m, jvmIters, jvm.CompileOptions{Mode: jvm.BarrierStatic})
		if err != nil {
			return nil, err
		}
		_, opt, err := dacapo.Run(m, jvmIters, jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true})
		if err != nil {
			return nil, err
		}
		rep.UnoptimizedChecks += plain.BarrierChecks
		rep.OptimizedChecks += opt.BarrierChecks
	}
	// Execution-only timing: compile both configurations up front, then
	// time the runs (compilation cost is the compile-time experiment's
	// subject, not this one's).
	type prepared struct {
		mc *jvm.Machine
		th *jvm.Thread
	}
	prep := func(optimize bool) ([]prepared, error) {
		out := make([]prepared, 0, len(dacapo.Workloads))
		for _, m := range dacapo.Workloads {
			prog, err := dacapo.Build(m)
			if err != nil {
				return nil, err
			}
			mc, err := jvm.NewMachine(prog, jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: optimize})
			if err != nil {
				return nil, err
			}
			th := mc.NewThread()
			if _, err := mc.Call(th, "run", jvm.IntV(4)); err != nil {
				return nil, err
			}
			out = append(out, prepared{mc, th})
		}
		return out, nil
	}
	plainMachines, err := prep(false)
	if err != nil {
		return nil, err
	}
	optMachines, err := prep(true)
	if err != nil {
		return nil, err
	}
	runAll := func(ms []prepared) func() {
		return func() {
			for _, pm := range ms {
				if _, err := pm.mc.Call(pm.th, "run", jvm.IntV(int64(jvmIters))); err != nil {
					panic(err)
				}
			}
		}
	}
	rep.UnoptimizedTime = minTime(5, runAll(plainMachines))
	rep.OptimizedTime = minTime(5, runAll(optMachines))
	return rep, nil
}

// Format renders both ablations.
func (r *AblationReport) Format() string {
	var b strings.Builder
	b.WriteString(header("Ablation: lazy vs eager kernel label synchronization (§4.4)"))
	fmt.Fprintf(&b, "lazy  (sync only before syscalls): %8.0f ns/region, %d label syscalls\n", r.LazyRegionNs, r.LazySyncs)
	fmt.Fprintf(&b, "eager (sync at every entry/exit):  %8.0f ns/region, %d label syscalls\n", r.EagerRegionNs, r.EagerSyncs)
	if r.LazyRegionNs > 0 {
		fmt.Fprintf(&b, "eager/lazy ratio: %.2fx — the paper's VM \"omits setting the labels\n"+
			"in the kernel thread if the security region does not perform a system call\".\n",
			r.EagerRegionNs/r.LazyRegionNs)
	}
	b.WriteString("\n")
	b.WriteString(header("Ablation: redundant-barrier elimination (§5.1)"))
	fmt.Fprintf(&b, "dynamic checks without optimization: %d\n", r.UnoptimizedChecks)
	fmt.Fprintf(&b, "dynamic checks with optimization:    %d (%.1f%% removed)\n",
		r.OptimizedChecks,
		100*(1-float64(r.OptimizedChecks)/float64(r.UnoptimizedChecks)))
	fmt.Fprintf(&b, "suite time: %s -> %s\n", fmtDur(r.UnoptimizedTime), fmtDur(r.OptimizedTime))
	return b.String()
}
