package eval

import (
	"strings"
	"testing"
	"time"
)

func TestJVMOverheadShape(t *testing.T) {
	rep, err := JVMOverhead(400, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Shape assertions: both configurations cost something, and dynamic
	// costs more than static on average.
	if rep.GeoStatic <= 0 {
		t.Errorf("static overhead = %.1f%%, want > 0", rep.GeoStatic)
	}
	if rep.GeoDynamic <= rep.GeoStatic {
		t.Errorf("dynamic %.1f%% <= static %.1f%%", rep.GeoDynamic, rep.GeoStatic)
	}
	out := rep.Format()
	for _, want := range []string{"antlr", "pseudojbb", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestCompileTimeShape(t *testing.T) {
	rep, err := CompileTime(3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompileRow{}
	for _, row := range rep.Rows {
		byName[row.Config] = row
	}
	// Shape: both barrier configurations multiply compile time well past
	// the baseline (paper: static ≈ 2×, dynamic ≈ 3×; our single-pass
	// compiler reproduces the multiplication, with static's factor coming
	// from cloning and dynamic's from barrier-sequence expansion).
	if byName["static"].Ratio <= 1.3 {
		t.Errorf("static compile ratio = %.2f, want > 1.3", byName["static"].Ratio)
	}
	if byName["dynamic"].Ratio <= 1.3 {
		t.Errorf("dynamic compile ratio = %.2f, want > 1.3", byName["dynamic"].Ratio)
	}
	// Dynamic mode produces denser output per method variant.
	dynDensity := float64(byName["dynamic"].Instrs) / float64(1)
	statDensity := float64(byName["static"].Instrs) / float64(2)
	if dynDensity <= statDensity {
		t.Errorf("dynamic per-variant instrs %.0f <= static %.0f", dynDensity, statDensity)
	}
	if byName["static+opt"].Elided == 0 {
		t.Error("optimizing compile elided nothing")
	}
	if !strings.Contains(rep.Format(), "Compilation time") {
		t.Error("Format missing title")
	}
}

func TestTable2Shape(t *testing.T) {
	rep, err := Table2(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The robust shape assertion: overheads stay in the single-digit band
	// the paper reports (allowing generous noise headroom in both
	// directions); exact per-row ordering is left to the recorded runs in
	// EXPERIMENTS.md because nanosecond deltas flutter under CI load.
	for _, r := range rep.Rows {
		if pct := r.OverheadPct(); pct < -25 || pct > 60 {
			t.Errorf("%s overhead = %.1f%%, outside sane band", r.Name, pct)
		}
	}
	if !strings.Contains(rep.Format(), "Table 2") {
		t.Error("Format missing title")
	}
}

func TestTable1Probes(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LaminarHeterogeneous {
		t.Error("Laminar heterogeneous-label probe failed")
	}
	if rep.FlumeHeterogeneous {
		t.Error("process-granularity monitor passed the heterogeneous probe")
	}
	if rep.PageGranularityPages < rep.ObjectCount {
		t.Errorf("page granularity pinned %d pages for %d distinct-label objects",
			rep.PageGranularityPages, rep.ObjectCount)
	}
	if !rep.LaminarFilesEnforced {
		t.Error("kernel did not enforce labels on files")
	}
	if !strings.Contains(rep.Format(), "Table 1") {
		t.Error("Format missing title")
	}
}

func TestFlumeCompareShape(t *testing.T) {
	rep, err := FlumeCompare(2000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LaminarPipeNs <= 0 || rep.FlumeIPCNs <= 0 {
		t.Fatalf("non-positive latencies: %+v", rep)
	}
	// The monitor-crossing model must put the ratio in the paper's
	// 4-35x direction (allow slack for noise). Under the race detector
	// the kernel's per-syscall fine-grained lock operations carry heavy
	// instrumentation overhead the single-lock monitor avoids, so only
	// the direction survives, not the magnitude.
	floor := 2.0
	if raceEnabled {
		floor = 1.1
	}
	if rep.Ratio < floor {
		t.Errorf("monitor/kernel ratio = %.2f, want >= %.1f", rep.Ratio, floor)
	}
	if !strings.Contains(rep.Format(), "ratio") {
		t.Error("Format missing ratio")
	}
}

func TestConcurrencyShape(t *testing.T) {
	// Small scale: the shape assertion is the acceptance criterion —
	// sharded locking must at least double io-storm throughput over the
	// big lock once several tasks issue device waits concurrently. A
	// single trial at 4 tasks keeps the big-lock run (which serializes
	// every modeled device wait) to a couple of seconds.
	rep, err := Concurrency(4, 1200, 1, 30*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 storms × 3 procs × 2 modes)", len(rep.Rows))
	}
	if rep.HeadlineIO < 2.0 {
		t.Errorf("io-storm sharded/biglock speedup at GOMAXPROCS=8 = %.2fx, want >= 2x", rep.HeadlineIO)
	}
	// The cpu storm on however many cores exist must not regress badly:
	// fine-grained locking may cost a little on one core but not halve
	// throughput.
	for _, row := range rep.Rows {
		if row.Workload == "cpu" && row.Mode == "sharded" && row.SpeedupVsB < 0.5 {
			t.Errorf("cpu storm at procs=%d: sharded is %.2fx of biglock, want >= 0.5x", row.Procs, row.SpeedupVsB)
		}
	}
	out := rep.Format()
	for _, want := range []string{"headline", "sharded", "biglock"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Errorf("JSON render: %v", err)
	}
}

func TestAppsReport(t *testing.T) {
	rep, err := Apps(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Secured <= 0 || row.Unsecured <= 0 {
			t.Errorf("%s: non-positive times %v/%v", row.Name, row.Secured, row.Unsecured)
		}
		if row.Regions == 0 {
			t.Errorf("%s: no regions entered", row.Name)
		}
		if row.PctInSR <= 0 {
			t.Errorf("%s: no time in SR", row.Name)
		}
	}
	// Battleship spends far more of its time in regions than FreeCS
	// (54% vs <1% in the paper).
	var bship, chat float64
	for _, row := range rep.Rows {
		if row.Name == "Battleship" {
			bship = row.PctInSR
		}
		if row.Name == "FreeCS" {
			chat = row.PctInSR
		}
	}
	if bship <= chat {
		t.Errorf("Battleship %%SR %.1f <= FreeCS %.1f", bship, chat)
	}
	if !strings.Contains(rep.Format(), "Figure 9") {
		t.Error("Format missing title")
	}
}

func TestRegionDensityShape(t *testing.T) {
	rep, err := RegionDensity(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The all-inside point must cost more than the all-outside point:
	// region entry/exit and in-region checks dominate at high density,
	// while at 0% only the cheap outside barriers remain.
	lo, hi := rep.Rows[0], rep.Rows[len(rep.Rows)-1]
	if lo.PctInside != 0 || hi.PctInside != 100 {
		t.Fatalf("sweep endpoints = %d%%..%d%%", lo.PctInside, hi.PctInside)
	}
	if hi.Overhead <= lo.Overhead {
		t.Errorf("density curve flat or inverted: 0%% -> %.1f%%, 100%% -> %.1f%%",
			lo.Overhead, hi.Overhead)
	}
	if !strings.Contains(rep.Format(), "inside-50%") {
		t.Error("Format missing sweep point")
	}
}

func TestTable4Format(t *testing.T) {
	out := Table4(16, 8).Format()
	for _, want := range []string{"GradeCell", "Student", "TA", "Professor"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	rep, err := Ablations(3000, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic quantity: lazy issues zero label syscalls on
	// syscall-free regions, eager issues two per region.
	if rep.LazySyncs != 0 {
		t.Errorf("lazy syncs = %d, want 0", rep.LazySyncs)
	}
	if rep.EagerSyncs != 2*3000 {
		t.Errorf("eager syncs = %d, want %d", rep.EagerSyncs, 2*3000)
	}
	if rep.OptimizedChecks >= rep.UnoptimizedChecks {
		t.Errorf("optimization did not reduce checks: %d >= %d",
			rep.OptimizedChecks, rep.UnoptimizedChecks)
	}
	if !strings.Contains(rep.Format(), "Ablation") {
		t.Error("Format missing title")
	}
}

func TestUnitCosts(t *testing.T) {
	u, err := MeasureUnitCosts()
	if err != nil {
		t.Fatal(err)
	}
	if u.RegionNs <= 0 {
		t.Errorf("region cost = %v", u.RegionNs)
	}
}

func TestWikiCompare(t *testing.T) {
	rep, err := WikiCompare(400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LaminarRegions == 0 {
		t.Error("laminar wiki entered no regions")
	}
	// The monitor pays at least four round trips per private request
	// (3 of every 4 requests are private).
	if rep.SyscallsPerReq < 3 {
		t.Errorf("monitor syscalls per request = %.1f, want >= 3", rep.SyscallsPerReq)
	}
	if !strings.Contains(rep.Format(), "monitor round trips") {
		t.Error("Format missing syscall count")
	}
}
