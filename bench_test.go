// Benchmarks regenerating the paper's evaluation through the testing.B
// interface, one benchmark family per table/figure. cmd/laminar-bench
// prints the same results as formatted tables; EXPERIMENTS.md records a
// run of both.
package laminar_test

import (
	"fmt"
	"testing"

	"laminar"
	"laminar/internal/apps/battleship"
	"laminar/internal/apps/calendar"
	"laminar/internal/apps/freecs"
	"laminar/internal/apps/gradesheet"
	"laminar/internal/dacapo"
	"laminar/internal/difc"
	"laminar/internal/flume"
	"laminar/internal/jvm"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/lmbench"
)

// --- §6.1 figure: JVM overhead (DaCapo + pseudojbb, three barrier modes) ---

func BenchmarkJVMOverhead(b *testing.B) {
	modes := []struct {
		name string
		opts jvm.CompileOptions
	}{
		{"none", jvm.CompileOptions{Mode: jvm.BarrierNone}},
		{"static", jvm.CompileOptions{Mode: jvm.BarrierStatic}},
		{"static-opt", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true}},
		{"dynamic", jvm.CompileOptions{Mode: jvm.BarrierDynamic}},
		{"dynamic-opt", jvm.CompileOptions{Mode: jvm.BarrierDynamic, Optimize: true}},
	}
	for _, m := range dacapo.Workloads {
		for _, mode := range modes {
			b.Run(m.Name+"/"+mode.name, func(b *testing.B) {
				prog, err := dacapo.Build(m)
				if err != nil {
					b.Fatal(err)
				}
				mc, err := jvm.NewMachine(prog, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				th := mc.NewThread()
				if _, err := mc.Call(th, "run", jvm.IntV(4)); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mc.Call(th, "run", jvm.IntV(50)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- §6.1: compilation time by barrier configuration ---

func BenchmarkCompileTime(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts jvm.CompileOptions
	}{
		{"none", jvm.CompileOptions{Mode: jvm.BarrierNone}},
		{"static", jvm.CompileOptions{Mode: jvm.BarrierStatic}},
		{"dynamic", jvm.CompileOptions{Mode: jvm.BarrierDynamic}},
		{"static-opt", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			progs := make([]*jvm.Program, len(dacapo.Workloads))
			for i, m := range dacapo.Workloads {
				p, err := dacapo.Build(m)
				if err != nil {
					b.Fatal(err)
				}
				progs[i] = p
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range progs {
					p.ResetCompilation()
					if _, err := p.CompileAll(mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Table 2: lmbench microbenchmarks, bare kernel vs Laminar LSM ---

func BenchmarkLmbench(b *testing.B) {
	for _, bench := range lmbench.Suite() {
		for _, cfg := range []struct {
			name    string
			withLSM bool
		}{{"linux", false}, {"laminar", true}} {
			b.Run(bench.Name+"/"+cfg.name, func(b *testing.B) {
				var k *kernel.Kernel
				if cfg.withLSM {
					mod := lsm.New()
					k = kernel.New(kernel.WithSecurityModule(mod))
					mod.InstallSystemIntegrity(k)
				} else {
					k = kernel.New()
				}
				task, err := k.Spawn(k.InitTask(), nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := k.Chdir(task, "/tmp"); err != nil {
					b.Fatal(err)
				}
				body, err := bench.Setup(k, task)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := body(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table 3 / Figure 9: application case studies ---

func BenchmarkAppGradeSheet(b *testing.B) {
	b.Run("secured", func(b *testing.B) {
		s, err := gradesheet.New(laminar.NewSystem(), 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		w := gradesheet.NewWorkload(1)
		w.RunSecured(s, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunSecured(s, 100)
		}
	})
	b.Run("unsecured", func(b *testing.B) {
		u := gradesheet.NewUnsecured(16, 8)
		w := gradesheet.NewWorkload(1)
		w.RunUnsecured(u, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunUnsecured(u, 100)
		}
	})
}

func BenchmarkAppBattleship(b *testing.B) {
	b.Run("secured", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := battleship.NewGame(laminar.NewSystem(), int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Play(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsecured", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := battleship.NewUnsecuredGame(int64(i + 1))
			if g.Play() == nil {
				b.Fatal("no winner")
			}
		}
	})
}

func BenchmarkAppCalendar(b *testing.B) {
	b.Run("secured", func(b *testing.B) {
		s, err := calendar.New(laminar.NewSystem())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.ScheduleMeeting(); err != nil {
				if err == calendar.ErrNoSlot {
					b.StopTimer()
					if err := s.ResetAlice(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					continue
				}
				b.Fatal(err)
			}
		}
	})
	b.Run("unsecured", func(b *testing.B) {
		u, err := calendar.NewUnsecured(laminar.NewSystem())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.ScheduleMeeting(); err != nil {
				if err == calendar.ErrNoSlot {
					b.StopTimer()
					u.ResetAlice()
					b.StartTimer()
					continue
				}
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAppFreeCS(b *testing.B) {
	b.Run("secured", func(b *testing.B) {
		s, err := freecs.NewServer(laminar.NewSystem())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		users := 0
		for i := 0; i < b.N; i++ {
			// Unique user names across iterations.
			if _, err := runFreecsSlice(s, users, 20); err != nil {
				b.Fatal(err)
			}
			users += 20
		}
	})
	b.Run("unsecured", func(b *testing.B) {
		s := freecs.NewUnsecuredServer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := freecs.RunUnsecuredWorkload(s, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runFreecsSlice logs in a window of users with unique names and runs the
// three-command pattern.
func runFreecsSlice(s *freecs.Server, start, n int) (int, error) {
	commands := 0
	for i := start; i < start+n; i++ {
		name := fmt.Sprintf("bench-user%d", i)
		role := freecs.RoleGuest
		var groups []string
		if i%100 == 0 {
			role = freecs.RoleSuperuser
			groups = []string{"lobby"}
		} else if i%10 == 0 {
			role = freecs.RoleVIP
		}
		u, err := s.Login(name, role, groups...)
		if err != nil {
			return commands, err
		}
		if err := s.Say(u, "lobby", "hello"); err != nil {
			return commands, err
		}
		if _, err := s.Theme(u, "lobby"); err != nil {
			return commands, err
		}
		if role == freecs.RoleSuperuser {
			if err := s.Ban(u, "lobby", fmt.Sprintf("spammer%d", i)); err != nil {
				return commands, err
			}
		} else if err := s.Say(u, "lobby", "bye"); err != nil && err != freecs.ErrDenied {
			return commands, err
		}
		commands += 3
		s.Logout(u)
	}
	return commands, nil
}

// --- §6.2 framing: Flume-style monitor vs Laminar kernel pipes ---

func BenchmarkIPC(b *testing.B) {
	b.Run("laminar-pipe", func(b *testing.B) {
		mod := lsm.New()
		k := kernel.New(kernel.WithSecurityModule(mod))
		mod.InstallSystemIntegrity(k)
		task, err := k.Spawn(k.InitTask(), nil)
		if err != nil {
			b.Fatal(err)
		}
		r, w, err := k.Pipe(task)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Write(task, w, buf); err != nil {
				b.Fatal(err)
			}
			if _, err := k.Read(task, r, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flume-monitor", func(b *testing.B) {
		mon := flume.NewMonitor()
		p, q := mon.Spawn(), mon.Spawn()
		ea, eb, err := mon.CreateEndpointPair(p, q, difc.Labels{})
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mon.Send(p, ea, buf); err != nil {
				b.Fatal(err)
			}
			if _, err := mon.Recv(q, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- runtime primitive unit costs (Figure 9 attribution) ---

func BenchmarkPrimitives(b *testing.B) {
	sys := laminar.NewSystem()
	shell, err := sys.Login("bench")
	if err != nil {
		b.Fatal(err)
	}
	_, th, err := sys.LaunchVM(shell)
	if err != nil {
		b.Fatal(err)
	}
	tag, err := th.CreateTag()
	if err != nil {
		b.Fatal(err)
	}
	labels := laminar.Labels{S: laminar.NewLabel(tag)}

	b.Run("region-enter-exit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {}, nil)
		}
	})
	b.Run("read-barrier", func(b *testing.B) {
		th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
			o := r.Alloc(nil)
			r.Set(o, "f", 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Get(o, "f")
			}
		}, nil)
	})
	b.Run("raw-read", func(b *testing.B) {
		o := laminar.NewObject()
		o.RawSet("f", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.RawGet("f")
		}
	})
	b.Run("labeled-alloc", func(b *testing.B) {
		th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Alloc(nil)
			}
		}, nil)
	})
	b.Run("dynamic-barrier-outside", func(b *testing.B) {
		o := laminar.NewObject()
		o.RawSet("f", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Get(o, "f")
		}
	})
}

// --- difc model primitive costs ---

func BenchmarkLabelOps(b *testing.B) {
	small := difc.NewLabel(1, 2, 3)
	big := difc.NewLabel(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
	b.Run("subset-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			small.SubsetOf(big)
		}
	})
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = small.Union(big)
		}
	})
	b.Run("check-flow", func(b *testing.B) {
		src := difc.Labels{S: small}
		dst := difc.Labels{S: big}
		for i := 0; i < b.N; i++ {
			if err := difc.CheckFlow("bench", src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}
