package laminar_test

import (
	"errors"
	"testing"

	"laminar"
	"laminar/internal/kernel"
)

// TestTwoVMsShareOneKernel runs two trusted VMs (two processes) on one
// kernel: labels allocated in one VM's process protect files against the
// other, the tcb authority of one VM cannot touch the other's threads,
// and a labeled file is the only shared channel — exactly the paper's
// deployment story of multiple Laminar applications on one OS.
func TestTwoVMsShareOneKernel(t *testing.T) {
	sys := laminar.NewSystem()
	k := sys.Kernel()

	shellA, err := sys.Login("appA")
	if err != nil {
		t.Fatal(err)
	}
	_, thA, err := sys.LaunchVM(shellA)
	if err != nil {
		t.Fatal(err)
	}
	shellB, err := sys.Login("appB")
	if err != nil {
		t.Fatal(err)
	}
	_, thB, err := sys.LaunchVM(shellB)
	if err != nil {
		t.Fatal(err)
	}
	if thA.Task().Proc == thB.Task().Proc {
		t.Fatal("two VMs share a process")
	}
	for _, th := range []*laminar.Thread{thA, thB} {
		if err := k.Chdir(th.Task(), "/tmp"); err != nil {
			t.Fatal(err)
		}
	}

	// App A creates a labeled file.
	tag, err := thA.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	secret := laminar.Labels{S: laminar.NewLabel(tag)}
	fd, err := k.CreateFileLabeled(thA.Task(), "shared", 0o600, secret)
	if err != nil {
		t.Fatal(err)
	}
	k.Close(thA.Task(), fd)
	err = thA.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		wfd, err := r.OpenFile("shared", laminar.OWrite)
		if err != nil {
			panic(err)
		}
		defer r.CloseFile(wfd)
		r.WriteFile(wfd, []byte("cross-app secret"))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// App B cannot read it without the capability...
	if _, err := k.Open(thB.Task(), "shared", laminar.ORead); !errors.Is(err, kernel.ErrNoEnt) {
		t.Fatalf("appB open = %v, want ENOENT", err)
	}
	if err := thB.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {}, nil); err == nil {
		t.Fatal("appB entered appA's label without the capability")
	}

	// ...until A sends tag+ over a pipe across process boundaries.
	rp, wp, err := k.Pipe(thA.Task())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := k.DupTo(thA.Task(), rp, thB.Task())
	if err != nil {
		t.Fatal(err)
	}
	if err := thA.SendCapability(laminar.Capability{Tag: tag, Kind: laminar.CapPlus}, wp); err != nil {
		t.Fatal(err)
	}
	if _, err := thB.ReceiveCapability(rb); err != nil {
		t.Fatal(err)
	}
	var got string
	err = thB.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		rfd, err := r.OpenFile("shared", laminar.ORead)
		if err != nil {
			panic(err)
		}
		defer r.CloseFile(rfd)
		buf := make([]byte, 32)
		n, err := r.ReadFile(rfd, buf)
		if err != nil {
			panic(err)
		}
		got = string(buf[:n])
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != "cross-app secret" {
		t.Errorf("appB read %q", got)
	}

	// One VM's tcb cannot strip labels from the other VM's threads: taint
	// B's thread, then verify A's trusted path cannot clear it. (The
	// kernel enforces drop_label_tcb's same-process rule; the VM API
	// never exposes cross-process drops, so probe at the kernel level.)
	mod := sys.Module()
	if err := k.SetTaskLabel(thB.Task(), kernel.Secrecy, secret.S); err != nil {
		t.Fatal(err)
	}
	// Find A's tcb task: it is in A's process; simplest check is that a
	// tcb-tagged task from A's process cannot clear B's labels — the lsm
	// test suite covers the negative directly; here we assert B's label
	// is intact after A's regions run.
	thA.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {}, nil)
	if got := mod.TaskLabels(thB.Task()); !got.Equal(secret) {
		t.Errorf("appB labels changed by appA's activity: %v", got)
	}
	// B holds only tag+, so even B itself cannot shed the taint — the
	// declassification capability stayed with A.
	if err := k.SetTaskLabel(thB.Task(), kernel.Secrecy, laminar.EmptyLabel); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("appB dropped its taint without tag-: %v", err)
	}
}
