package laminar_test

// N-node differential oracle for the cluster label plane: the scripted
// two-principal flow of netdiff_test.go is run across a THREE-node
// cluster — the channels routed A → (relay at B) → C, with membership,
// heartbeats, incarnation epochs and the change engine all live, and
// chaos injected at the transport and checkpoint sites — and its
// kernel/LSM verdict stream must be byte-identical to the in-process
// single-kernel replay.
//
// Why this must hold, one layer up from netdiff: routing, membership and
// crash-resumable changes are all CLUSTER machinery, and cluster
// machinery is transport in the paper's sense — it may lose any message
// (the unreliable channel) but never bypass a check. Every policy
// verdict still fires on an endpoint the acting task's own kernel owns,
// including the relay hop's adopted Recv/Send at B, which are ALLOWED
// flows and therefore invisible at LevelDeny. So: kill a node mid-join,
// resume its persisted change on restart under a fresh incarnation
// epoch, refuse its stale frames, reroute around its suspect window —
// the DELIVERIES change, the VERDICTS cannot. LayerNet and LayerCluster
// events are exactly the fault-dependent residue, and are excluded by
// the verdict filter. Zero deliveries happen unchecked during suspect
// windows because delivery itself is a checked Recv — there is no
// unchecked path for the filter to miss.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"laminar/internal/cluster"
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

// clusterdiffCkptRates tears change checkpoints now and then: the engine
// must retry the durable write before any further step transition, and
// none of it may surface as a policy verdict.
var clusterdiffCkptRates = faultinject.Rates{Error: 0.05}

// clusterdiffNode is one member: a booted stack plus its cluster node
// and durable store (the store survives simulated kills).
type clusterdiffNode struct {
	stack *netdiffStack
	cl    *cluster.Cluster
	store cluster.Store
}

// clusterdiffBoot attaches a cluster node to a fresh stack. The store is
// the node's durable identity: passing the same store after a kill is
// the restart of the same member (epoch bumped, changes resumed).
func clusterdiffBoot(t *testing.T, bigLock bool, id uint64, seeds []string,
	store cluster.Store, seed int64, log *verdictLog) *clusterdiffNode {
	t.Helper()
	s := netdiffBoot(t, bigLock)
	plan := faultinject.NewPlan(seed + int64(id)*7919)
	plan.SetRates("net.", netdiffRates)
	plan.SetRates("cluster.ckpt.", clusterdiffCkptRates)
	// Tracing on: the cluster oracle doubles as the trace covert-channel
	// oracle one layer up — per-hop trace propagation across routed
	// relays must leave the verdict stream byte-identical to the
	// untraced in-process replay.
	cl := cluster.New(cluster.Config{
		ID: id, Kernel: s.k, Module: s.mod, Recorder: s.rec,
		Injector: plan, Store: store, Seeds: seeds, Tracing: true,
	})
	if err := cl.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	log.attach(s.rec)
	return &clusterdiffNode{stack: s, cl: cl, store: store}
}

// clusterdiffRemote runs the script across a 3-node cluster with routed
// channels and seeded chaos, returning the verdict stream and t1. Seeds
// divisible by 3 additionally kill node 3 mid-join and restart it from
// its persisted store — the resumed change must complete under the new
// incarnation epoch.
func clusterdiffRemote(t *testing.T, seed int64, bigLock bool) (string, difc.Tag) {
	t.Helper()
	log := &verdictLog{}

	n1 := clusterdiffBoot(t, bigLock, 1, nil, cluster.NewMemStore(), seed, log)
	defer n1.cl.Close()
	if _, err := n1.cl.Join(); err != nil {
		t.Fatal(err)
	}
	seeds := []string{n1.cl.Addr()}
	n2 := clusterdiffBoot(t, bigLock, 2, seeds, cluster.NewMemStore(), seed, log)
	defer n2.cl.Close()
	if _, err := n2.cl.Join(); err != nil {
		t.Fatal(err)
	}
	store3 := cluster.NewMemStore()
	n3 := clusterdiffBoot(t, bigLock, 3, seeds, store3, seed, log)
	if _, err := n3.cl.Join(); err != nil {
		t.Fatal(err)
	}

	if seed%3 == 0 {
		// Chaos: node 3 dies mid-join — at most a tick or two into the
		// change, long before convergence — and restarts from its store.
		// The persisted join change resumes at the in-flight step, the
		// epoch bumps, and peers discard the dead incarnation's state.
		n3.cl.Tick()
		n3.cl.Close()
		n3 = clusterdiffBoot(t, bigLock, 3, seeds, store3, seed+104729, log)
		if len(n3.cl.Changes()) == 0 {
			t.Fatal("killed node restarted with no resumed change")
		}
	}
	defer func() { n3.cl.Close() }()

	nodes := func() []*clusterdiffNode { return []*clusterdiffNode{n1, n2, n3} }
	tickAll := func() {
		for _, n := range nodes() {
			n.cl.Tick()
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for !(n1.cl.Converged(1, 2, 3) && n2.cl.Converged(1, 2, 3) && n3.cl.Converged(1, 2, 3) &&
		n1.cl.Joined() && n2.cl.Joined() && n3.cl.Joined()) {
		if !time.Now().Before(deadline) {
			t.Fatalf("seed %d: cluster never converged", seed)
		}
		tickAll()
	}

	t1, err := n1.stack.k.AllocTag(n1.stack.user)
	if err != nil {
		t.Fatal(err)
	}

	// establish opens a ROUTED channel A→B→C and ticks until C holds the
	// far end, re-opening when chaos ate a leg. Retries and relay setup
	// emit no policy verdicts (creates and adopted hops are allowed), so
	// the faulted establishment is invisible to the oracle.
	establish := func(labels difc.Labels) (kernel.FD, kernel.FD) {
		want := difc.InternLabels(labels)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			fd, oerr := n1.cl.OpenVia(n1.stack.user, 2, 3, labels)
			if oerr != nil {
				tickAll()
				continue // route down this instant; try again
			}
			for i := 0; i < 400; i++ {
				tickAll()
				fdC, got, aerr := n3.cl.Node().Accept(n3.stack.user)
				if aerr == nil {
					if got.Equal(want) {
						return fd, fdC
					}
					continue // stale duplicate from an earlier lost open
				}
			}
		}
		t.Fatalf("seed %d: routed channel %v never established", seed, labels)
		return -1, -1
	}

	pubA, pubC := establish(difc.Labels{})
	secA, secC := establish(difc.Labels{S: difc.NewLabel(t1)})

	netdiffOps(t, n1.stack.k, n3.stack.k, n1.stack.user, n3.stack.user,
		pubA, pubC, secA, secC, t1)

	// Let membership, relays and late link faults churn: none of it may
	// append to the captured verdict stream.
	for i := 0; i < 50; i++ {
		tickAll()
	}
	return log.dump(), t1
}

// TestClusterDifferentialOracle: 30 seeds of cluster chaos (link faults,
// torn checkpoints, and on every third seed a mid-join node kill with
// persisted-change resume and a forced re-epoch) × both locking
// disciplines; every cluster verdict stream must equal the in-process
// single-kernel replay byte for byte.
func TestClusterDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster oracle is long; skipped in -short")
	}
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			want, wantT1 := netdiffReplay(t, mode.bigLock)
			if want == "" {
				t.Fatal("replay produced no verdicts; the oracle is vacuous")
			}
			if n := len(strings.Split(want, "\n")); n < 4 {
				t.Fatalf("replay produced only %d verdicts", n)
			}
			for seed := int64(1); seed <= 30; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					got, gotT1 := clusterdiffRemote(t, seed, mode.bigLock)
					if gotT1 != wantT1 {
						t.Fatalf("tag allocation diverged: cluster t1=%d, replay t1=%d", gotT1, wantT1)
					}
					if got != want {
						t.Errorf("verdict stream diverged from in-process replay\n--- cluster (seed %d)\n%s\n--- replay\n%s", seed, got, want)
					}
				})
			}
		})
	}
}

// TestClusterOracleEpochRejectInvisible pins the epoch machinery's
// fail-closed side against the oracle property: a stale-incarnation
// frame is rejected with LayerCluster provenance, and that rejection
// never surfaces in the kernel/LSM verdict stream the oracle compares.
func TestClusterOracleEpochRejectInvisible(t *testing.T) {
	log := &verdictLog{}
	n1 := clusterdiffBoot(t, false, 1, nil, cluster.NewMemStore(), 5, log)
	defer n1.cl.Close()
	if _, err := n1.cl.Join(); err != nil {
		t.Fatal(err)
	}
	store := cluster.NewMemStore()
	n2 := clusterdiffBoot(t, false, 2, []string{n1.cl.Addr()}, store, 5, log)
	if _, err := n2.cl.Join(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for !(n1.cl.Converged(1, 2) && n2.cl.Joined()) {
		if !time.Now().Before(deadline) {
			t.Fatal("never converged")
		}
		n1.cl.Tick()
		n2.cl.Tick()
	}
	oldEpoch := n2.cl.Epoch()

	// Node 2 reincarnates; node 1 must learn the new epoch and then
	// reject anything still stamped with the old one.
	n2.cl.Close()
	n2 = clusterdiffBoot(t, false, 2, []string{n1.cl.Addr()}, store, 6, log)
	defer n2.cl.Close()
	if n2.cl.Epoch() <= oldEpoch {
		t.Fatalf("restart epoch %d, want > %d", n2.cl.Epoch(), oldEpoch)
	}
	var stale int
	unsub := n1.stack.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerCluster && e.Op == "stale-epoch" {
			stale++
		}
	})
	defer unsub()
	if _, err := n2.cl.Join(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for !(n1.cl.Converged(1, 2) && n2.cl.Joined()) {
		if !time.Now().Before(deadline) {
			t.Fatal("never reconverged after re-epoch")
		}
		n1.cl.Tick()
		n2.cl.Tick()
	}
	// Replay the ghost: a control frame from node 2's DEAD incarnation.
	n1.cl.InjectStaleFrame(2, oldEpoch)
	if stale == 0 {
		t.Fatal("stale-epoch frame was not rejected with provenance")
	}
	if log.dump() != "" {
		t.Fatalf("cluster-layer rejection leaked into the policy verdict stream:\n%s", log.dump())
	}
}
