// End-to-end scenarios exercised exclusively through the public API.
package laminar_test

import (
	"errors"
	"strings"
	"testing"

	"laminar"
	"laminar/internal/kernel"
)

// TestEndToEndCalendarScenario walks the paper's §3.3 story through the
// public API: labeled files, capability transfer, tainted reads, blocked
// leaks, and module-based declassification.
func TestEndToEndCalendarScenario(t *testing.T) {
	sys := laminar.NewSystem()
	k := sys.Kernel()

	aliceShell, err := sys.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	_, alice, err := sys.LaunchVM(aliceShell)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(alice.Task(), "/tmp"); err != nil {
		t.Fatal(err)
	}
	aTag, err := alice.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	aLabel := laminar.Labels{S: laminar.NewLabel(aTag)}

	// Pre-create and fill the secret calendar.
	fd, err := k.CreateFileLabeled(alice.Task(), "alice.cal", 0o600, aLabel)
	if err != nil {
		t.Fatal(err)
	}
	k.Close(alice.Task(), fd)
	err = alice.Secure(aLabel, laminar.EmptyCapSet, func(r *laminar.Region) {
		wfd, err := r.OpenFile("alice.cal", laminar.OWrite)
		if err != nil {
			panic(err)
		}
		defer r.CloseFile(wfd)
		if _, err := r.WriteFile(wfd, []byte("tue:free")); err != nil {
			panic(err)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A scheduler thread with no capabilities cannot read it.
	sched, err := alice.Fork([]laminar.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(sched.Task(), "alice.cal", laminar.ORead); !errors.Is(err, kernel.ErrNoEnt) {
		t.Fatalf("capability-less open = %v, want ENOENT", err)
	}

	// Alice hands a+ over a pipe; the scheduler can then read inside a
	// region but never write what it learned to an unlabeled sink.
	rp, wp, err := k.Pipe(alice.Task())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := k.DupTo(alice.Task(), rp, sched.Task())
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.SendCapability(laminar.Capability{Tag: aTag, Kind: laminar.CapPlus}, wp); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.ReceiveCapability(rs); err != nil {
		t.Fatal(err)
	}
	var got string
	leakBlocked := false
	err = sched.Secure(aLabel, laminar.EmptyCapSet, func(r *laminar.Region) {
		rfd, err := r.OpenFile("alice.cal", laminar.ORead)
		if err != nil {
			panic(err)
		}
		defer r.CloseFile(rfd)
		buf := make([]byte, 32)
		n, err := r.ReadFile(rfd, buf)
		if err != nil {
			panic(err)
		}
		got = string(buf[:n])
		if _, err := r.OpenFile("/tmp/leak", laminar.OCreate|laminar.OWrite); err != nil {
			leakBlocked = true
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != "tue:free" {
		t.Errorf("scheduler read %q", got)
	}
	if !leakBlocked {
		t.Error("tainted scheduler created an unlabeled file")
	}
	// After the region the scheduler is clean again and cannot re-read.
	if !sched.Labels().IsEmpty() {
		t.Errorf("scheduler labels after region = %v", sched.Labels())
	}
}

// TestEndToEndUserIsolation checks that two logged-in users with private
// tags cannot touch each other's data through any public-API path.
func TestEndToEndUserIsolation(t *testing.T) {
	sys := laminar.NewSystem()
	k := sys.Kernel()
	mkUser := func(name string) (*laminar.Thread, laminar.Tag) {
		shell, err := sys.Login(name)
		if err != nil {
			t.Fatal(err)
		}
		_, th, err := sys.LaunchVM(shell)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Chdir(th.Task(), "/tmp"); err != nil {
			t.Fatal(err)
		}
		tag, err := th.CreateTag()
		if err != nil {
			t.Fatal(err)
		}
		return th, tag
	}
	alice, aTag := mkUser("alice")
	bob, _ := mkUser("bob")

	var secret *laminar.Object
	alice.Secure(laminar.Labels{S: laminar.NewLabel(aTag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		secret = r.Alloc(nil)
		r.Set(secret, "pin", 1234)
	}, nil)

	// Bob cannot enter Alice's label...
	if err := bob.Secure(laminar.Labels{S: laminar.NewLabel(aTag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		t.Error("bob entered alice's region")
	}, nil); err == nil {
		t.Error("bob's entry was not rejected")
	}
	// ...nor touch the object outside a region.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bob read alice's object without a violation")
			}
		}()
		bob.Get(secret, "pin")
	}()
}

// TestEndToEndPersistentCapabilities verifies capability persistence
// across logins via the public API.
func TestEndToEndPersistentCapabilities(t *testing.T) {
	sys := laminar.NewSystem()
	tag := laminar.Tag(4242)
	caps := laminar.NewCapSet(laminar.NewLabel(tag), laminar.NewLabel(tag))
	if err := sys.SaveUserCaps("carol", caps); err != nil {
		t.Fatal(err)
	}
	shell, err := sys.Login("carol")
	if err != nil {
		t.Fatal(err)
	}
	_, th, err := sys.LaunchVM(shell)
	if err != nil {
		t.Fatal(err)
	}
	// The VM thread inherits the login shell's capabilities; entering a
	// region with the persisted tag works immediately.
	if err := th.Secure(laminar.Labels{S: laminar.NewLabel(tag)}, laminar.EmptyCapSet, func(r *laminar.Region) {}, nil); err != nil {
		t.Errorf("region entry with persisted capability: %v", err)
	}
}

// TestEndToEndViolationMessages checks that violations carry actionable
// text through the public API.
func TestEndToEndViolationMessages(t *testing.T) {
	sys := laminar.NewSystem()
	shell, err := sys.Login("dev")
	if err != nil {
		t.Fatal(err)
	}
	_, th, err := sys.LaunchVM(shell)
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := th.CreateTag()
	pub := laminar.NewObject()
	var msg string
	th.Secure(laminar.Labels{S: laminar.NewLabel(tag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.Set(pub, "x", 1)
	}, func(r *laminar.Region, e any) {
		if v, ok := e.(*laminar.Violation); ok {
			msg = v.Error()
		}
	})
	if !strings.Contains(msg, "secrecy") || !strings.Contains(msg, "write") {
		t.Errorf("violation message = %q", msg)
	}
}
