module laminar

go 1.22
