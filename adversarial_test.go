// Adversarial scenarios: attacks the DIFC model must stop, exercised
// through the public API. Each test plays a malicious program and asserts
// the enforcement holds.
package laminar_test

import (
	"errors"
	"testing"

	"laminar"
	"laminar/internal/kernel"
)

func adversarySystem(t *testing.T) (*laminar.System, *laminar.Thread, laminar.Tag) {
	t.Helper()
	sys := laminar.NewSystem()
	shell, err := sys.Login("victim")
	if err != nil {
		t.Fatal(err)
	}
	_, th, err := sys.LaunchVM(shell)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel().Chdir(th.Task(), "/tmp"); err != nil {
		t.Fatal(err)
	}
	tag, err := th.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	return sys, th, tag
}

// TestAttackConfusedDeputy: a privileged thread (holding the victim's
// capability) is tricked into running attacker-controlled code inside a
// region. The attacker's code can read the secret but every path to an
// unlabeled sink stays closed — the deputy's privilege does not launder
// the data.
func TestAttackConfusedDeputy(t *testing.T) {
	sys, deputy, tag := adversarySystem(t)
	secret := laminar.Labels{S: laminar.NewLabel(tag)}
	var vault *laminar.Object
	deputy.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		vault = r.Alloc(nil)
		r.Set(vault, "pin", 9999)
	}, nil)

	exfil := laminar.NewObject() // attacker-visible
	attackerCode := func(r *laminar.Region) {
		pin := r.Get(vault, "pin") // deputy's label allows the read
		// Attempt 1: direct write down.
		func() {
			defer func() { recover() }()
			r.Set(exfil, "pin", pin)
		}()
		// Attempt 2: static variable.
		func() {
			defer func() { recover() }()
			r.SetStatic("exfil", pin)
		}()
		// Attempt 3: unlabeled file.
		if fd, err := r.OpenFile("exfil.txt", laminar.OCreate|laminar.OWrite); err == nil {
			r.WriteFile(fd, []byte("9999"))
			r.CloseFile(fd)
		}
		// Attempt 4: copyAndLabel without the minus capability.
		func() {
			defer func() { recover() }()
			r.CopyAndLabel(vault, laminar.Labels{})
		}()
	}
	// The deputy runs the attacker's code WITHOUT granting it the minus
	// capability (the deputy only holds tag+ inside the region).
	deputy.Secure(secret, laminar.EmptyCapSet, attackerCode, func(r *laminar.Region, e any) {})

	if exfil.RawGet("pin") != nil {
		t.Error("attack 1 leaked via object")
	}
	if deputy.GetStatic("exfil") != nil {
		t.Error("attack 2 leaked via static")
	}
	if _, err := sys.Kernel().Open(deputy.Task(), "exfil.txt", laminar.ORead); err == nil {
		st, _ := sys.Kernel().Stat(deputy.Task(), "exfil.txt")
		if st.Size > 0 {
			t.Error("attack 3 leaked via file")
		}
	}
}

// TestAttackCapabilityForgery: gaining a capability requires alloc_tag,
// fork inheritance, or write_capability — an attacker cannot mint one for
// someone else's tag.
func TestAttackCapabilityForgery(t *testing.T) {
	sys, victim, tag := adversarySystem(t)
	attacker, err := sys.Login("attacker")
	if err != nil {
		t.Fatal(err)
	}
	_, ath, err := sys.LaunchVM(attacker)
	if err != nil {
		t.Fatal(err)
	}
	// Allocating new tags gives capabilities only for THOSE tags.
	for i := 0; i < 8; i++ {
		if _, err := ath.CreateTag(); err != nil {
			t.Fatal(err)
		}
	}
	if ath.Caps().CanAdd(tag) || ath.Caps().CanDrop(tag) {
		t.Fatal("attacker minted the victim's capability")
	}
	if err := ath.Secure(laminar.Labels{S: laminar.NewLabel(tag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		t.Error("attacker entered the victim's label")
	}, nil); err == nil {
		t.Error("entry not rejected")
	}
	_ = victim
}

// TestAttackPipeProbe: a tainted process tries to use pipe delivery
// status as a covert channel to signal an unlabeled accomplice. Silent
// drops deny the probe: the sender cannot observe whether delivery
// happened, and the receiver sees only EAGAIN either way.
func TestAttackPipeProbe(t *testing.T) {
	sys, th, tag := adversarySystem(t)
	k := sys.Kernel()
	r0, w0, err := k.Pipe(th.Task())
	if err != nil {
		t.Fatal(err)
	}
	secret := laminar.Labels{S: laminar.NewLabel(tag)}
	// Send "bit=1" while tainted: same observable result as not sending.
	var sendResult1, sendResult2 int
	th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		sendResult1, _ = r.WriteFile(w0, []byte("1"))
	}, nil)
	sendResult2 = len("1") // the no-send case trivially "succeeds" too
	if sendResult1 != sendResult2 {
		t.Error("write return value distinguishes drop from delivery")
	}
	// The unlabeled accomplice reads: nothing arrives either way.
	if _, err := k.Read(th.Task(), r0, make([]byte, 4)); !errors.Is(err, kernel.ErrAgain) {
		t.Errorf("accomplice observed %v, want EAGAIN", err)
	}
}

// TestAttackFileNameChannel: a tainted thread cannot signal through file
// names in unlabeled directories (creation is denied before the name
// becomes visible).
func TestAttackFileNameChannel(t *testing.T) {
	sys, th, tag := adversarySystem(t)
	secret := laminar.Labels{S: laminar.NewLabel(tag)}
	th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		if _, err := r.OpenFile("bit-is-1", laminar.OCreate|laminar.OWrite); err == nil {
			t.Error("tainted create in unlabeled directory succeeded")
		}
	}, nil)
	names, err := sys.Kernel().ReadDir(th.Task(), "/tmp")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "bit-is-1" {
			t.Error("file name leaked")
		}
	}
}

// TestAttackSignalChannel: a tainted thread cannot signal an unlabeled
// observer via kill.
func TestAttackSignalChannel(t *testing.T) {
	sys, th, tag := adversarySystem(t)
	observer, err := th.Fork([]laminar.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	k := sys.Kernel()
	// Taint the sender at the kernel level, then try to signal.
	if err := k.SetTaskLabel(th.Task(), kernel.Secrecy, laminar.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	if err := k.Kill(th.Task(), observer.Task().TID, kernel.SIGUSR1); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("tainted signal = %v, want EPERM", err)
	}
	if got := k.SigPending(observer.Task()); len(got) != 0 {
		t.Errorf("observer received %v", got)
	}
	if err := k.SetTaskLabel(th.Task(), kernel.Secrecy, laminar.EmptyLabel); err != nil {
		t.Fatal(err)
	}
}

// TestAttackRegionExitLaundering: exiting a security region must not
// leave the thread tainted OR privileged — the region's extra
// capabilities vanish with it unless explicitly retained.
func TestAttackRegionExitLaundering(t *testing.T) {
	_, th, tag := adversarySystem(t)
	secret := laminar.Labels{S: laminar.NewLabel(tag)}
	minus := laminar.NewCapSet(laminar.EmptyLabel, laminar.NewLabel(tag))
	// Drop the thread's own minus capability globally inside a region.
	th.Secure(secret, minus, func(r *laminar.Region) {
		if err := r.RemoveCapability(tag, laminar.CapMinus, true); err != nil {
			t.Errorf("global drop: %v", err)
		}
	}, nil)
	if th.Caps().CanDrop(tag) {
		t.Error("globally dropped capability survived region exit")
	}
	// The thread can still re-enter (has tag+) but can never declassify.
	err := th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		func() {
			defer func() { recover() }()
			o := r.Alloc(nil)
			r.CopyAndLabel(o, laminar.Labels{})
			t.Error("declassified without the capability")
		}()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
