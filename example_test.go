package laminar_test

import (
	"fmt"
	"log"

	"laminar"
)

// Example demonstrates the core loop: boot, label, access inside a
// security region, and a blocked leak.
func Example() {
	sys := laminar.NewSystem()
	alice, err := sys.Login("alice")
	if err != nil {
		log.Fatal(err)
	}
	_, th, err := sys.LaunchVM(alice)
	if err != nil {
		log.Fatal(err)
	}
	tag, err := th.CreateTag()
	if err != nil {
		log.Fatal(err)
	}
	secret := laminar.Labels{S: laminar.NewLabel(tag)}

	var diary *laminar.Object
	th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		diary = r.Alloc(nil)
		r.Set(diary, "entry", "classified")
		fmt.Println("inside:", r.Get(diary, "entry"))
	}, nil)

	public := laminar.NewObject()
	th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.Set(public, "post", r.Get(diary, "entry"))
	}, func(r *laminar.Region, e any) {
		fmt.Println("leak blocked")
	})
	fmt.Println("public post:", public.RawGet("post"))
	// Output:
	// inside: classified
	// leak blocked
	// public post: <nil>
}

// ExampleRegion_CopyAndLabel shows explicit declassification with the
// minus capability.
func ExampleRegion_CopyAndLabel() {
	sys := laminar.NewSystem()
	shell, _ := sys.Login("owner")
	_, th, _ := sys.LaunchVM(shell)
	tag, _ := th.CreateTag()
	secret := laminar.Labels{S: laminar.NewLabel(tag)}
	minus := laminar.NewCapSet(laminar.EmptyLabel, laminar.NewLabel(tag))

	out := laminar.NewObject()
	th.Secure(secret, minus, func(r *laminar.Region) {
		o := r.Alloc(nil)
		r.Set(o, "v", 42)
		th.Secure(laminar.Labels{}, minus, func(r2 *laminar.Region) {
			pub := r2.CopyAndLabel(o, laminar.Labels{})
			out.RawSet("v", r2.Get(pub, "v"))
		}, nil)
	}, nil)
	fmt.Println(out.RawGet("v"))
	// Output: 42
}
