package laminar_test

// End-to-end route reconstruction: a secrecy-labeled flow routed
// 1 → relay at 2 → 3 is denied at hop 2 (node 3's user task lacks the
// tag), and laminar-trace's ExplainRoute must rebuild the hop-by-hop
// path — from hop 2's dump ALONE (the denial self-explains) and from
// the merged three-node dump (every hop present, every recorded check
// re-run and MATCHING) — including after the relay is killed mid-run
// and restarted under a fresh incarnation epoch. The dumps go through
// a real serialize/parse round trip, so the v2 dump format (meta
// header, node identity, trace fields) is exercised, not just the
// in-memory events.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"laminar/internal/cluster"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

// traceMember is one cluster member with verbose recording and tracing.
type traceMember struct {
	k    *kernel.Kernel
	rec  *telemetry.Recorder
	user *kernel.Task
	cl   *cluster.Cluster
}

func traceBoot(t *testing.T, id uint64, seeds []string, store cluster.Store) *traceMember {
	t.Helper()
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelAll)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cluster.Config{
		ID: id, Kernel: k, Module: mod, Recorder: rec,
		Store: store, Seeds: seeds, Tracing: true,
	})
	if err := cl.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Join(); err != nil {
		t.Fatal(err)
	}
	return &traceMember{k: k, rec: rec, user: user, cl: cl}
}

func traceTickAll(members []*traceMember) {
	for _, m := range members {
		m.cl.Tick()
	}
	time.Sleep(200 * time.Microsecond)
}

func traceConverge(t *testing.T, members []*traceMember, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		traceTickAll(members)
		done := true
		for _, m := range members {
			if !m.cl.Joined() || !m.cl.Converged(1, 2, 3) {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged (%s)", what)
		}
	}
}

// traceDenyRouted establishes a routed secret channel 1 → 2 → 3 and
// drives the hop-2 denial, returning its trace id as seen at node 3.
func traceDenyRouted(t *testing.T, members []*traceMember, secret difc.Labels, seen map[uint64]bool) uint64 {
	t.Helper()
	n1, n3 := members[0], members[2]
	var fdC kernel.FD
	established := false
	deadline := time.Now().Add(20 * time.Second)
	for !established {
		if time.Now().After(deadline) {
			t.Fatal("routed labeled channel 1 -> relay at 2 -> 3 never established")
		}
		fd, oerr := n1.cl.OpenVia(n1.user, 2, 3, secret)
		if oerr != nil {
			traceTickAll(members)
			continue
		}
		if _, serr := n1.k.Send(n1.user, fd, []byte{0x5A}); serr != nil {
			t.Fatalf("routed probe send: %v", serr)
		}
		for i := 0; i < 400 && !established; i++ {
			traceTickAll(members)
			for {
				afd, labels, aerr := n3.cl.Node().Accept(n3.user)
				if aerr != nil {
					break
				}
				if !labels.S.IsEmpty() {
					fdC, established = afd, true
				}
			}
		}
	}
	if _, rerr := n3.k.Recv(n3.user, fdC, make([]byte, 64)); rerr == nil {
		t.Fatal("secret recv at node 3 allowed; want denial at hop 2")
	}
	var traceID uint64
	for _, e := range n3.rec.Snapshot() {
		if e.Kind == telemetry.KindDeny && e.TraceID != 0 && !seen[e.TraceID] {
			traceID = e.TraceID
		}
	}
	if traceID == 0 {
		t.Fatal("node 3 recorded no fresh traced denial")
	}
	seen[traceID] = true
	return traceID
}

// dumpRoundTrip serializes a recorder's ring with its v2 meta header
// and parses it back, returning the events the tooling would see.
func dumpRoundTrip(t *testing.T, rec *telemetry.Recorder) []telemetry.Event {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.DumpWithMeta(&buf); err != nil {
		t.Fatal(err)
	}
	meta, evs, err := telemetry.ReadDumpFull(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.V != telemetry.DumpVersion {
		t.Fatalf("dump meta = %+v, want v%d header", meta, telemetry.DumpVersion)
	}
	return evs
}

// assertRoute checks a reconstructed route: denial at hop 2, the wanted
// hops present, and no replayable check diverging from its record.
func assertRoute(t *testing.T, rep telemetry.RouteReport, wantHops []uint8, what string) {
	t.Helper()
	if !rep.Denied || rep.DeniedHop != 2 {
		t.Fatalf("%s: denied=%v hop=%d, want denial at hop 2", what, rep.Denied, rep.DeniedHop)
	}
	hops := map[uint8]bool{}
	for _, h := range rep.Hops {
		hops[h.Hop] = true
		for _, c := range h.Checks {
			if c.Result.Replayable && !c.Result.Matches {
				t.Fatalf("%s: hop %d @ node %d replay DIVERGED: %s", what, h.Hop, h.Node, c.Result.Reason)
			}
		}
	}
	for _, hop := range wantHops {
		if !hops[hop] {
			t.Fatalf("%s: route is missing hop %d (hops %v)", what, hop, rep.Hops)
		}
	}
}

// TestTraceRouteExplain: the full satellite — hop-2 denial explained
// from hop 2's dump alone and from the merged dump, then again across
// a relay kill + restart with a bumped incarnation epoch.
func TestTraceRouteExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("routed trace explain is long; skipped in -short")
	}
	store2 := cluster.NewMemStore()
	n1 := traceBoot(t, 1, nil, cluster.NewMemStore())
	defer n1.cl.Close()
	seeds := []string{n1.cl.Addr()}
	n2 := traceBoot(t, 2, seeds, store2)
	n3 := traceBoot(t, 3, seeds, cluster.NewMemStore())
	defer n3.cl.Close()
	members := []*traceMember{n1, n2, n3}
	traceConverge(t, members, "initial join")

	tag, err := n1.k.AllocTag(n1.user)
	if err != nil {
		t.Fatal(err)
	}
	secret := difc.Labels{S: difc.NewLabel(tag)}
	seen := map[uint64]bool{}
	traceID := traceDenyRouted(t, members, secret, seen)

	// Hop 2 self-explains from node 3's dump alone: the denial event
	// carries the full check, so the route tool needs no other node.
	evs3 := dumpRoundTrip(t, n3.rec)
	rep3, err := telemetry.ExplainRoute(traceID, evs3)
	if err != nil {
		t.Fatal(err)
	}
	assertRoute(t, rep3, []uint8{2}, "node-3-only route")

	// The merged dump reconstructs all three hops with MATCHES each.
	merged := append(append(dumpRoundTrip(t, n1.rec), dumpRoundTrip(t, n2.rec)...), evs3...)
	rep, err := telemetry.ExplainRoute(traceID, merged)
	if err != nil {
		t.Fatal(err)
	}
	assertRoute(t, rep, []uint8{0, 1, 2}, "merged route")
	relayEpoch := routeHopEpoch(t, rep, 1)

	// Kill the relay mid-run and restart the same member from its
	// persisted store: the epoch must bump, and a fresh traced flow
	// through the restarted relay must still explain end to end.
	oldEpoch := n2.cl.Epoch()
	n2.cl.Close()
	n2 = traceBoot(t, 2, seeds, store2)
	defer n2.cl.Close()
	if n2.cl.Epoch() <= oldEpoch {
		t.Fatalf("relay restart epoch %d, want > %d", n2.cl.Epoch(), oldEpoch)
	}
	members[1] = n2
	traceConverge(t, members, "after relay kill+restart")

	traceID2 := traceDenyRouted(t, members, secret, seen)
	merged2 := append(append(dumpRoundTrip(t, n1.rec), dumpRoundTrip(t, n2.rec)...), dumpRoundTrip(t, n3.rec)...)
	rep2, err := telemetry.ExplainRoute(traceID2, merged2)
	if err != nil {
		t.Fatal(err)
	}
	assertRoute(t, rep2, []uint8{0, 1, 2}, "post-restart merged route")
	if e := routeHopEpoch(t, rep2, 1); e != n2.cl.Epoch() {
		t.Fatalf("post-restart relay hop epoch = %d, want new incarnation %d (old %d)", e, n2.cl.Epoch(), relayEpoch)
	}
	if fmt.Sprint(telemetry.FormatRoute(rep2)) == "" {
		t.Fatal("FormatRoute rendered nothing")
	}
}

// routeHopEpoch returns the incarnation epoch recorded at one hop.
func routeHopEpoch(t *testing.T, rep telemetry.RouteReport, hop uint8) uint64 {
	t.Helper()
	for _, h := range rep.Hops {
		if h.Hop == hop {
			return h.NodeEpoch
		}
	}
	t.Fatalf("route has no hop %d", hop)
	return 0
}
