// Battleship (§7.2): each player's board is labeled with a private tag;
// the only information that ever leaves a board is the declassified
// hit/miss bit per shot.
//
//	go run ./examples/battleship
package main

import (
	"fmt"
	"log"

	"laminar"
	"laminar/internal/apps/battleship"
)

func main() {
	g, err := battleship.NewGame(laminar.NewSystem(), 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s vs %s on a %dx%d grid\n",
		g.A.Name(), g.B.Name(), battleship.GridSize, battleship.GridSize)

	// Neither player can inspect the other's board.
	if g.A.TryPeek(g.B.Thread()) || g.B.TryPeek(g.A.Thread()) {
		log.Fatal("a player peeked at the opponent's board!")
	}
	fmt.Println("peeking at the opponent's board: blocked")

	winner, err := g.Play()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s wins with %d ship cells still afloat\n",
		winner.Name(), winner.ShipCellsLeft())
}
