// FreeCS-style chat (§7.4): roles map to integrity tags, so the /ban
// policy lives in the ban list's label rather than in scattered if..then
// checks.
//
//	go run ./examples/chat
package main

import (
	"fmt"
	"log"

	"laminar"
	"laminar/internal/apps/freecs"
)

func main() {
	s, err := freecs.NewServer(laminar.NewSystem())
	if err != nil {
		log.Fatal(err)
	}
	admin, err := s.Login("admin", freecs.RoleSuperuser, "lobby")
	if err != nil {
		log.Fatal(err)
	}
	vip, err := s.Login("vip", freecs.RoleVIP)
	if err != nil {
		log.Fatal(err)
	}
	troll, err := s.Login("troll", freecs.RoleGuest)
	if err != nil {
		log.Fatal(err)
	}

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(s.Say(troll, "lobby", "first!"))
	must(s.Say(vip, "lobby", "welcome everyone"))

	// The VIP tries to ban the troll: denied — a ban needs both the VIP
	// and the group-superuser integrity tags.
	if err := s.Ban(vip, "lobby", "troll"); err != nil {
		fmt.Println("vip banning troll:", err)
	}
	// The admin (VIP + superuser of lobby) can.
	must(s.Ban(admin, "lobby", "troll"))
	fmt.Println("admin banned troll")

	if err := s.Say(troll, "lobby", "still here?"); err != nil {
		fmt.Println("troll speaking after ban:", err)
	}
	must(s.SetTheme(admin, "lobby", "civil discourse"))
	theme, err := s.Theme(vip, "lobby")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lobby theme:", theme)
	fmt.Println("messages in lobby:", s.Messages("lobby"))
}
