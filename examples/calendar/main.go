// The paper's running example (§3.3): Alice and Bob schedule a meeting on
// a server administered by neither, keeping their calendars secret. The
// scheduler can read both calendars but declassify only what each owner's
// module permits; the agreed time lands in a file only Alice can read.
//
//	go run ./examples/calendar
package main

import (
	"fmt"
	"log"

	"laminar"
	"laminar/internal/apps/calendar"
)

func main() {
	sys := laminar.NewSystem()
	s, err := calendar.New(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice's tag:", s.Alice.Tag(), " bob's tag:", s.Bob.Tag())
	fmt.Println("scheduler holds a+, b+, b-  (it can never leak Alice's data)")

	for i := 0; i < 5; i++ {
		day, err := s.ScheduleMeeting()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("meeting %d scheduled in slot %d\n", i+1, day)
	}

	out, err := s.ReadMeetingsAsAlice()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice reads her meetings file:\n%s", out)

	if s.BobCannotReadMeetings() {
		fmt.Println("bob tries to read it: permission denied (as it should be)")
	} else {
		log.Fatal("bob read alice's file!")
	}
}
