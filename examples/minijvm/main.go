// MiniJVM walkthrough: the paper's Figure 7 — summing two students' marks
// under different secrecy tags, then declassifying the sum — written in
// MiniJVM text assembly and executed under each barrier configuration.
// The disassembly of the compiled region method shows exactly where the
// compiler placed its barriers.
//
//	go run ./examples/minijvm
package main

import (
	"fmt"
	"log"

	"laminar/internal/jvm"
)

// Figure 7, §5.1. Tags: 1 = s1 (student 1), 2 = s2 (student 2). The
// secure method runs with {S(s1,s2)} and the declassification capability
// for both; it writes the sum into static 0 through a nested empty-label
// region (method "publish"), mirroring credentialsNew.
const figure7 = `
statics 1

; sum = student1.marks + student2.marks, inside {S(s1,s2), C(s1-,s2-)};
; the aggregate object takes the region's labels at allocation (L4 of
; Figure 7), visible as the alloc barrier in the compiled form.
secure method sumMarks args=2 locals=4 secrecy=1,2 minus=1,2
    load 0
    getfield 0
    load 1
    getfield 0
    add
    store 2
    new 1
    store 3
    load 3
    load 2
    putfield 0
    return
catch:
    return
end

; the nested declassification region: empty labels, both minus caps
secure method publish args=1 locals=1 minus=1,2
    load 0
    getfield 0
    putstatic 0
    return
catch:
    return
end
`

func main() {
	prog, err := jvm.Parse(figure7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("source:")
	fmt.Print(prog.Dump())

	for _, mode := range []jvm.BarrierMode{jvm.BarrierNone, jvm.BarrierStatic, jvm.BarrierDynamic} {
		prog.ResetCompilation()
		rep, err := prog.CompileAll(jvm.CompileOptions{Mode: mode, Optimize: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mode %-8s -> %3d instrs, %2d barriers emitted, %2d elided\n",
			mode, rep.InstrsOut, rep.BarriersEmitted, rep.BarriersElided)
	}

	// Execute under static barriers with host-built labeled objects.
	prog.ResetCompilation()
	mc, err := jvm.NewMachine(prog, jvm.CompileOptions{Mode: jvm.BarrierStatic})
	if err != nil {
		log.Fatal(err)
	}
	th := mc.NewThread()
	// The host (playing the professor) would hand labeled student objects
	// to sumMarks; building labeled host objects is the rt layer's job,
	// so here we show the compiled form instead and run the declassifier
	// on an unlabeled holder.
	holder := hostObject(42 + 35)
	if _, err := mc.Call(th, "publish", holder); err != nil {
		log.Fatal(err)
	}
	fmt.Println("declassified sum in static 0:", mc.Static(0).Int())
	st := mc.Stats()
	fmt.Printf("stats: %d instructions, %d barrier checks, %d regions\n",
		st.Instructions, st.BarrierChecks, st.RegionsEntered)
}

// hostObject builds a one-field object holding v.
func hostObject(v int64) jvm.Value {
	p := jvm.NewProgram(0)
	mk := &jvm.Method{Name: "mk", NArgs: 0, NLocal: 1}
	p.Add(mk)
	mk.Code = jvm.NewAsm().
		New(1).Store(0).
		Load(0).Const(v).PutField(0).
		Load(0).Emit(jvm.OpReturnVal, 0).MustBuild()
	mc, err := jvm.NewMachine(p, jvm.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := mc.Call(mc.NewThread(), "mk")
	if err != nil {
		log.Fatal(err)
	}
	return out
}
