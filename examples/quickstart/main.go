// Quickstart: label a piece of data, read it inside a security region,
// and watch the runtime stop both an explicit leak and an implicit flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"laminar"
)

func main() {
	// Boot a simulated system: kernel + Laminar security module, then a
	// trusted VM for one process.
	sys := laminar.NewSystem()
	alice, err := sys.Login("alice")
	if err != nil {
		log.Fatal(err)
	}
	_, th, err := sys.LaunchVM(alice)
	if err != nil {
		log.Fatal(err)
	}

	// Allocate a secrecy tag. Alice now holds both capabilities:
	// tag+ (classify) and tag− (declassify).
	tag, err := th.CreateTag()
	if err != nil {
		log.Fatal(err)
	}
	secret := laminar.Labels{S: laminar.NewLabel(tag)}

	// Labeled data can only be touched inside a security region carrying
	// the label. The region's catch block receives any violation.
	var diary *laminar.Object
	err = th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		diary = r.Alloc(nil) // labeled {S(tag)} automatically
		r.Set(diary, "entry", "met bob at the secret lab")
		fmt.Println("inside region:", r.Get(diary, "entry"))
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Outside any region the object is off limits.
	func() {
		defer func() {
			if v := recover(); v != nil {
				fmt.Println("outside region:", v)
			}
		}()
		th.Get(diary, "entry")
	}()

	// An explicit leak — writing labeled data to an unlabeled object —
	// raises a violation that transfers to the catch block.
	public := laminar.NewObject()
	th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
		r.Set(public, "post", r.Get(diary, "entry")) // write down: rejected
		fmt.Println("this line never runs")
	}, func(r *laminar.Region, e any) {
		fmt.Println("leak stopped:", e)
	})
	if public.RawGet("post") != nil {
		log.Fatal("the leak happened!")
	}

	// Declassification is explicit and auditable: holding tag−, a nested
	// empty region may copy the data down.
	minus := laminar.NewCapSet(laminar.EmptyLabel, laminar.NewLabel(tag))
	th.Secure(secret, minus, func(r *laminar.Region) {
		err := th.Secure(laminar.Labels{}, minus, func(r2 *laminar.Region) {
			pub := r2.CopyAndLabel(diary, laminar.Labels{})
			public.RawSet("post", r2.Get(pub, "entry"))
		}, nil)
		if err != nil {
			panic(err)
		}
	}, nil)
	fmt.Println("declassified on purpose:", public.RawGet("post"))
}
