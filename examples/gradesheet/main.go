// GradeSheet (§7.1): per-cell heterogeneous labels implement the Table 4
// policy, and the class-average leak the paper found in the original
// ad-hoc policy is structurally impossible.
//
//	go run ./examples/gradesheet
package main

import (
	"fmt"
	"log"

	"laminar"
	"laminar/internal/apps/gradesheet"
)

func main() {
	s, err := gradesheet.New(laminar.NewSystem(), 4, 2)
	if err != nil {
		log.Fatal(err)
	}

	// TA 0 grades project 0.
	for student := 0; student < 4; student++ {
		if err := s.TAWrite(0, student, 0, 60+10*student); err != nil {
			log.Fatal(err)
		}
	}

	// Students read their own marks.
	for student := 0; student < 4; student++ {
		m, err := s.StudentRead(student, student, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("student %d sees marks %d\n", student, m)
	}

	// Student 0 peeks at student 1: denied.
	if _, err := s.StudentRead(0, 1, 0); err != nil {
		fmt.Println("student 0 reading student 1:", err)
	}

	// TA 1 (project 1's grader) tries to change project 0 marks: the
	// integrity tag p_0 stops it.
	if err := s.TAWrite(1, 2, 0, 0); err != nil {
		fmt.Println("TA 1 tampering with project 0:", err)
	}

	// The leak the paper found: a student computing the class average.
	if _, err := s.StudentAverage(0, 0); err != nil {
		fmt.Println("student computing class average:", err)
	}

	// Only the professor can compute and declassify the average.
	avg, err := s.ProfessorAverage(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("professor publishes class average:", avg)
}
